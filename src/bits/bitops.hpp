#pragma once
/// \file bitops.hpp
/// Bit-level primitives on computational-basis states.

#include <bit>
#include <cstdint>

#include "common/types.hpp"

namespace fastqaoa {

/// Hamming weight of a basis state.
inline int popcount(state_t x) noexcept { return std::popcount(x); }

/// Parity (0/1) of the number of set bits in x.
inline int parity(state_t x) noexcept { return std::popcount(x) & 1; }

/// +1 if popcount(x & mask) is even, -1 if odd. This is the eigenvalue of
/// the Pauli-Z product over `mask` on basis state |x> — the workhorse of the
/// X-mixer diagonal frame (DESIGN.md §5).
inline double z_sign(state_t x, state_t mask) noexcept {
  return parity(x & mask) ? -1.0 : 1.0;
}

/// Value (0/1) of qubit q in state x.
inline int bit(state_t x, int q) noexcept {
  return static_cast<int>((x >> q) & 1ULL);
}

/// State x with qubit q flipped.
inline state_t flip(state_t x, int q) noexcept { return x ^ (state_t{1} << q); }

/// Mask with the lowest k bits set (the minimum weight-k state).
inline state_t lowest_k_bits(int k) noexcept {
  return k == 0 ? 0 : (k >= 64 ? ~state_t{0} : (state_t{1} << k) - 1);
}

/// Gosper's hack: the next integer after v with the same popcount.
/// Precondition: v != 0. Iterating from lowest_k_bits(k) enumerates all
/// weight-k n-bit strings in increasing order; stop once the result exceeds
/// (1<<n)-1.
inline state_t next_same_weight(state_t v) noexcept {
  const state_t c = v & (~v + 1);  // lowest set bit
  const state_t r = v + c;
  return (((r ^ v) >> 2) / c) | r;
}

}  // namespace fastqaoa
