#include "bits/combinatorics.hpp"

#include <limits>

namespace fastqaoa {

std::uint64_t binomial(int n, int k) {
  FASTQAOA_CHECK(n >= 0, "binomial: n must be non-negative");
  if (k < 0 || k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    // result * (n - k + i) / i is always integral at this point; guard the
    // multiplication against 64-bit overflow.
    const std::uint64_t factor = static_cast<std::uint64_t>(n - k + i);
    FASTQAOA_CHECK(result <= std::numeric_limits<std::uint64_t>::max() / factor,
                   "binomial: 64-bit overflow");
    result = result * factor / static_cast<std::uint64_t>(i);
  }
  return result;
}

BinomialTable::BinomialTable(int max_n) : max_n_(max_n) {
  FASTQAOA_CHECK(max_n >= 0 && max_n <= 67,
                 "BinomialTable: rows above n=67 overflow 64 bits");
  rows_.assign(static_cast<std::size_t>(max_n + 1) * (max_n + 1), 0);
  for (int n = 0; n <= max_n; ++n) {
    auto* row = &rows_[static_cast<std::size_t>(n) * (max_n + 1)];
    row[0] = 1;
    if (n == 0) continue;
    const auto* prev = row - (max_n + 1);
    for (int k = 1; k <= n; ++k) row[k] = prev[k - 1] + (k <= n - 1 ? prev[k] : 0);
  }
}

index_t rank_combination(state_t x, const BinomialTable& binom) {
  // Combinadic: rank = sum over set bits (in increasing position order) of
  // C(position, 1-based ordinal of the bit).
  index_t rank = 0;
  int ordinal = 0;
  while (x != 0) {
    const int pos = std::countr_zero(x);
    ++ordinal;
    rank += binom(pos, ordinal);
    x &= x - 1;  // clear lowest set bit
  }
  return rank;
}

state_t unrank_combination(index_t rank, int n, int k,
                           const BinomialTable& binom) {
  FASTQAOA_CHECK(n >= 0 && k >= 0 && k <= n, "unrank_combination: bad (n,k)");
  FASTQAOA_CHECK(rank < binom(n, k), "unrank_combination: rank out of range");
  state_t x = 0;
  // Choose bit positions from the highest ordinal down.
  std::uint64_t r = rank;
  for (int ordinal = k; ordinal >= 1; --ordinal) {
    // Largest pos with C(pos, ordinal) <= r.
    int pos = ordinal - 1;
    while (pos + 1 < n && binom(pos + 1, ordinal) <= r) ++pos;
    x |= state_t{1} << pos;
    r -= binom(pos, ordinal);
  }
  return x;
}

DickeBasis::DickeBasis(int n, int k) : n_(n), k_(k), binom_(n) {
  FASTQAOA_CHECK(n >= 1 && n < 63, "DickeBasis: need 1 <= n < 63");
  FASTQAOA_CHECK(k >= 0 && k <= n, "DickeBasis: need 0 <= k <= n");
  states_.reserve(binom_(n, k));
  for_each_weight_k(n, k, [this](state_t s) { states_.push_back(s); });
}

index_t DickeBasis::index_of(state_t x) const {
  FASTQAOA_CHECK(popcount(x) == k_, "DickeBasis::index_of: wrong weight");
  FASTQAOA_CHECK((x >> n_) == 0, "DickeBasis::index_of: state exceeds n bits");
  return rank_combination(x, binom_);
}

}  // namespace fastqaoa
