#pragma once
/// \file combinatorics.hpp
/// Binomial coefficients and combinadic (combinatorial number system)
/// ranking of fixed-Hamming-weight states. These index the Dicke feasible
/// subspace used by constrained QAOA problems.

#include <cstdint>
#include <vector>

#include "bits/bitops.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace fastqaoa {

/// Exact binomial coefficient C(n, k) as a 64-bit integer.
/// Throws fastqaoa::Error on overflow.
std::uint64_t binomial(int n, int k);

/// Cached table of binomial coefficients up to C(max_n, *).
class BinomialTable {
 public:
  /// Build Pascal's triangle rows 0..max_n.
  explicit BinomialTable(int max_n);

  /// C(n, k); 0 when k < 0 or k > n.
  [[nodiscard]] std::uint64_t operator()(int n, int k) const {
    FASTQAOA_ASSERT(n >= 0 && n <= max_n_, "BinomialTable: n out of range");
    if (k < 0 || k > n) return 0;
    return rows_[static_cast<std::size_t>(n) * (max_n_ + 1) + k];
  }

  [[nodiscard]] int max_n() const noexcept { return max_n_; }

 private:
  int max_n_;
  std::vector<std::uint64_t> rows_;
};

/// Rank of a weight-k state x among all weight-k states in increasing
/// numeric order (the combinadic rank). Inverse of unrank_combination.
index_t rank_combination(state_t x, const BinomialTable& binom);

/// The weight-k n-bit state of given rank in increasing numeric order.
state_t unrank_combination(index_t rank, int n, int k,
                           const BinomialTable& binom);

/// The ordered basis of an n-qubit Hamming-weight-k (Dicke) subspace.
/// basis()[i] is the i-th weight-k string in increasing numeric order;
/// index_of() inverts it in O(k) via combinadic ranking (no hash table).
class DickeBasis {
 public:
  /// Enumerate all C(n,k) weight-k strings with Gosper's hack.
  DickeBasis(int n, int k);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] index_t size() const noexcept { return states_.size(); }
  [[nodiscard]] const std::vector<state_t>& states() const noexcept {
    return states_;
  }
  [[nodiscard]] state_t state(index_t i) const {
    FASTQAOA_ASSERT(i < states_.size(), "DickeBasis: index out of range");
    return states_[i];
  }

  /// Index of a weight-k state in this basis.
  [[nodiscard]] index_t index_of(state_t x) const;

 private:
  int n_;
  int k_;
  std::vector<state_t> states_;
  BinomialTable binom_;
};

/// Enumerate all n-bit strings of Hamming weight k in increasing order,
/// calling fn(state) for each. Uses Gosper's hack; the loop the paper's
/// §2.4 uses to partition Grover-mixer objective tabulation across workers.
template <typename Fn>
void for_each_weight_k(int n, int k, Fn&& fn) {
  FASTQAOA_CHECK(n >= 0 && n < 63, "for_each_weight_k: need 0 <= n < 63");
  FASTQAOA_CHECK(k >= 0 && k <= n, "for_each_weight_k: need 0 <= k <= n");
  if (k == 0) {
    fn(state_t{0});
    return;
  }
  const state_t limit = state_t{1} << n;
  for (state_t v = lowest_k_bits(k); v < limit; v = next_same_weight(v)) {
    fn(v);
  }
}

}  // namespace fastqaoa
