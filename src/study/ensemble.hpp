#pragma once
/// \file ensemble.hpp
/// Reproducible ensemble studies — the "mean over 50 random instances"
/// workflow behind the paper's Fig. 2/3 made into a library facility:
/// generate R random instances from a factory, learn angles on each, and
/// aggregate approximation ratios per round. Every instance draws from a
/// forked RNG stream, so the full study is reproducible from one seed and
/// embarrassingly parallel across instances.

#include <functional>
#include <string>
#include <vector>

#include "anglefind/strategies.hpp"
#include "runtime/budget.hpp"
#include "study/stats.hpp"

namespace fastqaoa {

/// Produces one tabulated objective per call (one problem instance).
/// Called concurrently from the ensemble parallel-for (each call with its
/// own forked Rng), so the factory must be thread-safe: a pure function of
/// its Rng argument (every generator in problems/ and graphs/ qualifies).
using InstanceFactory = std::function<dvec(Rng&)>;

/// Ensemble study configuration.
struct EnsembleConfig {
  int instances = 10;
  int max_rounds = 4;
  std::uint64_t seed = 0xE75E7B1E;
  FindAnglesOptions angle_options;  ///< direction, hopping budget, gradient
  /// OpenMP team size for the instance loop ("embarrassingly parallel
  /// across instances"): 0 = the OpenMP default, 1 = serial. Per-instance
  /// RNG streams are forked serially from the study seed and results are
  /// written by index, so ratios are bit-identical at any thread count.
  int threads = 0;
  /// Crash-safe study checkpointing: when non-empty, each fully completed
  /// instance is persisted to `<dir>/instance_<i>.txt` (atomic write) and a
  /// manifest recording the study identity (dimension, mixer tag, seed,
  /// instance count, max_rounds) guards against resuming someone else's
  /// directory. A re-run with the same config skips the finished instances
  /// and — because every instance's randomness is a pure function of the
  /// study seed — produces results bit-identical to an uninterrupted run at
  /// any thread count. Empty = no checkpointing.
  std::string checkpoint_dir;
  /// Cooperative stop limits shared by *all* instances (one live tracker
  /// threaded through every find_angles call). A tripped budget returns the
  /// instances finished so far, flagged via EnsembleResult::stop_reason,
  /// without throwing.
  runtime::RunBudget budget;
};

/// Results of an ensemble angle-finding study.
struct EnsembleResult {
  /// schedules[i][p-1] = optimized angles for instance i at p rounds.
  std::vector<std::vector<AngleSchedule>> schedules;
  /// ratios[i][p-1] = approximation ratio instance i achieved at p rounds.
  std::vector<std::vector<double>> ratios;
  /// per_round[p-1] = aggregate ratio statistics across the instances that
  /// completed round p (count < instances when a budget stopped the study).
  std::vector<SampleStats> per_round;
  /// Instances whose full max_rounds search ran to completion (loaded from
  /// a checkpoint or computed this run).
  int completed_instances = 0;
  /// None when every instance ran to completion; otherwise why the study
  /// stopped early (partial results above are still valid).
  runtime::StopReason stop_reason = runtime::StopReason::None;

  [[nodiscard]] bool stopped_early() const noexcept {
    return stop_reason != runtime::StopReason::None;
  }
};

/// Run iterative angle finding over an instance ensemble.
EnsembleResult run_ensemble(const Mixer& mixer, const InstanceFactory& factory,
                            const EnsembleConfig& config);

/// The median-angle transfer experiment of [22] / Fig. 3: learn angles per
/// instance (random-restart search), take coordinate-wise medians, evaluate
/// the median angles on every instance.
struct MedianTransferResult {
  std::vector<double> median_packed;  ///< the transferred angle vector
  SampleStats donor_ratios;           ///< per-instance optimized ratios
  SampleStats transfer_ratios;        ///< median angles evaluated per instance
};

MedianTransferResult median_angle_transfer(const Mixer& mixer,
                                           const InstanceFactory& factory,
                                           int p, int restarts,
                                           const EnsembleConfig& config);

}  // namespace fastqaoa
