#include "study/ensemble.hpp"

#include "common/error.hpp"

namespace fastqaoa {

EnsembleResult run_ensemble(const Mixer& mixer, const InstanceFactory& factory,
                            const EnsembleConfig& config) {
  FASTQAOA_CHECK(config.instances >= 1, "run_ensemble: need >= 1 instance");
  FASTQAOA_CHECK(config.max_rounds >= 1, "run_ensemble: need >= 1 round");

  EnsembleResult result;
  result.schedules.reserve(static_cast<std::size_t>(config.instances));
  result.ratios.reserve(static_cast<std::size_t>(config.instances));

  Rng master(config.seed);
  for (int inst = 0; inst < config.instances; ++inst) {
    Rng instance_rng = master.fork();
    dvec table = factory(instance_rng);
    FASTQAOA_CHECK(table.size() == mixer.dim(),
                   "run_ensemble: factory table does not match mixer "
                   "dimension");

    FindAnglesOptions opt = config.angle_options;
    // Per-instance angle-finder stream, still derived from the study seed.
    opt.seed = instance_rng();
    std::vector<AngleSchedule> schedules =
        find_angles(mixer, table, config.max_rounds, opt);

    std::vector<double> inst_ratios;
    inst_ratios.reserve(schedules.size());
    for (const AngleSchedule& s : schedules) {
      inst_ratios.push_back(
          approximation_ratio(s.expectation, table, opt.direction));
    }
    result.schedules.push_back(std::move(schedules));
    result.ratios.push_back(std::move(inst_ratios));
  }

  result.per_round.reserve(static_cast<std::size_t>(config.max_rounds));
  for (int p = 1; p <= config.max_rounds; ++p) {
    std::vector<double> column;
    column.reserve(static_cast<std::size_t>(config.instances));
    for (const auto& inst : result.ratios) {
      column.push_back(inst[static_cast<std::size_t>(p - 1)]);
    }
    result.per_round.push_back(sample_stats(column));
  }
  return result;
}

MedianTransferResult median_angle_transfer(const Mixer& mixer,
                                           const InstanceFactory& factory,
                                           int p, int restarts,
                                           const EnsembleConfig& config) {
  FASTQAOA_CHECK(config.instances >= 1,
                 "median_angle_transfer: need >= 1 instance");
  FASTQAOA_CHECK(p >= 1 && restarts >= 1,
                 "median_angle_transfer: bad p/restarts");

  Rng master(config.seed);
  std::vector<dvec> tables;
  std::vector<std::vector<double>> angle_sets;
  std::vector<double> donor_ratios;
  for (int inst = 0; inst < config.instances; ++inst) {
    Rng instance_rng = master.fork();
    dvec table = factory(instance_rng);
    FindAnglesOptions opt = config.angle_options;
    opt.seed = instance_rng();
    AngleSchedule s = find_angles_random(mixer, table, p, restarts, opt);
    donor_ratios.push_back(
        approximation_ratio(s.expectation, table, opt.direction));
    angle_sets.push_back(s.packed());
    tables.push_back(std::move(table));
  }

  MedianTransferResult result;
  result.median_packed = median_angles(angle_sets);
  result.donor_ratios = sample_stats(donor_ratios);

  std::vector<double> transfer;
  transfer.reserve(tables.size());
  for (const dvec& table : tables) {
    const double e = evaluate_angles(mixer, table, result.median_packed,
                                     config.angle_options.phase_values);
    transfer.push_back(
        approximation_ratio(e, table, config.angle_options.direction));
  }
  result.transfer_ratios = sample_stats(transfer);
  return result;
}

}  // namespace fastqaoa
