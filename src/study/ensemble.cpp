#include "study/ensemble.hpp"

#include <chrono>
#include <exception>

#include "common/error.hpp"
#include "common/threading.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fastqaoa {

namespace {

/// Resolve an EnsembleConfig thread request into an OpenMP num_threads
/// argument (clamped to the instance count; at least 1).
int resolve_threads(int requested, int instances) {
  int t = requested > 0 ? requested : num_threads();
  if (t > instances) t = instances;
  return t < 1 ? 1 : t;
}

}  // namespace

EnsembleResult run_ensemble(const Mixer& mixer, const InstanceFactory& factory,
                            const EnsembleConfig& config) {
  FASTQAOA_CHECK(config.instances >= 1, "run_ensemble: need >= 1 instance");
  FASTQAOA_CHECK(config.max_rounds >= 1, "run_ensemble: need >= 1 round");

  EnsembleResult result;
  result.schedules.resize(static_cast<std::size_t>(config.instances));
  result.ratios.resize(static_cast<std::size_t>(config.instances));

  // Fork one stream per instance serially so instance i sees the same
  // randomness no matter how many threads run the loop below.
  Rng master(config.seed);
  std::vector<Rng> streams;
  streams.reserve(static_cast<std::size_t>(config.instances));
  for (int inst = 0; inst < config.instances; ++inst) {
    streams.push_back(master.fork());
  }

  const int team = resolve_threads(config.threads, config.instances);
  std::exception_ptr error;
#pragma omp parallel for schedule(dynamic) num_threads(team) \
    if (config.instances > 1)
  for (int inst = 0; inst < config.instances; ++inst) {
    try {
      FASTQAOA_TRACE_SPAN("ensemble_instance");
      [[maybe_unused]] const auto instance_start =
          std::chrono::steady_clock::now();
      Rng instance_rng = streams[static_cast<std::size_t>(inst)];
      dvec table = factory(instance_rng);
      FASTQAOA_CHECK(table.size() == mixer.dim(),
                     "run_ensemble: factory table does not match mixer "
                     "dimension");

      FindAnglesOptions opt = config.angle_options;
      // Per-instance angle-finder stream, still derived from the study seed.
      opt.seed = instance_rng();
      // Per-instance checkpoints would race on one file; studies re-run
      // whole instances instead.
      opt.checkpoint_file.clear();
      std::vector<AngleSchedule> schedules =
          find_angles(mixer, table, config.max_rounds, opt);

      std::vector<double> inst_ratios;
      inst_ratios.reserve(schedules.size());
      for (const AngleSchedule& s : schedules) {
        inst_ratios.push_back(
            approximation_ratio(s.expectation, table, opt.direction));
      }
      result.schedules[static_cast<std::size_t>(inst)] = std::move(schedules);
      result.ratios[static_cast<std::size_t>(inst)] = std::move(inst_ratios);
      FASTQAOA_OBS_COUNT_GLOBAL("study.ensemble.instances", 1);
      FASTQAOA_OBS_TIME_GLOBAL(
          "study.ensemble.instance",
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        instance_start)
              .count());
    } catch (...) {
#pragma omp critical(fastqaoa_ensemble_error)
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);

  result.per_round.reserve(static_cast<std::size_t>(config.max_rounds));
  for (int p = 1; p <= config.max_rounds; ++p) {
    std::vector<double> column;
    column.reserve(static_cast<std::size_t>(config.instances));
    for (const auto& inst : result.ratios) {
      column.push_back(inst[static_cast<std::size_t>(p - 1)]);
    }
    result.per_round.push_back(sample_stats(column));
  }
  return result;
}

MedianTransferResult median_angle_transfer(const Mixer& mixer,
                                           const InstanceFactory& factory,
                                           int p, int restarts,
                                           const EnsembleConfig& config) {
  FASTQAOA_CHECK(config.instances >= 1,
                 "median_angle_transfer: need >= 1 instance");
  FASTQAOA_CHECK(p >= 1 && restarts >= 1,
                 "median_angle_transfer: bad p/restarts");

  Rng master(config.seed);
  std::vector<Rng> streams;
  streams.reserve(static_cast<std::size_t>(config.instances));
  for (int inst = 0; inst < config.instances; ++inst) {
    streams.push_back(master.fork());
  }

  std::vector<dvec> tables(static_cast<std::size_t>(config.instances));
  std::vector<std::vector<double>> angle_sets(
      static_cast<std::size_t>(config.instances));
  std::vector<double> donor_ratios(static_cast<std::size_t>(config.instances));

  const int team = resolve_threads(config.threads, config.instances);
  std::exception_ptr error;
#pragma omp parallel for schedule(dynamic) num_threads(team) \
    if (config.instances > 1)
  for (int inst = 0; inst < config.instances; ++inst) {
    try {
      Rng instance_rng = streams[static_cast<std::size_t>(inst)];
      dvec table = factory(instance_rng);
      FindAnglesOptions opt = config.angle_options;
      opt.seed = instance_rng();
      AngleSchedule s = find_angles_random(mixer, table, p, restarts, opt);
      donor_ratios[static_cast<std::size_t>(inst)] =
          approximation_ratio(s.expectation, table, opt.direction);
      angle_sets[static_cast<std::size_t>(inst)] = s.packed();
      tables[static_cast<std::size_t>(inst)] = std::move(table);
    } catch (...) {
#pragma omp critical(fastqaoa_transfer_error)
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);

  MedianTransferResult result;
  result.median_packed = median_angles(angle_sets);
  result.donor_ratios = sample_stats(donor_ratios);

  std::vector<double> transfer(tables.size());
#pragma omp parallel for schedule(dynamic) num_threads(team) \
    if (tables.size() > 1)
  for (std::ptrdiff_t i = 0;
       i < static_cast<std::ptrdiff_t>(tables.size()); ++i) {
    try {
      const double e = evaluate_angles(
          mixer, tables[static_cast<std::size_t>(i)], result.median_packed,
          config.angle_options.phase_values);
      transfer[static_cast<std::size_t>(i)] = approximation_ratio(
          e, tables[static_cast<std::size_t>(i)],
          config.angle_options.direction);
    } catch (...) {
#pragma omp critical(fastqaoa_transfer_eval_error)
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
  result.transfer_ratios = sample_stats(transfer);
  return result;
}

}  // namespace fastqaoa
