#include "study/ensemble.hpp"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "common/error.hpp"
#include "common/threading.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/fault.hpp"

namespace fastqaoa {

namespace {

/// Resolve an EnsembleConfig thread request into an OpenMP num_threads
/// argument (clamped to the instance count; at least 1).
int resolve_threads(int requested, int instances) {
  int t = requested > 0 ? requested : num_threads();
  if (t > instances) t = instances;
  return t < 1 ? 1 : t;
}

std::filesystem::path manifest_path(const std::string& dir) {
  return std::filesystem::path(dir) / "manifest.txt";
}

std::filesystem::path instance_path(const std::string& dir, int inst) {
  return std::filesystem::path(dir) /
         ("instance_" + std::to_string(inst) + ".txt");
}

/// The identity a checkpoint directory is bound to. Everything that shapes
/// an instance's randomness or workload is in here; resuming under a
/// different value of any field would silently mix two studies' results,
/// so mismatches are rejected loudly.
struct StudyFingerprint {
  std::uint64_t dim = 0;
  std::uint64_t seed = 0;
  int instances = 0;
  int max_rounds = 0;
  std::string mixer;
};

void write_manifest(const std::string& dir, const StudyFingerprint& fp) {
  std::ostringstream out;
  out << "fastqaoa-ensemble v1\n";
  out << "dim=" << fp.dim << " seed=" << fp.seed
      << " instances=" << fp.instances << " max_rounds=" << fp.max_rounds
      << " mixer=" << fp.mixer << "\n";
  runtime::atomic_write_file(manifest_path(dir).string(), out.str(),
                             "run_ensemble manifest");
}

/// Validate an existing manifest against this run's identity. Any mismatch
/// (or an unreadable file) throws with the offending field named.
void check_manifest(const std::string& dir, const StudyFingerprint& fp) {
  const std::string path = manifest_path(dir).string();
  std::ifstream in(path);
  FASTQAOA_CHECK(in.good(), "run_ensemble: cannot read manifest " + path);
  std::string header;
  std::getline(in, header);
  FASTQAOA_CHECK(header == "fastqaoa-ensemble v1",
                 "run_ensemble: unrecognized manifest header in " + path);
  std::string line;
  std::getline(in, line);
  StudyFingerprint found;
  std::istringstream fields(line);
  std::string field;
  while (fields >> field) {
    const std::size_t eq = field.find('=');
    FASTQAOA_CHECK(eq != std::string::npos,
                   "run_ensemble: malformed manifest in " + path);
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "dim") {
      found.dim = std::stoull(value);
    } else if (key == "seed") {
      found.seed = std::stoull(value);
    } else if (key == "instances") {
      found.instances = std::stoi(value);
    } else if (key == "max_rounds") {
      found.max_rounds = std::stoi(value);
    } else if (key == "mixer") {
      std::string tail;
      std::getline(fields, tail);
      found.mixer = value + tail;
      break;
    } else {
      FASTQAOA_CHECK(
          false, "run_ensemble: unknown manifest field '" + key + "' in " +
                     path);
    }
  }
  auto mismatch = [&](const std::string& name, const std::string& have,
                      const std::string& want) {
    FASTQAOA_CHECK(false,
                   "run_ensemble: checkpoint dir " + dir +
                       " belongs to a different study — " + name + " is " +
                       have + " but this run expects " + want +
                       "; use a fresh directory or delete the stale one");
  };
  if (found.dim != fp.dim) {
    mismatch("dimension", std::to_string(found.dim), std::to_string(fp.dim));
  }
  if (found.seed != fp.seed) {
    mismatch("seed", std::to_string(found.seed), std::to_string(fp.seed));
  }
  if (found.instances != fp.instances) {
    mismatch("instance count", std::to_string(found.instances),
             std::to_string(fp.instances));
  }
  if (found.max_rounds != fp.max_rounds) {
    mismatch("max_rounds", std::to_string(found.max_rounds),
             std::to_string(fp.max_rounds));
  }
  if (found.mixer != fp.mixer) {
    mismatch("mixer", "'" + found.mixer + "'", "'" + fp.mixer + "'");
  }
}

/// Persist one fully completed instance (atomic write: a crash mid-save
/// leaves no instance file, so presence == complete).
void save_instance(const std::string& dir, int inst,
                   const std::vector<AngleSchedule>& schedules) {
  std::ostringstream out;
  out << "fastqaoa-ensemble-instance v1\n";
  write_schedules(out, schedules);
  runtime::atomic_write_file(instance_path(dir, inst).string(), out.str(),
                             "run_ensemble instance checkpoint");
}

/// Load a previously completed instance, or nullopt when none was saved.
std::optional<std::vector<AngleSchedule>> load_instance(
    const std::string& dir, int inst) {
  const std::string path = instance_path(dir, inst).string();
  std::ifstream in(path);
  if (!in.good()) return std::nullopt;
  std::string header;
  std::getline(in, header);
  FASTQAOA_CHECK(header == "fastqaoa-ensemble-instance v1",
                 "run_ensemble: unrecognized instance checkpoint " + path);
  return read_schedules(in, "run_ensemble(" + path + ")");
}

}  // namespace

EnsembleResult run_ensemble(const Mixer& mixer, const InstanceFactory& factory,
                            const EnsembleConfig& config) {
  FASTQAOA_CHECK(config.instances >= 1, "run_ensemble: need >= 1 instance");
  FASTQAOA_CHECK(config.max_rounds >= 1, "run_ensemble: need >= 1 round");

  EnsembleResult result;
  result.schedules.resize(static_cast<std::size_t>(config.instances));
  result.ratios.resize(static_cast<std::size_t>(config.instances));

  // One live budget shared by every instance: the study has a single
  // deadline/evaluation pool, not one per instance.
  runtime::BudgetTracker tracker(config.budget);

  // Fork one stream per instance serially so instance i sees the same
  // randomness no matter how many threads run the loop below — and no
  // matter whether this run started from scratch or resumed a checkpoint.
  Rng master(config.seed);
  std::vector<Rng> streams;
  streams.reserve(static_cast<std::size_t>(config.instances));
  for (int inst = 0; inst < config.instances; ++inst) {
    streams.push_back(master.fork());
  }

  // Crash-safe resume: validate (or create) the manifest, then reload every
  // instance file present. Presence == complete (saves are atomic and only
  // happen after a full, unstopped search), so anything missing is simply
  // recomputed below from its deterministic stream.
  std::vector<char> done(static_cast<std::size_t>(config.instances), 0);
  const bool checkpointing = !config.checkpoint_dir.empty();
  if (checkpointing) {
    const StudyFingerprint fp{mixer.dim(), config.seed, config.instances,
                              config.max_rounds, mixer.name()};
    std::filesystem::create_directories(config.checkpoint_dir);
    if (std::filesystem::exists(manifest_path(config.checkpoint_dir))) {
      check_manifest(config.checkpoint_dir, fp);
    } else {
      write_manifest(config.checkpoint_dir, fp);
    }
    std::size_t resumed = 0;
    for (int inst = 0; inst < config.instances; ++inst) {
      std::optional<std::vector<AngleSchedule>> saved =
          load_instance(config.checkpoint_dir, inst);
      if (!saved) continue;
      result.schedules[static_cast<std::size_t>(inst)] = std::move(*saved);
      done[static_cast<std::size_t>(inst)] = 1;
      ++resumed;
    }
    FASTQAOA_OBS_COUNT_GLOBAL("runtime.checkpoint.resumed_instances",
                              resumed);
  }

  const int team = resolve_threads(config.threads, config.instances);
  std::exception_ptr error;
#pragma omp parallel for schedule(dynamic) num_threads(team) \
    if (config.instances > 1)
  for (int inst = 0; inst < config.instances; ++inst) {
    try {
      FASTQAOA_TRACE_SPAN("ensemble_instance");
      [[maybe_unused]] const auto instance_start =
          std::chrono::steady_clock::now();
      Rng instance_rng = streams[static_cast<std::size_t>(inst)];
      if (FASTQAOA_FAULT_FIRE("study.factory_throw", inst)) {
        throw Error("run_ensemble: injected factory failure (instance " +
                    std::to_string(inst) + ")");
      }
      dvec table = factory(instance_rng);
      FASTQAOA_CHECK(table.size() == mixer.dim(),
                     "run_ensemble: factory table does not match mixer "
                     "dimension");

      FindAnglesOptions opt = config.angle_options;
      // Per-instance angle-finder stream, still derived from the study seed.
      opt.seed = instance_rng();
      // Per-instance checkpoints would race on one file; studies persist
      // whole instances into checkpoint_dir instead.
      opt.checkpoint_file.clear();
      opt.shared_tracker = &tracker;

      const bool already_done = done[static_cast<std::size_t>(inst)] != 0;
      std::vector<AngleSchedule> schedules;
      if (already_done) {
        // Resumed from the checkpoint; the stream draws above still ran so
        // every other instance sees identical randomness.
        schedules = result.schedules[static_cast<std::size_t>(inst)];
      } else {
        if (tracker.check() != runtime::StopReason::None) {
          // Budget tripped before this instance started: leave it
          // incomplete (empty schedules) instead of burning its first BFGS
          // iteration per round.
          result.ratios[static_cast<std::size_t>(inst)].clear();
          continue;
        }
        schedules = find_angles(mixer, table, config.max_rounds, opt);
      }

      std::vector<double> inst_ratios;
      inst_ratios.reserve(schedules.size());
      for (const AngleSchedule& s : schedules) {
        inst_ratios.push_back(
            approximation_ratio(s.expectation, table, opt.direction));
      }
      const bool complete =
          static_cast<int>(schedules.size()) == config.max_rounds &&
          (schedules.empty() || !schedules.back().stopped_early());
      result.schedules[static_cast<std::size_t>(inst)] = std::move(schedules);
      result.ratios[static_cast<std::size_t>(inst)] = std::move(inst_ratios);
      if (complete && !already_done) {
        done[static_cast<std::size_t>(inst)] = 1;
        if (checkpointing) {
          save_instance(config.checkpoint_dir, inst,
                        result.schedules[static_cast<std::size_t>(inst)]);
          if (FASTQAOA_FAULT_FIRE("study.crash_after_instance", inst)) {
            // Simulated hard kill right after the instance checkpoint
            // landed — the scenario the resume path must survive.
            std::_Exit(137);
          }
        }
      } else if (complete) {
        done[static_cast<std::size_t>(inst)] = 1;
      }
      FASTQAOA_OBS_COUNT_GLOBAL("study.ensemble.instances", 1);
      FASTQAOA_OBS_TIME_GLOBAL(
          "study.ensemble.instance",
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        instance_start)
              .count());
    } catch (...) {
#pragma omp critical(fastqaoa_ensemble_error)
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);

  for (int inst = 0; inst < config.instances; ++inst) {
    if (done[static_cast<std::size_t>(inst)] != 0) {
      ++result.completed_instances;
    }
  }
  result.stop_reason = tracker.check();

  // Aggregate over whatever data exists per round: under a tripped budget
  // some instances have fewer (or zero) rounds, and a round nobody reached
  // reports an empty SampleStats (count == 0) rather than throwing.
  result.per_round.reserve(static_cast<std::size_t>(config.max_rounds));
  for (int p = 1; p <= config.max_rounds; ++p) {
    std::vector<double> column;
    column.reserve(static_cast<std::size_t>(config.instances));
    for (const auto& inst : result.ratios) {
      if (inst.size() >= static_cast<std::size_t>(p)) {
        column.push_back(inst[static_cast<std::size_t>(p - 1)]);
      }
    }
    result.per_round.push_back(column.empty() ? SampleStats{}
                                              : sample_stats(column));
  }
  return result;
}

MedianTransferResult median_angle_transfer(const Mixer& mixer,
                                           const InstanceFactory& factory,
                                           int p, int restarts,
                                           const EnsembleConfig& config) {
  FASTQAOA_CHECK(config.instances >= 1,
                 "median_angle_transfer: need >= 1 instance");
  FASTQAOA_CHECK(p >= 1 && restarts >= 1,
                 "median_angle_transfer: bad p/restarts");

  Rng master(config.seed);
  std::vector<Rng> streams;
  streams.reserve(static_cast<std::size_t>(config.instances));
  for (int inst = 0; inst < config.instances; ++inst) {
    streams.push_back(master.fork());
  }

  std::vector<dvec> tables(static_cast<std::size_t>(config.instances));
  std::vector<std::vector<double>> angle_sets(
      static_cast<std::size_t>(config.instances));
  std::vector<double> donor_ratios(static_cast<std::size_t>(config.instances));

  const int team = resolve_threads(config.threads, config.instances);
  std::exception_ptr error;
#pragma omp parallel for schedule(dynamic) num_threads(team) \
    if (config.instances > 1)
  for (int inst = 0; inst < config.instances; ++inst) {
    try {
      Rng instance_rng = streams[static_cast<std::size_t>(inst)];
      dvec table = factory(instance_rng);
      FindAnglesOptions opt = config.angle_options;
      opt.seed = instance_rng();
      AngleSchedule s = find_angles_random(mixer, table, p, restarts, opt);
      donor_ratios[static_cast<std::size_t>(inst)] =
          approximation_ratio(s.expectation, table, opt.direction);
      angle_sets[static_cast<std::size_t>(inst)] = s.packed();
      tables[static_cast<std::size_t>(inst)] = std::move(table);
    } catch (...) {
#pragma omp critical(fastqaoa_transfer_error)
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);

  MedianTransferResult result;
  result.median_packed = median_angles(angle_sets);
  result.donor_ratios = sample_stats(donor_ratios);

  std::vector<double> transfer(tables.size());
#pragma omp parallel for schedule(dynamic) num_threads(team) \
    if (tables.size() > 1)
  for (std::ptrdiff_t i = 0;
       i < static_cast<std::ptrdiff_t>(tables.size()); ++i) {
    try {
      const double e = evaluate_angles(
          mixer, tables[static_cast<std::size_t>(i)], result.median_packed,
          config.angle_options.phase_values);
      transfer[static_cast<std::size_t>(i)] = approximation_ratio(
          e, tables[static_cast<std::size_t>(i)],
          config.angle_options.direction);
    } catch (...) {
#pragma omp critical(fastqaoa_transfer_eval_error)
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
  result.transfer_ratios = sample_stats(transfer);
  return result;
}

}  // namespace fastqaoa
