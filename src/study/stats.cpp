#include "study/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace fastqaoa {

SampleStats sample_stats(const std::vector<double>& xs) {
  FASTQAOA_CHECK(!xs.empty(), "sample_stats: empty sample");
  SampleStats s;
  s.count = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (const double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(xs.size()));
  return s;
}

double median(std::vector<double> xs) {
  FASTQAOA_CHECK(!xs.empty(), "median: empty sample");
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  return xs.size() % 2 == 1 ? xs[mid] : 0.5 * (xs[mid - 1] + xs[mid]);
}

}  // namespace fastqaoa
