#pragma once
/// \file stats.hpp
/// Small descriptive-statistics helpers for ensemble studies.

#include <vector>

namespace fastqaoa {

/// Mean / stddev / extrema of a sample.
struct SampleStats {
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Descriptive statistics of a (non-empty) sample.
SampleStats sample_stats(const std::vector<double>& xs);

/// Median of a (non-empty) sample (averaged middle pair for even sizes).
double median(std::vector<double> xs);

}  // namespace fastqaoa
