#pragma once
/// \file metrics.hpp
/// Engine-wide metrics: named counters and timing accumulators with
/// per-thread sinks merged at join points.
///
/// The design mirrors the plan/workspace split: hot paths increment a
/// MetricsSink they own exclusively (the one embedded in their
/// EvalWorkspace, bound as the thread's *active sink* for the duration of a
/// call), so instrumentation never touches shared state on the hot path.
/// Outer loops merge each worker's sink into the process-global aggregate
/// exactly once, at their join point — which is why merged totals are
/// identical at any thread count: the same deterministic work produces the
/// same counts no matter how it was scheduled.
///
/// Metric names are interned once into dense ids (function-local statics at
/// each instrumentation site), so a hot-path increment is a vector index,
/// not a hash lookup.
///
/// All classes here compile unconditionally; only the FASTQAOA_OBS_* macros
/// at the bottom — the things that sit on hot paths — compile to nothing
/// when the build sets FASTQAOA_PROFILING=OFF.

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/timer.hpp"

namespace fastqaoa::obs {

/// Dense handle for an interned metric name.
using MetricId = std::size_t;

/// Intern a counter / timer / histogram name (process-global, append-only;
/// safe to call from any thread, but intended to run once per site via a
/// local static). The three kinds live in separate id spaces.
MetricId counter_id(std::string_view name);
MetricId timer_id(std::string_view name);
MetricId histogram_id(std::string_view name);

/// Accumulated timing distribution for one named timer.
struct TimingStat {
  std::uint64_t count = 0;
  double total = 0.0;  ///< seconds
  double min = std::numeric_limits<double>::infinity();
  double max = 0.0;

  void add(double seconds) noexcept {
    ++count;
    total += seconds;
    if (seconds < min) min = seconds;
    if (seconds > max) max = seconds;
  }
  void merge(const TimingStat& other) noexcept {
    count += other.count;
    total += other.total;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }
};

/// Fixed log2-bucketed distribution for one named histogram.
///
/// The bucket index is a pure function of the recorded value (its binary
/// exponent), never of thread scheduling or insertion order — so merged
/// bucket counts are bit-identical at any worker/thread count on the same
/// workload, exactly like counters. Bucket i covers values in
/// [2^(i-21), 2^(i-20)): bucket 0 absorbs everything below ~0.95 µs (the
/// base resolution, chosen for second-denominated latencies; integer-valued
/// samples such as batch widths land in the exact power-of-two buckets),
/// and the last bucket absorbs the unbounded tail.
struct HistogramStat {
  static constexpr std::size_t kBuckets = 64;

  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = 0.0;
  std::array<std::uint64_t, kBuckets> buckets{};

  /// Bucket index for a value: clamp(binary_exponent(v) + 20, 0, 63).
  /// Non-positive (and NaN) values land in bucket 0.
  [[nodiscard]] static std::size_t bucket_index(double v) noexcept;
  /// Inclusive upper bound of bucket i: 2^(i-20) seconds; +inf for the
  /// last bucket.
  [[nodiscard]] static double bucket_upper(std::size_t i) noexcept;

  void add(double v) noexcept {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
    ++buckets[bucket_index(v)];
  }
  void merge(const HistogramStat& other) noexcept {
    count += other.count;
    sum += other.sum;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
    for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  }
  /// Quantile estimate derived from bucket upper bounds (clamped to the
  /// observed [min, max] so p100-ish queries never exceed real data).
  [[nodiscard]] double quantile(double q) const noexcept;
};

/// Point-in-time view of a sink (or of the global aggregate) keyed by name.
/// Mergeable, and serializable to a stable (sorted-key) JSON object.
struct MetricsSnapshot {
  /// Process facts attached to the snapshot (e.g. kernel_backend). Labels
  /// describe configuration, not accumulation: merge() overwrites ours with
  /// the other side's values instead of combining them.
  std::map<std::string, std::string> labels;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, TimingStat> timings;
  std::map<std::string, HistogramStat> histograms;

  void merge(const MetricsSnapshot& other);
  [[nodiscard]] bool empty() const noexcept {
    return labels.empty() && counters.empty() && timings.empty() &&
           histograms.empty();
  }
  /// {"labels": {name: value, ...},
  ///  "counters": {name: count, ...},
  ///  "timings": {name: {"count": n, "total_s": t, "min_s": a, "max_s": b}},
  ///  "histograms": {name: {"count": n, "sum": s, "min": a, "max": b,
  ///                        "p50": q1, "p95": q2, "p99": q3,
  ///                        "buckets": {"<index>": count, ...}}}}
  /// Bucket counts are exact (sparse: zero buckets omitted); the quantiles
  /// are derived from bucket upper bounds.
  [[nodiscard]] std::string to_json() const;
};

/// One thread's (or one workspace's) metric store. Not thread-safe — that
/// is the point: exactly one thread writes a given sink, and merges into
/// shared aggregates happen only at join points.
class MetricsSink {
 public:
  void add_count(MetricId id, std::uint64_t delta = 1) {
    if (id >= counters_.size()) counters_.resize(id + 1, 0);
    counters_[id] += delta;
  }
  void add_timing(MetricId id, double seconds) {
    if (id >= timings_.size()) timings_.resize(id + 1);
    timings_[id].add(seconds);
  }
  void add_histogram(MetricId id, double value) {
    if (id >= histograms_.size()) histograms_.resize(id + 1);
    histograms_[id].add(value);
  }
  void merge(const MetricsSink& other);
  void clear() noexcept {
    counters_.clear();
    timings_.clear();
    histograms_.clear();
  }
  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  std::vector<std::uint64_t> counters_;   ///< indexed by counter MetricId
  std::vector<TimingStat> timings_;       ///< indexed by timer MetricId
  std::vector<HistogramStat> histograms_; ///< indexed by histogram MetricId
};

/// Runtime master switch (default on). When off, SinkScope binds no active
/// sink, so every instrumentation site becomes a null-pointer test — the
/// knob the overhead bench uses to measure instrumented vs uninstrumented
/// evaluate() inside one binary.
void set_metrics_enabled(bool enabled) noexcept;
[[nodiscard]] bool metrics_enabled() noexcept;

/// The calling thread's active sink (nullptr when none is bound).
[[nodiscard]] MetricsSink* active_sink() noexcept;

/// RAII binding of a sink as the calling thread's active sink. evaluate()
/// binds its workspace's sink; optimizer outer loops bind their chain's
/// workspace sink around the whole chain so BFGS/basinhopping counters land
/// in the same per-thread store. Scopes nest (the previous binding is
/// restored on destruction).
class SinkScope {
 public:
  explicit SinkScope(MetricsSink& sink) noexcept;
  ~SinkScope();
  SinkScope(const SinkScope&) = delete;
  SinkScope& operator=(const SinkScope&) = delete;

 private:
  MetricsSink* previous_;
};

/// Times a scope into the active sink (captured at construction).
class ScopedTimer {
 public:
  explicit ScopedTimer(MetricId id) noexcept
      : sink_(active_sink()), id_(id) {}
  ~ScopedTimer() {
    if (sink_ != nullptr) sink_->add_timing(id_, timer_.seconds());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsSink* sink_;
  MetricId id_;
  WallTimer timer_;
};

/// Times a scope into a *histogram* of the active sink (captured at
/// construction) — for durations whose distribution matters, not just the
/// total (per-eval latency, WHT round time).
class ScopedHistTimer {
 public:
  explicit ScopedHistTimer(MetricId id) noexcept
      : sink_(active_sink()), id_(id) {}
  ~ScopedHistTimer() {
    if (sink_ != nullptr) sink_->add_histogram(id_, timer_.seconds());
  }
  ScopedHistTimer(const ScopedHistTimer&) = delete;
  ScopedHistTimer& operator=(const ScopedHistTimer&) = delete;

 private:
  MetricsSink* sink_;
  MetricId id_;
  WallTimer timer_;
};

/// Process-global aggregate. merge_global is the join-point primitive
/// (mutex-protected, called once per chain/instance — never per
/// evaluation); count_global/time_global/hist_global record cold-path
/// events that have no per-thread sink (find_angles rounds, ensemble
/// instances, service job bookkeeping).
void merge_global(const MetricsSink& sink);
void count_global(MetricId id, std::uint64_t delta = 1);
void time_global(MetricId id, double seconds);
void hist_global(MetricId id, double value);
[[nodiscard]] MetricsSnapshot global_snapshot();
void reset_global();

/// Attach a label to every global snapshot (the kernel dispatch layer sets
/// "kernel_backend" here). Labels describe process configuration and survive
/// reset_global(), which clears accumulated counts only.
void set_global_label(std::string_view name, std::string_view value);

}  // namespace fastqaoa::obs

// ---------------------------------------------------------------------------
// Hot-path instrumentation macros. These — and only these — compile to
// nothing when FASTQAOA_PROFILING=OFF, so an uninstrumented build carries
// zero overhead and zero behavior change.
// ---------------------------------------------------------------------------

#define FASTQAOA_OBS_CONCAT_IMPL(a, b) a##b
#define FASTQAOA_OBS_CONCAT(a, b) FASTQAOA_OBS_CONCAT_IMPL(a, b)

#ifdef FASTQAOA_PROFILING_ENABLED

/// Bind `sink` as this thread's active sink for the enclosing scope.
#define FASTQAOA_OBS_SCOPE(sink) \
  ::fastqaoa::obs::SinkScope FASTQAOA_OBS_CONCAT(fq_obs_scope_, __LINE__)(sink)

/// Add `delta` to the named counter in the active sink (no-op if none).
#define FASTQAOA_OBS_COUNT(name, delta)                                  \
  do {                                                                   \
    if (::fastqaoa::obs::MetricsSink* fq_obs_s =                         \
            ::fastqaoa::obs::active_sink()) {                            \
      static const ::fastqaoa::obs::MetricId fq_obs_id =                 \
          ::fastqaoa::obs::counter_id(name);                             \
      fq_obs_s->add_count(fq_obs_id, (delta));                           \
    }                                                                    \
  } while (false)

/// Time the enclosing scope into the named timer of the active sink.
#define FASTQAOA_OBS_TIMED(name)                                         \
  static const ::fastqaoa::obs::MetricId FASTQAOA_OBS_CONCAT(            \
      fq_obs_tid_, __LINE__) = ::fastqaoa::obs::timer_id(name);          \
  ::fastqaoa::obs::ScopedTimer FASTQAOA_OBS_CONCAT(fq_obs_timer_,        \
                                                   __LINE__)(            \
      FASTQAOA_OBS_CONCAT(fq_obs_tid_, __LINE__))

/// Record an externally measured duration into the named timer of the
/// active sink (for durations not expressible as an enclosing scope).
#define FASTQAOA_OBS_TIME(name, seconds)                                  \
  do {                                                                    \
    if (::fastqaoa::obs::MetricsSink* fq_obs_s =                          \
            ::fastqaoa::obs::active_sink()) {                             \
      static const ::fastqaoa::obs::MetricId fq_obs_id =                  \
          ::fastqaoa::obs::timer_id(name);                                \
      fq_obs_s->add_timing(fq_obs_id, (seconds));                         \
    }                                                                     \
  } while (false)

/// Record a value into the named histogram of the active sink.
#define FASTQAOA_OBS_HIST(name, value)                                    \
  do {                                                                    \
    if (::fastqaoa::obs::MetricsSink* fq_obs_s =                          \
            ::fastqaoa::obs::active_sink()) {                             \
      static const ::fastqaoa::obs::MetricId fq_obs_id =                  \
          ::fastqaoa::obs::histogram_id(name);                            \
      fq_obs_s->add_histogram(fq_obs_id, (value));                        \
    }                                                                     \
  } while (false)

/// Time the enclosing scope into the named *histogram* of the active sink.
#define FASTQAOA_OBS_HIST_TIMED(name)                                     \
  static const ::fastqaoa::obs::MetricId FASTQAOA_OBS_CONCAT(             \
      fq_obs_hid_, __LINE__) = ::fastqaoa::obs::histogram_id(name);       \
  ::fastqaoa::obs::ScopedHistTimer FASTQAOA_OBS_CONCAT(fq_obs_htimer_,    \
                                                       __LINE__)(         \
      FASTQAOA_OBS_CONCAT(fq_obs_hid_, __LINE__))

/// Cold-path global counter/timer (serial outer-loop bookkeeping).
#define FASTQAOA_OBS_COUNT_GLOBAL(name, delta)                           \
  do {                                                                   \
    if (::fastqaoa::obs::metrics_enabled()) {                            \
      static const ::fastqaoa::obs::MetricId fq_obs_id =                 \
          ::fastqaoa::obs::counter_id(name);                             \
      ::fastqaoa::obs::count_global(fq_obs_id, (delta));                 \
    }                                                                    \
  } while (false)

#define FASTQAOA_OBS_TIME_GLOBAL(name, seconds)                          \
  do {                                                                   \
    if (::fastqaoa::obs::metrics_enabled()) {                            \
      static const ::fastqaoa::obs::MetricId fq_obs_id =                 \
          ::fastqaoa::obs::timer_id(name);                               \
      ::fastqaoa::obs::time_global(fq_obs_id, (seconds));                \
    }                                                                    \
  } while (false)

#define FASTQAOA_OBS_HIST_GLOBAL(name, value)                             \
  do {                                                                    \
    if (::fastqaoa::obs::metrics_enabled()) {                             \
      static const ::fastqaoa::obs::MetricId fq_obs_id =                  \
          ::fastqaoa::obs::histogram_id(name);                            \
      ::fastqaoa::obs::hist_global(fq_obs_id, (value));                   \
    }                                                                     \
  } while (false)

/// Merge a worker sink into the global aggregate at a join point.
#define FASTQAOA_OBS_MERGE_GLOBAL(sink) ::fastqaoa::obs::merge_global(sink)

#else  // !FASTQAOA_PROFILING_ENABLED

#define FASTQAOA_OBS_SCOPE(sink) \
  do {                           \
  } while (false)
#define FASTQAOA_OBS_COUNT(name, delta) \
  do {                                  \
  } while (false)
#define FASTQAOA_OBS_TIMED(name) \
  do {                           \
  } while (false)
#define FASTQAOA_OBS_TIME(name, seconds) \
  do {                                   \
  } while (false)
#define FASTQAOA_OBS_HIST(name, value) \
  do {                                 \
  } while (false)
#define FASTQAOA_OBS_HIST_TIMED(name) \
  do {                                \
  } while (false)
#define FASTQAOA_OBS_COUNT_GLOBAL(name, delta) \
  do {                                         \
  } while (false)
#define FASTQAOA_OBS_TIME_GLOBAL(name, seconds) \
  do {                                          \
  } while (false)
#define FASTQAOA_OBS_HIST_GLOBAL(name, value) \
  do {                                        \
  } while (false)
#define FASTQAOA_OBS_MERGE_GLOBAL(sink) \
  do {                                  \
  } while (false)

#endif  // FASTQAOA_PROFILING_ENABLED
