#pragma once
/// \file prometheus.hpp
/// Prometheus text-format exposition for MetricsSnapshot, plus the
/// line-by-line format validator shared by the unit tests, qaoa_client
/// --validate, and the CI smoke job.
///
/// Mapping:
///   counters   -> `<prefix>_<name>_total` (TYPE counter)
///   timers     -> `<prefix>_<name>_seconds` (TYPE summary: _sum/_count)
///   histograms -> `<prefix>_<name>` (TYPE histogram: cumulative
///                 `_bucket{le="..."}` series ending at le="+Inf",
///                 plus `_sum`/`_count`)
///
/// Metric names may embed labels with the `name|key=value|key2=value2`
/// convention (the service layer interns per-job-kind series this way);
/// the renderer splits them back into proper Prometheus labels and groups
/// all series of a family under one `# TYPE` block. Snapshot labels
/// (e.g. kernel_backend) are attached to every sample.

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace fastqaoa::obs {

/// Render a snapshot as Prometheus text exposition format.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snap,
                                        std::string_view prefix = "fastqaoa");

/// Append one `# HELP`/`# TYPE`/sample triple for a standalone gauge
/// (the service layer uses this for queue depth, worker counts, ...).
/// `labels` is a pre-rendered label body like `kind="evaluate"` (may be
/// empty). `name` must already be a valid Prometheus metric name.
void append_prometheus_gauge(std::string& out, std::string_view name,
                             std::string_view help, double value,
                             std::string_view labels = {});

/// Same, for a monotone counter sample (`name` should end in `_total`).
void append_prometheus_counter(std::string& out, std::string_view name,
                               std::string_view help, std::uint64_t value,
                               std::string_view labels = {});

/// Turn an arbitrary metric name into a valid Prometheus name fragment
/// (dots and other invalid characters become underscores).
[[nodiscard]] std::string sanitize_prometheus_name(std::string_view name);

/// Escape a label value (backslash, quote, newline).
[[nodiscard]] std::string escape_prometheus_label_value(std::string_view v);

/// Strict line-by-line validation of Prometheus text exposition format:
///   - every sample belongs to a family with a preceding `# TYPE` line,
///     and TYPE lines are unique per family with a known type
///   - metric names and label syntax are well-formed, values parse
///   - histogram bucket series are cumulative and monotone in `le`,
///     terminate with le="+Inf", and `_count` equals the +Inf bucket
///   - histogram families carry `_sum` and `_count`
/// Returns true when valid; otherwise fills *error (if non-null) with a
/// message naming the offending line.
[[nodiscard]] bool validate_prometheus_text(const std::string& text,
                                            std::string* error = nullptr);

}  // namespace fastqaoa::obs
