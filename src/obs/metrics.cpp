#include "obs/metrics.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace fastqaoa::obs {

namespace {

/// Append-only name registry. Counter and timer names live in separate id
/// spaces (a sink indexes two separate vectors).
struct Registry {
  std::mutex mutex;
  std::vector<std::string> counter_names;
  std::vector<std::string> timer_names;
  std::vector<std::string> histogram_names;
  std::unordered_map<std::string, MetricId> counter_ids;
  std::unordered_map<std::string, MetricId> timer_ids;
  std::unordered_map<std::string, MetricId> histogram_ids;
};

Registry& registry() {
  static Registry r;
  return r;
}

MetricId intern(std::string_view name, std::vector<std::string>& names,
                std::unordered_map<std::string, MetricId>& ids) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::string key(name);
  auto it = ids.find(key);
  if (it != ids.end()) return it->second;
  const MetricId id = names.size();
  names.push_back(key);
  ids.emplace(std::move(key), id);
  return id;
}

std::string counter_name(MetricId id) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.counter_names[id];
}

std::string timer_name(MetricId id) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.timer_names[id];
}

std::string histogram_name(MetricId id) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.histogram_names[id];
}

std::atomic<bool> g_metrics_enabled{true};

thread_local MetricsSink* t_active_sink = nullptr;

/// Global aggregate, written only through the mutex-protected entry points.
struct GlobalSink {
  std::mutex mutex;
  MetricsSink sink;
  std::map<std::string, std::string> labels;
};

GlobalSink& global_sink() {
  static GlobalSink g;
  return g;
}

void append_json_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_double(std::ostringstream& os, double v) {
  // min of an empty TimingStat is +inf, which JSON cannot represent.
  if (v == std::numeric_limits<double>::infinity()) {
    os << "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace

MetricId counter_id(std::string_view name) {
  Registry& r = registry();
  return intern(name, r.counter_names, r.counter_ids);
}

MetricId timer_id(std::string_view name) {
  Registry& r = registry();
  return intern(name, r.timer_names, r.timer_ids);
}

MetricId histogram_id(std::string_view name) {
  Registry& r = registry();
  return intern(name, r.histogram_names, r.histogram_ids);
}

std::size_t HistogramStat::bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // non-positive and NaN samples
  int exp = 0;
  std::frexp(v, &exp);  // v = m * 2^exp with m in [0.5, 1)
  const int idx = exp + 20;  // v in [2^(idx-21), 2^(idx-20))
  if (idx < 0) return 0;
  if (idx >= static_cast<int>(kBuckets)) return kBuckets - 1;
  return static_cast<std::size_t>(idx);
}

double HistogramStat::bucket_upper(std::size_t i) noexcept {
  if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i) - 20);
}

double HistogramStat::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Smallest bucket whose cumulative count reaches ceil(q * count).
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += buckets[i];
    if (static_cast<double>(cum) >= target) {
      double upper = bucket_upper(i);
      if (upper > max) upper = max;  // incl. the +inf last bucket
      if (upper < min) upper = min;
      return upper;
    }
  }
  return max;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.labels) labels[name] = value;
  for (const auto& [name, count] : other.counters) counters[name] += count;
  for (const auto& [name, stat] : other.timings) timings[name].merge(stat);
  for (const auto& [name, hist] : other.histograms) {
    histograms[name].merge(hist);
  }
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << '{';
  if (!labels.empty()) {
    os << "\"labels\":{";
    bool lfirst = true;
    for (const auto& [name, value] : labels) {
      if (!lfirst) os << ',';
      lfirst = false;
      append_json_escaped(os, name);
      os << ':';
      append_json_escaped(os, value);
    }
    os << "},";
  }
  os << "\"counters\":{";
  bool first = true;
  for (const auto& [name, count] : counters) {
    if (!first) os << ',';
    first = false;
    append_json_escaped(os, name);
    os << ':' << count;
  }
  os << "},\"timings\":{";
  first = true;
  for (const auto& [name, stat] : timings) {
    if (!first) os << ',';
    first = false;
    append_json_escaped(os, name);
    os << ":{\"count\":" << stat.count << ",\"total_s\":";
    append_double(os, stat.total);
    os << ",\"min_s\":";
    append_double(os, stat.min);
    os << ",\"max_s\":";
    append_double(os, stat.max);
    os << '}';
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) os << ',';
    first = false;
    append_json_escaped(os, name);
    os << ":{\"count\":" << hist.count << ",\"sum\":";
    append_double(os, hist.sum);
    os << ",\"min\":";
    append_double(os, hist.min);
    os << ",\"max\":";
    append_double(os, hist.max);
    os << ",\"p50\":";
    append_double(os, hist.quantile(0.50));
    os << ",\"p95\":";
    append_double(os, hist.quantile(0.95));
    os << ",\"p99\":";
    append_double(os, hist.quantile(0.99));
    os << ",\"buckets\":{";
    bool bfirst = true;
    for (std::size_t i = 0; i < HistogramStat::kBuckets; ++i) {
      if (hist.buckets[i] == 0) continue;
      if (!bfirst) os << ',';
      bfirst = false;
      os << '"' << i << "\":" << hist.buckets[i];
    }
    os << "}}";
  }
  os << "}}";
  return os.str();
}

void MetricsSink::merge(const MetricsSink& other) {
  if (other.counters_.size() > counters_.size()) {
    counters_.resize(other.counters_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  if (other.timings_.size() > timings_.size()) {
    timings_.resize(other.timings_.size());
  }
  for (std::size_t i = 0; i < other.timings_.size(); ++i) {
    timings_[i].merge(other.timings_[i]);
  }
  if (other.histograms_.size() > histograms_.size()) {
    histograms_.resize(other.histograms_.size());
  }
  for (std::size_t i = 0; i < other.histograms_.size(); ++i) {
    histograms_[i].merge(other.histograms_[i]);
  }
}

bool MetricsSink::empty() const noexcept {
  for (const std::uint64_t c : counters_) {
    if (c != 0) return false;
  }
  for (const TimingStat& t : timings_) {
    if (t.count != 0) return false;
  }
  for (const HistogramStat& h : histograms_) {
    if (h.count != 0) return false;
  }
  return true;
}

MetricsSnapshot MetricsSink::snapshot() const {
  MetricsSnapshot snap;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i] != 0) snap.counters[counter_name(i)] = counters_[i];
  }
  for (std::size_t i = 0; i < timings_.size(); ++i) {
    if (timings_[i].count != 0) snap.timings[timer_name(i)] = timings_[i];
  }
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    if (histograms_[i].count != 0) {
      snap.histograms[histogram_name(i)] = histograms_[i];
    }
  }
  return snap;
}

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

MetricsSink* active_sink() noexcept { return t_active_sink; }

SinkScope::SinkScope(MetricsSink& sink) noexcept
    : previous_(t_active_sink) {
  t_active_sink = metrics_enabled() ? &sink : nullptr;
}

SinkScope::~SinkScope() { t_active_sink = previous_; }

void merge_global(const MetricsSink& sink) {
  if (sink.empty()) return;
  GlobalSink& g = global_sink();
  std::lock_guard<std::mutex> lock(g.mutex);
  g.sink.merge(sink);
}

void count_global(MetricId id, std::uint64_t delta) {
  GlobalSink& g = global_sink();
  std::lock_guard<std::mutex> lock(g.mutex);
  g.sink.add_count(id, delta);
}

void time_global(MetricId id, double seconds) {
  GlobalSink& g = global_sink();
  std::lock_guard<std::mutex> lock(g.mutex);
  g.sink.add_timing(id, seconds);
}

void hist_global(MetricId id, double value) {
  GlobalSink& g = global_sink();
  std::lock_guard<std::mutex> lock(g.mutex);
  g.sink.add_histogram(id, value);
}

MetricsSnapshot global_snapshot() {
  GlobalSink& g = global_sink();
  std::lock_guard<std::mutex> lock(g.mutex);
  MetricsSnapshot snap = g.sink.snapshot();
  snap.labels = g.labels;
  return snap;
}

void reset_global() {
  GlobalSink& g = global_sink();
  std::lock_guard<std::mutex> lock(g.mutex);
  g.sink.clear();  // labels survive: they are configuration, not counts
}

void set_global_label(std::string_view name, std::string_view value) {
  GlobalSink& g = global_sink();
  std::lock_guard<std::mutex> lock(g.mutex);
  g.labels[std::string(name)] = std::string(value);
}

}  // namespace fastqaoa::obs
