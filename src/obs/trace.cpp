#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

namespace fastqaoa::obs {

namespace {

using trace_clock = std::chrono::steady_clock;

struct TraceEvent {
  const char* name;
  double ts_us;
  double dur_us;
  std::uint64_t id = 0;  ///< correlation id ("args":{"id":N}) when has_id
  bool has_id = false;
};

/// Per-thread span buffer. Owned by the thread (appends are uncontended);
/// registered globally so the session can harvest all of them. When a
/// thread dies its events move to the session's retired list so nothing is
/// lost.
struct ThreadBuffer {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
  int tid = 0;
  ~ThreadBuffer();
};

/// Hard per-thread cap so a runaway session cannot exhaust memory; overflow
/// is counted and reported in the emitted JSON instead of silently lost.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 22;

struct Session {
  std::mutex mutex;
  std::vector<ThreadBuffer*> buffers;           ///< live threads
  std::vector<TraceEvent> retired;              ///< from exited threads
  std::vector<std::pair<int, std::uint64_t>> retired_dropped;
  std::atomic<bool> enabled{false};
  std::atomic<std::int64_t> t0_ns{0};
  int next_tid = 0;
};

Session& session() {
  static Session s;
  return s;
}

ThreadBuffer::~ThreadBuffer() {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (std::size_t i = 0; i < s.buffers.size(); ++i) {
    if (s.buffers[i] == this) {
      s.buffers.erase(s.buffers.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  s.retired.insert(s.retired.end(), events.begin(), events.end());
  if (dropped != 0) s.retired_dropped.emplace_back(tid, dropped);
}

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer owned;
  thread_local bool registered = false;
  if (!registered) {
    registered = true;
    Session& s = session();
    std::lock_guard<std::mutex> lock(s.mutex);
    owned.tid = s.next_tid++;
    s.buffers.push_back(&owned);
  }
  return owned;
}

double now_us() {
  const std::int64_t t0 = session().t0_ns.load(std::memory_order_relaxed);
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          trace_clock::now().time_since_epoch())
          .count();
  return static_cast<double>(now - t0) * 1e-3;
}

void append_event_json(std::ostringstream& os, const TraceEvent& e,
                       int tid, bool& first) {
  if (!first) os << ',';
  first = false;
  char buf[64];
  os << "{\"name\":\"" << e.name << "\",\"cat\":\"fastqaoa\",\"ph\":\"X\"";
  std::snprintf(buf, sizeof buf, ",\"ts\":%.3f,\"dur\":%.3f", e.ts_us,
                e.dur_us);
  os << buf << ",\"pid\":1,\"tid\":" << tid;
  if (e.has_id) os << ",\"args\":{\"id\":" << e.id << '}';
  os << '}';
}

}  // namespace

bool tracing_enabled() noexcept {
  return session().enabled.load(std::memory_order_relaxed);
}

void trace_begin() {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (ThreadBuffer* b : s.buffers) {
    b->events.clear();
    b->dropped = 0;
  }
  s.retired.clear();
  s.retired_dropped.clear();
  s.t0_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    trace_clock::now().time_since_epoch())
                    .count(),
                std::memory_order_relaxed);
  s.enabled.store(true, std::memory_order_release);
}

std::string trace_end_json() {
  Session& s = session();
  s.enabled.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(s.mutex);

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  std::uint64_t dropped = 0;
  for (const ThreadBuffer* b : s.buffers) {
    for (const TraceEvent& e : b->events) {
      append_event_json(os, e, b->tid, first);
    }
    dropped += b->dropped;
  }
  for (const TraceEvent& e : s.retired) {
    append_event_json(os, e, /*tid=*/-1, first);
  }
  for (const auto& [tid, n] : s.retired_dropped) dropped += n;
  if (dropped != 0) {
    // Surface overflow as a metadata event rather than dropping silently.
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"fastqaoa.dropped_spans\",\"ph\":\"i\",\"ts\":0,"
          "\"pid\":1,\"tid\":0,\"s\":\"g\",\"args\":{\"count\":"
       << dropped << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

bool write_trace(const std::string& path) {
  const std::string json = trace_end_json();
  std::ofstream out(path);
  if (!out.good()) return false;
  out << json << '\n';
  return out.good();
}

std::size_t trace_span_count() {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::size_t n = s.retired.size();
  for (const ThreadBuffer* b : s.buffers) n += b->events.size();
  return n;
}

TraceSpan::TraceSpan(const char* name) noexcept
    : name_(name), start_us_(-1.0) {
  if (tracing_enabled()) start_us_ = now_us();
}

TraceSpan::TraceSpan(const char* name, std::uint64_t id) noexcept
    : name_(name), start_us_(-1.0), id_(id), has_id_(true) {
  if (tracing_enabled()) start_us_ = now_us();
}

TraceSpan::~TraceSpan() {
  if (start_us_ < 0.0 || !tracing_enabled()) return;
  ThreadBuffer& buffer = thread_buffer();
  if (buffer.events.size() >= kMaxEventsPerThread) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(
      TraceEvent{name_, start_us_, now_us() - start_us_, id_, has_id_});
}

}  // namespace fastqaoa::obs
