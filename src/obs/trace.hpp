#pragma once
/// \file trace.hpp
/// Scoped spans emitting Chrome-trace-event JSON, loadable in
/// chrome://tracing or https://ui.perfetto.dev.
///
/// Tracing is off by default and costs one relaxed atomic load per span
/// site while off. trace_begin() arms it; every TraceSpan constructed while
/// armed records a complete ("ph":"X") event into a per-thread buffer
/// (registered once per thread; appends never contend). trace_end_json()
/// disarms and merges all buffers into one JSON document.
///
/// Begin/end are quiescent-point operations: call them when no instrumented
/// work is in flight (before/after a run), exactly like reading the global
/// metrics aggregate. Span names must be string literals (or otherwise
/// outlive the session) — spans store the pointer, not a copy.
///
/// As with metrics, the classes compile unconditionally; the
/// FASTQAOA_TRACE_SPAN macro placed on hot paths compiles to nothing when
/// FASTQAOA_PROFILING=OFF.

#include <string>

#include "obs/metrics.hpp"

namespace fastqaoa::obs {

/// Whether a tracing session is currently armed.
[[nodiscard]] bool tracing_enabled() noexcept;

/// Arm tracing: clears all span buffers and restarts the session clock.
void trace_begin();

/// Disarm tracing and serialize every recorded span as Chrome trace-event
/// JSON ({"traceEvents":[...],"displayTimeUnit":"ms"}). Timestamps are
/// microseconds since trace_begin(). Always returns a valid JSON document,
/// even when no spans were recorded.
[[nodiscard]] std::string trace_end_json();

/// trace_end_json() written to `path`; returns false if the file could not
/// be written.
bool write_trace(const std::string& path);

/// Spans recorded across all threads in the current session (diagnostic;
/// buffers are sampled the same way trace_end_json does, so call it at a
/// quiescent point).
[[nodiscard]] std::size_t trace_span_count();

/// RAII span: records [construction, destruction) under `name` on the
/// calling thread. Nested spans nest naturally in the trace viewer because
/// their intervals are contained in the parent's.
///
/// The two-argument form stamps a correlation id (e.g. a service job id)
/// into the event's "args" object as "id", so a Perfetto/Chrome trace can
/// be joined against the daemon's NDJSON log and histogram samples.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept;
  TraceSpan(const char* name, std::uint64_t id) noexcept;
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  double start_us_;  ///< < 0 when tracing was off at construction
  std::uint64_t id_ = 0;
  bool has_id_ = false;
};

}  // namespace fastqaoa::obs

#ifdef FASTQAOA_PROFILING_ENABLED
#define FASTQAOA_TRACE_SPAN(name)                                  \
  ::fastqaoa::obs::TraceSpan FASTQAOA_OBS_CONCAT(fq_trace_span_,   \
                                                 __LINE__)(name)
/// Span carrying a correlation id (service job id) as a span argument.
#define FASTQAOA_TRACE_SPAN_ID(name, id)                           \
  ::fastqaoa::obs::TraceSpan FASTQAOA_OBS_CONCAT(fq_trace_span_,   \
                                                 __LINE__)(name, (id))
#else
#define FASTQAOA_TRACE_SPAN(name) \
  do {                            \
  } while (false)
#define FASTQAOA_TRACE_SPAN_ID(name, id) \
  do {                                   \
  } while (false)
#endif
