#include "obs/prometheus.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

namespace fastqaoa::obs {

namespace {

using LabelList = std::vector<std::pair<std::string, std::string>>;

bool valid_name_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool valid_name_char(char c) {
  return valid_name_start(c) || (c >= '0' && c <= '9');
}

bool valid_label_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool valid_label_char(char c) {
  return valid_label_start(c) || (c >= '0' && c <= '9');
}

std::string format_sample_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Split a `name|key=value|...` metric name into base + embedded labels.
void split_embedded_labels(const std::string& raw, std::string& base,
                           LabelList& labels) {
  const std::size_t bar = raw.find('|');
  if (bar == std::string::npos) {
    base = raw;
    return;
  }
  base = raw.substr(0, bar);
  std::size_t pos = bar + 1;
  while (pos <= raw.size()) {
    std::size_t next = raw.find('|', pos);
    if (next == std::string::npos) next = raw.size();
    const std::string part = raw.substr(pos, next - pos);
    const std::size_t eq = part.find('=');
    if (eq != std::string::npos && eq > 0) {
      labels.emplace_back(part.substr(0, eq), part.substr(eq + 1));
    }
    pos = next + 1;
  }
}

/// Render `k="v",k2="v2"` from common + embedded labels.
std::string render_label_body(const LabelList& common,
                              const LabelList& extra) {
  std::string out;
  for (const LabelList* src : {&common, &extra}) {
    for (const auto& [k, v] : *src) {
      if (!out.empty()) out += ',';
      out += sanitize_prometheus_name(k);
      out += "=\"";
      out += escape_prometheus_label_value(v);
      out += '"';
    }
  }
  return out;
}

void append_sample(std::string& out, std::string_view name,
                   std::string_view labels, std::string_view value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}

void append_header(std::string& out, std::string_view family,
                   std::string_view help, std::string_view type) {
  out += "# HELP ";
  out += family;
  out += ' ';
  out += help;
  out += '\n';
  out += "# TYPE ";
  out += family;
  out += ' ';
  out += type;
  out += '\n';
}

/// One family's series: label body -> stat, in snapshot (sorted-name) order.
template <typename Stat>
using FamilyMap =
    std::map<std::string, std::vector<std::pair<std::string, const Stat*>>>;

template <typename Stat>
FamilyMap<Stat> group_families(const std::map<std::string, Stat>& metrics,
                               const LabelList& common) {
  FamilyMap<Stat> families;
  for (const auto& [raw, stat] : metrics) {
    std::string base;
    LabelList extra;
    split_embedded_labels(raw, base, extra);
    families[base].emplace_back(render_label_body(common, extra), &stat);
  }
  return families;
}

}  // namespace

std::string sanitize_prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = (i == 0 && out.empty()) ? valid_name_start(c)
                                            : valid_name_char(c);
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string escape_prometheus_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void append_prometheus_gauge(std::string& out, std::string_view name,
                             std::string_view help, double value,
                             std::string_view labels) {
  append_header(out, name, help, "gauge");
  append_sample(out, name, labels, format_sample_value(value));
}

void append_prometheus_counter(std::string& out, std::string_view name,
                               std::string_view help, std::uint64_t value,
                               std::string_view labels) {
  append_header(out, name, help, "counter");
  append_sample(out, name, labels, std::to_string(value));
}

std::string to_prometheus(const MetricsSnapshot& snap,
                          std::string_view prefix) {
  std::string out;
  LabelList common(snap.labels.begin(), snap.labels.end());
  const std::string pfx = std::string(prefix) + "_";

  for (const auto& [base, series] :
       group_families(snap.counters, common)) {
    const std::string family =
        pfx + sanitize_prometheus_name(base) + "_total";
    append_header(out, family, "fastqaoa counter " + base, "counter");
    for (const auto& [labels, stat] : series) {
      append_sample(out, family, labels, std::to_string(*stat));
    }
  }

  for (const auto& [base, series] : group_families(snap.timings, common)) {
    const std::string family =
        pfx + sanitize_prometheus_name(base) + "_seconds";
    append_header(out, family, "fastqaoa timer " + base, "summary");
    for (const auto& [labels, stat] : series) {
      append_sample(out, family + "_sum", labels,
                    format_sample_value(stat->total));
      append_sample(out, family + "_count", labels,
                    std::to_string(stat->count));
    }
  }

  for (const auto& [base, series] :
       group_families(snap.histograms, common)) {
    const std::string family = pfx + sanitize_prometheus_name(base);
    append_header(out, family, "fastqaoa histogram " + base, "histogram");
    for (const auto& [labels, stat] : series) {
      // Cumulative buckets from the first nonzero bucket through the last,
      // then the mandatory +Inf bucket carrying the total count.
      std::size_t first = HistogramStat::kBuckets;
      std::size_t last = 0;
      for (std::size_t i = 0; i < HistogramStat::kBuckets; ++i) {
        if (stat->buckets[i] != 0) {
          if (first == HistogramStat::kBuckets) first = i;
          last = i;
        }
      }
      std::uint64_t cum = 0;
      for (std::size_t i = first; i <= last && i < HistogramStat::kBuckets;
           ++i) {
        cum += stat->buckets[i];
        const double upper = HistogramStat::bucket_upper(i);
        if (std::isinf(upper)) break;  // the +Inf line below covers it
        std::string le = labels;
        if (!le.empty()) le += ',';
        le += "le=\"" + format_sample_value(upper) + '"';
        append_sample(out, family + "_bucket", le, std::to_string(cum));
      }
      std::string le_inf = labels;
      if (!le_inf.empty()) le_inf += ',';
      le_inf += "le=\"+Inf\"";
      append_sample(out, family + "_bucket", le_inf,
                    std::to_string(stat->count));
      append_sample(out, family + "_sum", labels,
                    format_sample_value(stat->sum));
      append_sample(out, family + "_count", labels,
                    std::to_string(stat->count));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Validator
// ---------------------------------------------------------------------------

namespace {

struct LineError {
  std::size_t line_no;
  std::string message;
};

bool parse_label_body(const std::string& body, LabelList& labels,
                      std::string& err) {
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t start = pos;
    if (!valid_label_start(body[pos])) {
      err = "bad label name start";
      return false;
    }
    while (pos < body.size() && valid_label_char(body[pos])) ++pos;
    const std::string key = body.substr(start, pos - start);
    if (pos >= body.size() || body[pos] != '=') {
      err = "expected '=' after label name";
      return false;
    }
    ++pos;
    if (pos >= body.size() || body[pos] != '"') {
      err = "expected '\"' opening label value";
      return false;
    }
    ++pos;
    std::string value;
    bool closed = false;
    while (pos < body.size()) {
      const char c = body[pos];
      if (c == '\\') {
        if (pos + 1 >= body.size()) {
          err = "dangling backslash in label value";
          return false;
        }
        const char n = body[pos + 1];
        if (n == '\\') value += '\\';
        else if (n == '"') value += '"';
        else if (n == 'n') value += '\n';
        else {
          err = "bad escape in label value";
          return false;
        }
        pos += 2;
      } else if (c == '"') {
        ++pos;
        closed = true;
        break;
      } else {
        value += c;
        ++pos;
      }
    }
    if (!closed) {
      err = "unterminated label value";
      return false;
    }
    labels.emplace_back(key, value);
    if (pos < body.size()) {
      if (body[pos] != ',') {
        err = "expected ',' between labels";
        return false;
      }
      ++pos;
      if (pos >= body.size()) {
        err = "trailing ',' in label body";
        return false;
      }
    }
  }
  return true;
}

bool parse_double_token(const std::string& token, double& out) {
  if (token.empty()) return false;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

/// Normalized (sorted, le-stripped) label key for grouping bucket series.
std::string series_key(const std::string& family, const LabelList& labels) {
  LabelList rest;
  for (const auto& kv : labels) {
    if (kv.first != "le") rest.push_back(kv);
  }
  std::sort(rest.begin(), rest.end());
  std::string key = family;
  for (const auto& [k, v] : rest) {
    key += '\x01';
    key += k;
    key += '\x02';
    key += v;
  }
  return key;
}

}  // namespace

bool validate_prometheus_text(const std::string& text, std::string* error) {
  const auto fail = [&](std::size_t line_no, const std::string& msg) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + msg;
    }
    return false;
  };

  std::map<std::string, std::string> family_type;
  struct HistSeries {
    std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
    bool has_count = false;
    double count = 0.0;
    bool has_sum = false;
    std::size_t first_line = 0;
  };
  std::map<std::string, HistSeries> hist_series;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) {
      if (pos > text.size()) break;  // trailing newline
      continue;
    }

    if (line[0] == '#') {
      const bool is_type = line.rfind("# TYPE ", 0) == 0;
      const bool is_help = line.rfind("# HELP ", 0) == 0;
      if (!is_type && !is_help) continue;  // free-form comment
      const std::string rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      if (sp == std::string::npos || sp == 0) {
        return fail(line_no, "malformed # TYPE/# HELP line");
      }
      const std::string name = rest.substr(0, sp);
      if (!valid_name_start(name[0]) ||
          !std::all_of(name.begin(), name.end(), valid_name_char)) {
        return fail(line_no, "invalid metric name '" + name + "'");
      }
      if (is_type) {
        const std::string type = rest.substr(sp + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail(line_no, "unknown metric type '" + type + "'");
        }
        if (!family_type.emplace(name, type).second) {
          return fail(line_no, "duplicate # TYPE for '" + name + "'");
        }
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    std::size_t np = 0;
    if (!valid_name_start(line[0])) {
      return fail(line_no, "sample does not start with a metric name");
    }
    while (np < line.size() && valid_name_char(line[np])) ++np;
    const std::string name = line.substr(0, np);
    LabelList labels;
    if (np < line.size() && line[np] == '{') {
      // Label bodies contain quoted values; find the closing brace outside
      // quotes.
      std::size_t lb = np + 1;
      std::size_t close = std::string::npos;
      bool in_quote = false;
      for (std::size_t i = lb; i < line.size(); ++i) {
        const char c = line[i];
        if (in_quote) {
          if (c == '\\') ++i;
          else if (c == '"') in_quote = false;
        } else if (c == '"') {
          in_quote = true;
        } else if (c == '}') {
          close = i;
          break;
        }
      }
      if (close == std::string::npos) {
        return fail(line_no, "unterminated label body");
      }
      std::string lerr;
      if (!parse_label_body(line.substr(lb, close - lb), labels, lerr)) {
        return fail(line_no, lerr);
      }
      np = close + 1;
    }
    if (np >= line.size() || line[np] != ' ') {
      return fail(line_no, "expected space before sample value");
    }
    while (np < line.size() && line[np] == ' ') ++np;
    std::size_t ve = line.find(' ', np);
    if (ve == std::string::npos) ve = line.size();
    const std::string value_tok = line.substr(np, ve - np);
    double value = 0.0;
    if (!parse_double_token(value_tok, value)) {
      return fail(line_no, "unparseable sample value '" + value_tok + "'");
    }

    // Resolve the family this sample belongs to.
    std::string family;
    std::string type;
    auto direct = family_type.find(name);
    if (direct != family_type.end()) {
      family = name;
      type = direct->second;
    } else {
      for (const char* suffix : {"_bucket", "_sum", "_count"}) {
        const std::string s(suffix);
        if (name.size() > s.size() &&
            name.compare(name.size() - s.size(), s.size(), s) == 0) {
          const std::string candidate =
              name.substr(0, name.size() - s.size());
          auto it = family_type.find(candidate);
          if (it != family_type.end() &&
              (it->second == "histogram" ||
               (it->second == "summary" && s != "_bucket"))) {
            family = candidate;
            type = it->second;
            break;
          }
        }
      }
      if (family.empty()) {
        return fail(line_no, "sample '" + name + "' has no # TYPE");
      }
    }

    if (type == "histogram") {
      HistSeries& hs = hist_series[series_key(family, labels)];
      if (hs.first_line == 0) hs.first_line = line_no;
      if (name == family + "_bucket") {
        std::string le_raw;
        bool found = false;
        for (const auto& [k, v] : labels) {
          if (k == "le") {
            le_raw = v;
            found = true;
          }
        }
        if (!found) {
          return fail(line_no, "histogram bucket without 'le' label");
        }
        double le = 0.0;
        if (!parse_double_token(le_raw, le)) {
          return fail(line_no, "unparseable le '" + le_raw + "'");
        }
        hs.buckets.emplace_back(le, value);
      } else if (name == family + "_count") {
        hs.has_count = true;
        hs.count = value;
      } else if (name == family + "_sum") {
        hs.has_sum = true;
      }
    }
  }

  for (const auto& [key, hs] : hist_series) {
    const std::string family = key.substr(0, key.find('\x01'));
    const std::string at = " (series starting line " +
                           std::to_string(hs.first_line) + ")";
    if (hs.buckets.empty()) {
      return fail(hs.first_line,
                  "histogram '" + family + "' has no buckets" + at);
    }
    for (std::size_t i = 1; i < hs.buckets.size(); ++i) {
      if (!(hs.buckets[i].first > hs.buckets[i - 1].first)) {
        return fail(hs.first_line, "histogram '" + family +
                                       "' le values not increasing" + at);
      }
      if (hs.buckets[i].second < hs.buckets[i - 1].second) {
        return fail(hs.first_line,
                    "histogram '" + family +
                        "' cumulative bucket counts decrease" + at);
      }
    }
    if (!std::isinf(hs.buckets.back().first)) {
      return fail(hs.first_line, "histogram '" + family +
                                     "' missing le=\"+Inf\" bucket" + at);
    }
    if (!hs.has_count || !hs.has_sum) {
      return fail(hs.first_line, "histogram '" + family +
                                     "' missing _sum or _count" + at);
    }
    if (hs.count != hs.buckets.back().second) {
      return fail(hs.first_line,
                  "histogram '" + family +
                      "' _count != +Inf bucket count" + at);
    }
  }

  if (error != nullptr) error->clear();
  return true;
}

}  // namespace fastqaoa::obs
