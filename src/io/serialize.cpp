#include "io/serialize.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "runtime/checkpoint.hpp"

namespace fastqaoa::io {

namespace {

constexpr std::uint32_t kMagic = 0x4F414651;  // "FQAO" little-endian
constexpr std::uint32_t kVersion = 1;

enum class Tag : std::uint32_t {
  RealMixer = 1,
  ComplexMixer = 2,
  Table = 3,
  Degeneracy = 4,
};

// Writers render into an in-memory buffer, then publish it atomically via
// runtime::atomic_write_file — no partially written artifact ever lands at
// the destination path.

void write_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_doubles(std::string& out, const double* data, std::size_t n) {
  out.append(reinterpret_cast<const char*>(data), n * sizeof(double));
}

void write_string(std::string& out, const std::string& s) {
  write_u64(out, s.size());
  out.append(s.data(), s.size());
}

std::uint32_t read_u32(std::ifstream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

std::uint64_t read_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void read_doubles(std::ifstream& in, double* data, std::size_t n) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(n * sizeof(double)));
}

std::string read_string(std::ifstream& in) {
  const std::uint64_t len = read_u64(in);
  FASTQAOA_CHECK(len < (1ULL << 20), "serialize: implausible string length");
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  return s;
}

std::ifstream open_checked(const std::string& path, Tag expected) {
  std::ifstream in(path, std::ios::binary);
  FASTQAOA_CHECK(in.good(), "serialize: cannot open: " + path);
  FASTQAOA_CHECK(read_u32(in) == kMagic,
                 "serialize: bad magic (not a fastqaoa file): " + path);
  FASTQAOA_CHECK(read_u32(in) == kVersion,
                 "serialize: unsupported format version: " + path);
  FASTQAOA_CHECK(read_u32(in) == static_cast<std::uint32_t>(expected),
                 "serialize: wrong payload type in: " + path);
  return in;
}

void write_header(std::string& out, Tag tag) {
  write_u32(out, kMagic);
  write_u32(out, kVersion);
  write_u32(out, static_cast<std::uint32_t>(tag));
}

}  // namespace

void save_mixer(const std::string& path, const EigenMixer& mixer) {
  std::string out;
  const std::uint64_t dim = mixer.dim();
  if (mixer.is_real()) {
    const linalg::SymEig& eig = mixer.real_eig();
    out.reserve(64 + mixer.name().size() + (dim + dim * dim) * sizeof(double));
    write_header(out, Tag::RealMixer);
    write_string(out, mixer.name());
    write_u64(out, dim);
    write_doubles(out, eig.eigenvalues.data(), dim);
    write_doubles(out, eig.vectors.data(), dim * dim);
  } else {
    const linalg::HermEig& eig = mixer.herm_eig();
    out.reserve(64 + mixer.name().size() +
                (dim + 2 * dim * dim) * sizeof(double));
    write_header(out, Tag::ComplexMixer);
    write_string(out, mixer.name());
    write_u64(out, dim);
    write_doubles(out, eig.eigenvalues.data(), dim);
    // Complex matrices are stored as interleaved (re, im) pairs.
    write_doubles(out, reinterpret_cast<const double*>(eig.vectors.data()),
                  2 * dim * dim);
  }
  runtime::atomic_write_file(path, out, "save_mixer");
}

EigenMixer load_mixer(const std::string& path) {
  // Peek the tag to select the decoding path.
  std::ifstream probe(path, std::ios::binary);
  FASTQAOA_CHECK(probe.good(), "load_mixer: cannot open: " + path);
  read_u32(probe);  // magic, validated below by open_checked
  read_u32(probe);  // version
  const auto tag = static_cast<Tag>(read_u32(probe));
  probe.close();

  if (tag == Tag::RealMixer) {
    std::ifstream in = open_checked(path, Tag::RealMixer);
    const std::string name = read_string(in);
    const std::uint64_t dim = read_u64(in);
    FASTQAOA_CHECK(dim >= 1 && dim < (1ULL << 24),
                   "load_mixer: implausible dimension in " + path);
    linalg::SymEig eig;
    eig.eigenvalues.resize(dim);
    eig.vectors = linalg::dmat(dim, dim);
    read_doubles(in, eig.eigenvalues.data(), dim);
    read_doubles(in, eig.vectors.data(), dim * dim);
    FASTQAOA_CHECK(in.good(), "load_mixer: truncated file: " + path);
    return EigenMixer(std::move(eig), name);
  }
  FASTQAOA_CHECK(tag == Tag::ComplexMixer,
                 "load_mixer: file does not contain a mixer: " + path);
  std::ifstream in = open_checked(path, Tag::ComplexMixer);
  const std::string name = read_string(in);
  const std::uint64_t dim = read_u64(in);
  FASTQAOA_CHECK(dim >= 1 && dim < (1ULL << 24),
                 "load_mixer: implausible dimension in " + path);
  linalg::HermEig eig;
  eig.eigenvalues.resize(dim);
  eig.vectors = linalg::cmat(dim, dim);
  read_doubles(in, eig.eigenvalues.data(), dim);
  read_doubles(in, reinterpret_cast<double*>(eig.vectors.data()),
               2 * dim * dim);
  FASTQAOA_CHECK(in.good(), "load_mixer: truncated file: " + path);
  return EigenMixer(std::move(eig), name);
}

EigenMixer load_or_build_mixer(const std::string& path,
                               const std::function<EigenMixer()>& build) {
  if (std::filesystem::exists(path)) return load_mixer(path);
  EigenMixer mixer = build();
  save_mixer(path, mixer);
  return mixer;
}

void save_table(const std::string& path, const dvec& values) {
  std::string out;
  out.reserve(32 + values.size() * sizeof(double));
  write_header(out, Tag::Table);
  write_u64(out, values.size());
  write_doubles(out, values.data(), values.size());
  runtime::atomic_write_file(path, out, "save_table");
}

dvec load_table(const std::string& path) {
  std::ifstream in = open_checked(path, Tag::Table);
  const std::uint64_t size = read_u64(in);
  FASTQAOA_CHECK(size < (1ULL << 40), "load_table: implausible size");
  dvec values(size, 0.0);
  read_doubles(in, values.data(), size);
  FASTQAOA_CHECK(in.good(), "load_table: truncated file: " + path);
  return values;
}

dvec load_or_build_table(const std::string& path,
                         const std::function<dvec()>& build) {
  if (std::filesystem::exists(path)) return load_table(path);
  dvec values = build();
  save_table(path, values);
  return values;
}

void save_degeneracy(const std::string& path, const DegeneracyTable& table) {
  std::string out;
  out.reserve(40 + table.values.size() * 2 * sizeof(double));
  write_header(out, Tag::Degeneracy);
  write_u64(out, table.values.size());
  write_doubles(out, table.values.data(), table.values.size());
  out.append(reinterpret_cast<const char*>(table.counts.data()),
             table.counts.size() * sizeof(std::uint64_t));
  write_u64(out, table.total);
  runtime::atomic_write_file(path, out, "save_degeneracy");
}

DegeneracyTable load_degeneracy(const std::string& path) {
  std::ifstream in = open_checked(path, Tag::Degeneracy);
  const std::uint64_t size = read_u64(in);
  FASTQAOA_CHECK(size < (1ULL << 32), "load_degeneracy: implausible size");
  DegeneracyTable table;
  table.values.resize(size);
  table.counts.resize(size);
  read_doubles(in, table.values.data(), size);
  in.read(reinterpret_cast<char*>(table.counts.data()),
          static_cast<std::streamsize>(size * sizeof(std::uint64_t)));
  table.total = read_u64(in);
  FASTQAOA_CHECK(in.good(), "load_degeneracy: truncated file: " + path);
  std::uint64_t sum = 0;
  for (const auto c : table.counts) sum += c;
  FASTQAOA_CHECK(sum == table.total,
                 "load_degeneracy: inconsistent totals in " + path);
  return table;
}

}  // namespace fastqaoa::io
