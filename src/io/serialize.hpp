#pragma once
/// \file serialize.hpp
/// Binary persistence for expensive precomputations. The paper's Listing 2
/// workflow: eigendecomposing a Clique mixer is O(dim^3) and worth caching;
/// "if the included file path exists, the pre-computed mixer is loaded. If
/// it does not exist, the eigendecomposition is stored for future re-use."
///
/// Format: little-endian, magic "FQAO", format version, a type tag, then
/// raw dimensions + IEEE-754 doubles. Loads verify magic/version/tag and
/// fail loudly rather than misinterpreting bytes.
///
/// All writers are crash-safe: the payload is rendered in memory and
/// published via runtime::atomic_write_file (write tmp + rename), so a
/// reader — including a concurrent load_or_build_* in another process —
/// never observes a torn artifact; it sees the complete old file or the
/// complete new one.

#include <functional>
#include <string>

#include "common/types.hpp"
#include "mixers/eigen_mixer.hpp"
#include "problems/objective.hpp"

namespace fastqaoa::io {

/// Persist an EigenMixer's eigendecomposition (real or complex path).
void save_mixer(const std::string& path, const EigenMixer& mixer);

/// Load an EigenMixer previously saved with save_mixer.
EigenMixer load_mixer(const std::string& path);

/// The Listing-2 pattern in one call: load `path` if it exists, otherwise
/// invoke `build`, save the result to `path`, and return it.
EigenMixer load_or_build_mixer(const std::string& path,
                               const std::function<EigenMixer()>& build);

/// Persist / restore a tabulated objective (large cost tables for reuse).
void save_table(const std::string& path, const dvec& values);
dvec load_table(const std::string& path);

/// Listing-2 pattern for cost tables: load `path` if it exists, otherwise
/// invoke `build`, save the result to `path`, and return it.
dvec load_or_build_table(const std::string& path,
                         const std::function<dvec()>& build);

/// Persist / restore a degeneracy histogram — the §2.4 Grover-path
/// precomputation, which for large n is the expensive artifact worth
/// keeping (distinct values + multiplicities instead of 2^n entries).
void save_degeneracy(const std::string& path, const DegeneracyTable& table);
DegeneracyTable load_degeneracy(const std::string& path);

}  // namespace fastqaoa::io
