#pragma once
/// \file qaoa.hpp
/// The QAOA statevector engine (paper §2.2), now a thin compatibility
/// facade over the QaoaPlan / EvalWorkspace split (see core/plan.hpp). A
/// Qaoa object owns one immutable plan plus one workspace and evaluates
///   |β,γ> = e^{-iβ_p H_M} e^{-iγ_p H_C} ... e^{-iβ_1 H_M} e^{-iγ_1 H_C} |ψ0>
/// with functionally zero per-call overhead — the property the angle-finding
/// outer loop leans on. Code that wants to share one precomputation across
/// threads should use QaoaPlan + per-thread EvalWorkspace directly; this
/// class exists so single-threaded callers keep the familiar API.
///
/// Flexibility knobs (paper §3):
///  * per-round mixer schedules (array of p mixers),
///  * multi-angle QAOA (several mixers, each with its own β, inside a round),
///  * custom initial states (warm starts),
///  * a phase-separator table decoupled from the measured objective
///    (threshold-QAOA uses an indicator phase but measures the true cost).

#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/plan.hpp"
#include "mixers/mixer.hpp"
#include "problems/objective.hpp"

namespace fastqaoa {

/// Reusable QAOA evaluation engine: an owned QaoaPlan plus one
/// EvalWorkspace. Not thread-safe as a whole (the workspace is mutable
/// state); share plan() across threads instead.
class Qaoa {
 public:
  /// Same mixer every round, for `rounds` rounds (the common case).
  Qaoa(const Mixer& mixer, dvec obj_vals, int rounds);

  /// One (single-mixer) layer per round.
  Qaoa(std::vector<const Mixer*> round_mixers, dvec obj_vals);

  /// Fully general multi-angle schedule: layers[k] lists the mixers of
  /// round k, each taking its own β.
  Qaoa(std::vector<MixerLayer> layers, dvec obj_vals);

  /// Wrap an existing plan (copied; plans are cheap relative to evaluation).
  explicit Qaoa(QaoaPlan plan);

  /// Number of rounds p.
  [[nodiscard]] int rounds() const noexcept { return plan_.rounds(); }
  /// Total number of β angles (= p for single-mixer layers).
  [[nodiscard]] int num_betas() const noexcept { return plan_.num_betas(); }
  /// Total number of γ angles (= p).
  [[nodiscard]] int num_gammas() const noexcept { return plan_.num_gammas(); }
  /// Hilbert-space (feasible subspace) dimension.
  [[nodiscard]] index_t dim() const noexcept { return plan_.dim(); }

  [[nodiscard]] const dvec& objective() const noexcept {
    return plan_.objective();
  }
  [[nodiscard]] const dvec& phase_values() const noexcept {
    return plan_.phase_values();
  }
  [[nodiscard]] const std::vector<MixerLayer>& layers() const noexcept {
    return plan_.layers();
  }

  /// The immutable plan backing this engine. Safe to evaluate from other
  /// threads (with their own workspaces) while this engine exists — but
  /// note set_initial_state()/set_phase_values() rebuild the plan in place,
  /// so do not mutate the engine while the plan is shared.
  [[nodiscard]] const QaoaPlan& plan() const noexcept { return plan_; }

  /// This engine's own workspace (adjoint/finite-diff helpers bind to it).
  [[nodiscard]] EvalWorkspace& workspace() noexcept { return ws_; }
  [[nodiscard]] const EvalWorkspace& workspace() const noexcept { return ws_; }

  /// Override the |ψ0> = uniform-superposition default (warm starts).
  /// The vector must be unit-norm and of dimension dim(). Rebuilds the plan.
  void set_initial_state(cvec psi0);

  /// Use a phase-separator table different from the measured objective —
  /// e.g. threshold_indicator(obj_vals, t) for threshold QAOA. Rebuilds the
  /// plan.
  void set_phase_values(dvec phase_vals);

  /// The initial state this engine starts from (built eagerly at
  /// construction).
  [[nodiscard]] const cvec& initial_state() const noexcept {
    return plan_.initial_state();
  }

  /// Evolve the ansatz and return <C>. betas.size() must equal num_betas(),
  /// gammas.size() must equal num_gammas(). The statevector stays in the
  /// workspace buffer — read it via state().
  double run(std::span<const double> betas, std::span<const double> gammas);

  /// Paper-style packed angles: angles[0..p) = betas, angles[p..2p) = gammas
  /// (Listing 1). Only valid when num_betas() == rounds().
  double run_packed(std::span<const double> angles);

  /// Statevector after the last run(). A ShardedState reads like a cvec
  /// (data/size/operator[]/begin/end) and converts to kernel views
  /// implicitly; copy out with .to_vec() when an owning vector is needed.
  [[nodiscard]] const linalg::ShardedState& state() const noexcept {
    return ws_.psi;
  }

  /// Request a shard count for the workspace statevector (0 = auto:
  /// FASTQAOA_SHARDS, then the detected NUMA topology). Results are
  /// bit-identical at every shard count; this only affects placement.
  void set_shards(int shards) noexcept { ws_.shards = shards; }

  /// <C> of the last run().
  [[nodiscard]] double expectation() const noexcept { return ws_.expectation; }

  /// Probability mass on optimal states after the last run(): maximizers by
  /// default, minimizers for Direction::Minimize.
  [[nodiscard]] double ground_state_probability(
      Direction direction = Direction::Maximize) const;

  /// Probability mass on states whose objective equals `value`.
  [[nodiscard]] double probability_of_value(double value) const;

  /// Expectation of an arbitrary diagonal observable on the last run()'s
  /// state (secondary objectives, feasibility masses, constraint checks —
  /// anything tabulated over the same feasible set).
  [[nodiscard]] double expectation_of(const dvec& observable) const;

  /// Amplitude of feasible state index i after the last run().
  [[nodiscard]] cplx amplitude(index_t i) const;

 private:
  QaoaPlan plan_;
  EvalWorkspace ws_;
};

/// Result of a one-shot simulate() call (the paper's Listing 1 object):
/// owns its statevector and summary scalars.
struct SimResult {
  cvec statevector;
  double exp_value = 0.0;           ///< <C>
  double ground_state_prob = 0.0;   ///< probability of the best (max) states
  double best_value = 0.0;          ///< max of the objective table
};

/// One-shot evaluation with packed angles (betas then gammas), mirroring the
/// paper's `simulate(angles, mixer, obj_vals)`. For repeated evaluation
/// (angle finding) construct a Qaoa engine instead — it reuses its buffers.
SimResult simulate(std::span<const double> angles, const Mixer& mixer,
                   const dvec& obj_vals);

/// One-shot evaluation with a custom initial state.
SimResult simulate(std::span<const double> angles, const Mixer& mixer,
                   const dvec& obj_vals, const cvec& initial_state);

}  // namespace fastqaoa
