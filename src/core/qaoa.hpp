#pragma once
/// \file qaoa.hpp
/// The QAOA statevector engine (paper §2.2). A Qaoa object binds a
/// precomputed objective table to a mixer schedule, pre-allocates every
/// buffer once, and then evaluates
///   |β,γ> = e^{-iβ_p H_M} e^{-iγ_p H_C} ... e^{-iβ_1 H_M} e^{-iγ_1 H_C} |ψ0>
/// with functionally zero per-call overhead — the property the angle-finding
/// outer loop leans on.
///
/// Flexibility knobs (paper §3):
///  * per-round mixer schedules (array of p mixers),
///  * multi-angle QAOA (several mixers, each with its own β, inside a round),
///  * custom initial states (warm starts),
///  * a phase-separator table decoupled from the measured objective
///    (threshold-QAOA uses an indicator phase but measures the true cost).

#include <span>
#include <vector>

#include "common/types.hpp"
#include "mixers/mixer.hpp"
#include "problems/objective.hpp"

namespace fastqaoa {

/// One QAOA round applies the phase separator once, then each mixer in the
/// layer in order, each consuming its own β angle.
struct MixerLayer {
  std::vector<const Mixer*> mixers;
};

/// Reusable QAOA evaluation engine.
class Qaoa {
 public:
  /// Same mixer every round, for `rounds` rounds (the common case).
  Qaoa(const Mixer& mixer, dvec obj_vals, int rounds);

  /// One (single-mixer) layer per round.
  Qaoa(std::vector<const Mixer*> round_mixers, dvec obj_vals);

  /// Fully general multi-angle schedule: layers[k] lists the mixers of
  /// round k, each taking its own β.
  Qaoa(std::vector<MixerLayer> layers, dvec obj_vals);

  /// Number of rounds p.
  [[nodiscard]] int rounds() const noexcept {
    return static_cast<int>(layers_.size());
  }
  /// Total number of β angles (= p for single-mixer layers).
  [[nodiscard]] int num_betas() const noexcept { return num_betas_; }
  /// Total number of γ angles (= p).
  [[nodiscard]] int num_gammas() const noexcept { return rounds(); }
  /// Hilbert-space (feasible subspace) dimension.
  [[nodiscard]] index_t dim() const noexcept { return obj_vals_.size(); }

  [[nodiscard]] const dvec& objective() const noexcept { return obj_vals_; }
  [[nodiscard]] const dvec& phase_values() const noexcept {
    return *phase_vals_;
  }
  [[nodiscard]] const std::vector<MixerLayer>& layers() const noexcept {
    return layers_;
  }

  /// Override the |ψ0> = uniform-superposition default (warm starts).
  /// The vector must be unit-norm and of dimension dim().
  void set_initial_state(cvec psi0);

  /// Use a phase-separator table different from the measured objective —
  /// e.g. threshold_indicator(obj_vals, t) for threshold QAOA.
  void set_phase_values(dvec phase_vals);

  /// The initial state this engine starts from.
  [[nodiscard]] const cvec& initial_state() const;

  /// Evolve the ansatz and return <C>. betas.size() must equal num_betas(),
  /// gammas.size() must equal num_gammas(). The statevector stays in the
  /// internal buffer — read it via state().
  double run(std::span<const double> betas, std::span<const double> gammas);

  /// Paper-style packed angles: angles[0..p) = betas, angles[p..2p) = gammas
  /// (Listing 1). Only valid when num_betas() == rounds().
  double run_packed(std::span<const double> angles);

  /// Statevector after the last run().
  [[nodiscard]] const cvec& state() const noexcept { return psi_; }

  /// <C> of the last run().
  [[nodiscard]] double expectation() const noexcept { return expectation_; }

  /// Probability mass on optimal states after the last run(): maximizers by
  /// default, minimizers for Direction::Minimize.
  [[nodiscard]] double ground_state_probability(
      Direction direction = Direction::Maximize) const;

  /// Probability mass on states whose objective equals `value`.
  [[nodiscard]] double probability_of_value(double value) const;

  /// Expectation of an arbitrary diagonal observable on the last run()'s
  /// state (secondary objectives, feasibility masses, constraint checks —
  /// anything tabulated over the same feasible set).
  [[nodiscard]] double expectation_of(const dvec& observable) const;

  /// Amplitude of feasible state index i after the last run().
  [[nodiscard]] cplx amplitude(index_t i) const;

 private:
  void validate_layers() const;

  std::vector<MixerLayer> layers_;
  dvec obj_vals_;
  dvec phase_vals_storage_;   ///< used when a custom phase table is set
  const dvec* phase_vals_;    ///< points at obj_vals_ or the custom table
  mutable cvec psi0_;         ///< empty = uniform superposition default,
                              ///< built lazily on first use
  cvec psi_;
  cvec scratch_;
  double expectation_ = 0.0;
  int num_betas_ = 0;
};

/// Result of a one-shot simulate() call (the paper's Listing 1 object):
/// owns its statevector and summary scalars.
struct SimResult {
  cvec statevector;
  double exp_value = 0.0;           ///< <C>
  double ground_state_prob = 0.0;   ///< probability of the best (max) states
  double best_value = 0.0;          ///< max of the objective table
};

/// One-shot evaluation with packed angles (betas then gammas), mirroring the
/// paper's `simulate(angles, mixer, obj_vals)`. For repeated evaluation
/// (angle finding) construct a Qaoa engine instead — it reuses its buffers.
SimResult simulate(std::span<const double> angles, const Mixer& mixer,
                   const dvec& obj_vals);

/// One-shot evaluation with a custom initial state.
SimResult simulate(std::span<const double> angles, const Mixer& mixer,
                   const dvec& obj_vals, const cvec& initial_state);

}  // namespace fastqaoa
