#include "core/qaoa.hpp"

#include <utility>

#include "common/error.hpp"
#include "linalg/vector_ops.hpp"

namespace fastqaoa {

Qaoa::Qaoa(const Mixer& mixer, dvec obj_vals, int rounds)
    : plan_(mixer, std::move(obj_vals), rounds) {}

Qaoa::Qaoa(std::vector<const Mixer*> round_mixers, dvec obj_vals)
    : plan_(std::move(round_mixers), std::move(obj_vals)) {}

Qaoa::Qaoa(std::vector<MixerLayer> layers, dvec obj_vals)
    : plan_(std::move(layers), std::move(obj_vals)) {}

Qaoa::Qaoa(QaoaPlan plan) : plan_(std::move(plan)) {}

void Qaoa::set_initial_state(cvec psi0) {
  QaoaPlanOptions options;
  options.initial_state = std::move(psi0);
  if (plan_.has_custom_phase()) options.phase_values = plan_.phase_values();
  plan_ = QaoaPlan(plan_.layers(), plan_.objective(), std::move(options));
}

void Qaoa::set_phase_values(dvec phase_vals) {
  QaoaPlanOptions options;
  options.phase_values = std::move(phase_vals);
  if (plan_.has_custom_initial_state()) {
    options.initial_state = plan_.initial_state();
  }
  plan_ = QaoaPlan(plan_.layers(), plan_.objective(), std::move(options));
}

double Qaoa::run(std::span<const double> betas,
                 std::span<const double> gammas) {
  return evaluate(plan_, ws_, betas, gammas);
}

double Qaoa::run_packed(std::span<const double> angles) {
  return evaluate_packed(plan_, ws_, angles);
}

double Qaoa::ground_state_probability(Direction direction) const {
  const ObjectiveStats stats = objective_stats(plan_.objective());
  const double target =
      direction == Direction::Maximize ? stats.max_value : stats.min_value;
  return linalg::probability_at_value(plan_.objective(), ws_.psi, target);
}

double Qaoa::probability_of_value(double value) const {
  return linalg::probability_at_value(plan_.objective(), ws_.psi, value);
}

double Qaoa::expectation_of(const dvec& observable) const {
  FASTQAOA_CHECK(observable.size() == dim(),
                 "expectation_of: observable size mismatch");
  return linalg::diag_expectation(observable, ws_.psi);
}

cplx Qaoa::amplitude(index_t i) const {
  FASTQAOA_CHECK(i < ws_.psi.size(), "amplitude: index out of range");
  return ws_.psi[i];
}

SimResult simulate(std::span<const double> angles, const Mixer& mixer,
                   const dvec& obj_vals) {
  FASTQAOA_CHECK(angles.size() % 2 == 0 && !angles.empty(),
                 "simulate: need 2p angles (betas then gammas)");
  const int p = static_cast<int>(angles.size() / 2);
  Qaoa engine(mixer, obj_vals, p);
  engine.run_packed(angles);
  SimResult result;
  result.exp_value = engine.expectation();
  result.ground_state_prob = engine.ground_state_probability();
  result.best_value = objective_stats(obj_vals).max_value;
  result.statevector = engine.state().to_vec();
  return result;
}

SimResult simulate(std::span<const double> angles, const Mixer& mixer,
                   const dvec& obj_vals, const cvec& initial_state) {
  FASTQAOA_CHECK(angles.size() % 2 == 0 && !angles.empty(),
                 "simulate: need 2p angles (betas then gammas)");
  const int p = static_cast<int>(angles.size() / 2);
  Qaoa engine(mixer, obj_vals, p);
  engine.set_initial_state(initial_state);
  engine.run_packed(angles);
  SimResult result;
  result.exp_value = engine.expectation();
  result.ground_state_prob = engine.ground_state_probability();
  result.best_value = objective_stats(obj_vals).max_value;
  result.statevector = engine.state().to_vec();
  return result;
}

}  // namespace fastqaoa
