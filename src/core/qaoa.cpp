#include "core/qaoa.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/vector_ops.hpp"

namespace fastqaoa {

Qaoa::Qaoa(std::vector<MixerLayer> layers, dvec obj_vals)
    : layers_(std::move(layers)),
      obj_vals_(std::move(obj_vals)),
      phase_vals_(&obj_vals_) {
  validate_layers();
  psi_.resize(dim());
  for (const MixerLayer& layer : layers_) {
    num_betas_ += static_cast<int>(layer.mixers.size());
  }
}

namespace {

std::vector<MixerLayer> repeat_layer(const Mixer& mixer, int rounds) {
  FASTQAOA_CHECK(rounds >= 1, "Qaoa: need at least one round");
  std::vector<MixerLayer> layers(static_cast<std::size_t>(rounds));
  for (auto& layer : layers) layer.mixers = {&mixer};
  return layers;
}

std::vector<MixerLayer> one_per_round(const std::vector<const Mixer*>& ms) {
  FASTQAOA_CHECK(!ms.empty(), "Qaoa: need at least one round");
  std::vector<MixerLayer> layers(ms.size());
  for (std::size_t i = 0; i < ms.size(); ++i) layers[i].mixers = {ms[i]};
  return layers;
}

}  // namespace

Qaoa::Qaoa(const Mixer& mixer, dvec obj_vals, int rounds)
    : Qaoa(repeat_layer(mixer, rounds), std::move(obj_vals)) {}

Qaoa::Qaoa(std::vector<const Mixer*> round_mixers, dvec obj_vals)
    : Qaoa(one_per_round(round_mixers), std::move(obj_vals)) {}

void Qaoa::validate_layers() const {
  FASTQAOA_CHECK(!layers_.empty(), "Qaoa: need at least one round");
  FASTQAOA_CHECK(!obj_vals_.empty(), "Qaoa: empty objective table");
  for (const MixerLayer& layer : layers_) {
    FASTQAOA_CHECK(!layer.mixers.empty(),
                   "Qaoa: every round needs at least one mixer");
    for (const Mixer* m : layer.mixers) {
      FASTQAOA_CHECK(m != nullptr, "Qaoa: null mixer");
      FASTQAOA_CHECK(m->dim() == obj_vals_.size(),
                     "Qaoa: mixer dimension does not match objective table — "
                     "did you tabulate over the wrong feasible set?");
    }
  }
}

void Qaoa::set_initial_state(cvec psi0) {
  FASTQAOA_CHECK(psi0.size() == dim(),
                 "set_initial_state: dimension mismatch");
  const double nrm = linalg::norm(psi0);
  FASTQAOA_CHECK(std::abs(nrm - 1.0) < 1e-8,
                 "set_initial_state: state must be unit norm");
  psi0_ = std::move(psi0);
}

void Qaoa::set_phase_values(dvec phase_vals) {
  FASTQAOA_CHECK(phase_vals.size() == dim(),
                 "set_phase_values: dimension mismatch");
  phase_vals_storage_ = std::move(phase_vals);
  phase_vals_ = &phase_vals_storage_;
}

const cvec& Qaoa::initial_state() const {
  if (!psi0_.empty()) return psi0_;
  // Lazily build the uniform default once.
  psi0_.assign(dim(), cplx{0.0, 0.0});
  const double amp = 1.0 / std::sqrt(static_cast<double>(dim()));
  linalg::fill(psi0_, cplx{amp, 0.0});
  return psi0_;
}

double Qaoa::run(std::span<const double> betas,
                 std::span<const double> gammas) {
  FASTQAOA_CHECK(static_cast<int>(betas.size()) == num_betas_,
                 "Qaoa::run: wrong number of beta angles");
  FASTQAOA_CHECK(static_cast<int>(gammas.size()) == rounds(),
                 "Qaoa::run: wrong number of gamma angles");
  psi_ = initial_state();
  std::size_t beta_index = 0;
  for (std::size_t k = 0; k < layers_.size(); ++k) {
    linalg::apply_diag_phase(psi_, *phase_vals_, gammas[k]);
    for (const Mixer* m : layers_[k].mixers) {
      m->apply_exp(psi_, betas[beta_index++], scratch_);
    }
  }
  expectation_ = linalg::diag_expectation(obj_vals_, psi_);
  return expectation_;
}

double Qaoa::run_packed(std::span<const double> angles) {
  FASTQAOA_CHECK(num_betas_ == rounds(),
                 "run_packed: only valid for single-mixer rounds");
  FASTQAOA_CHECK(static_cast<int>(angles.size()) == 2 * rounds(),
                 "run_packed: need 2p angles (betas then gammas)");
  const std::size_t p = static_cast<std::size_t>(rounds());
  return run(angles.subspan(0, p), angles.subspan(p, p));
}

double Qaoa::ground_state_probability(Direction direction) const {
  const ObjectiveStats stats = objective_stats(obj_vals_);
  const double target =
      direction == Direction::Maximize ? stats.max_value : stats.min_value;
  return linalg::probability_at_value(obj_vals_, psi_, target);
}

double Qaoa::probability_of_value(double value) const {
  return linalg::probability_at_value(obj_vals_, psi_, value);
}

double Qaoa::expectation_of(const dvec& observable) const {
  FASTQAOA_CHECK(observable.size() == dim(),
                 "expectation_of: observable size mismatch");
  return linalg::diag_expectation(observable, psi_);
}

cplx Qaoa::amplitude(index_t i) const {
  FASTQAOA_CHECK(i < psi_.size(), "amplitude: index out of range");
  return psi_[i];
}

SimResult simulate(std::span<const double> angles, const Mixer& mixer,
                   const dvec& obj_vals) {
  FASTQAOA_CHECK(angles.size() % 2 == 0 && !angles.empty(),
                 "simulate: need 2p angles (betas then gammas)");
  const int p = static_cast<int>(angles.size() / 2);
  Qaoa engine(mixer, obj_vals, p);
  engine.run_packed(angles);
  SimResult result;
  result.exp_value = engine.expectation();
  result.ground_state_prob = engine.ground_state_probability();
  result.best_value = objective_stats(obj_vals).max_value;
  result.statevector = engine.state();
  return result;
}

SimResult simulate(std::span<const double> angles, const Mixer& mixer,
                   const dvec& obj_vals, const cvec& initial_state) {
  FASTQAOA_CHECK(angles.size() % 2 == 0 && !angles.empty(),
                 "simulate: need 2p angles (betas then gammas)");
  const int p = static_cast<int>(angles.size() / 2);
  Qaoa engine(mixer, obj_vals, p);
  engine.set_initial_state(initial_state);
  engine.run_packed(angles);
  SimResult result;
  result.exp_value = engine.expectation();
  result.ground_state_prob = engine.ground_state_probability();
  result.best_value = objective_stats(obj_vals).max_value;
  result.statevector = engine.state();
  return result;
}

}  // namespace fastqaoa
