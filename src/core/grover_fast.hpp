#pragma once
/// \file grover_fast.hpp
/// The paper's §2.4 large-n Grover-mixer fast path. The Grover mixer gives
/// *fair sampling*: states with equal objective value always carry equal
/// amplitude. The entire statevector is therefore determined by one complex
/// amplitude per *distinct objective value*, and a p-round Grover-QAOA over
/// 2^100 states evolves in O(p * #distinct) time and O(#distinct) memory:
///
///   phase:  a_j <- e^{-i gamma v_j} a_j
///   mixer:  a_j <- a_j + (e^{-i beta} - 1) * (sum_j m_j a_j) / N
///
/// where m_j are the degeneracies and N = sum m_j (state counts may exceed
/// 2^64, so they are carried as doubles — exact for the structured tables
/// this path is used with, and within 1 ulp otherwise).

#include <span>

#include "common/types.hpp"
#include "problems/objective.hpp"

namespace fastqaoa {

/// Degeneracy-compressed Grover-QAOA simulator.
class GroverQaoa {
 public:
  /// Build from distinct objective values and their multiplicities.
  /// `values` and `counts` must be equal-length and non-empty; counts are
  /// doubles so spaces up to n ≈ 1000 qubits are representable.
  GroverQaoa(std::vector<double> values, std::vector<double> counts);

  /// Convenience: adopt a DegeneracyTable (counts converted to double).
  explicit GroverQaoa(const DegeneracyTable& table);

  /// Number of distinct objective values (the compressed dimension).
  [[nodiscard]] std::size_t num_classes() const noexcept {
    return values_.size();
  }
  /// Total number of underlying feasible states N.
  [[nodiscard]] double total_states() const noexcept { return total_; }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] const std::vector<double>& counts() const noexcept {
    return counts_;
  }

  /// Use a phase-separator value per class different from the measured one
  /// (threshold-QAOA: Grover mixer + indicator phase = Grover search [17]).
  void set_phase_values(std::vector<double> phase_vals);

  /// Evolve p rounds and return <C>. Sizes of betas/gammas must match.
  double run(std::span<const double> betas, std::span<const double> gammas);

  /// Packed angles (betas then gammas), as in Qaoa::run_packed.
  double run_packed(std::span<const double> angles);

  /// Exact adjoint-mode gradient of <C> on the compressed representation
  /// (the autodiff/adjoint.hpp technique with degeneracy-weighted inner
  /// products): the full 2p gradient at O(p * #classes) cost. Returns <C>.
  double value_and_gradient(std::span<const double> betas,
                            std::span<const double> gammas,
                            std::span<double> grad_betas,
                            std::span<double> grad_gammas);

  /// <C> after the last run().
  [[nodiscard]] double expectation() const noexcept { return expectation_; }

  /// Probability mass on the best class after the last run().
  [[nodiscard]] double ground_state_probability(
      Direction direction = Direction::Maximize) const;

  /// Per-class amplitude after the last run() (equal for every state in
  /// the class — fair sampling).
  [[nodiscard]] cplx class_amplitude(std::size_t j) const;

  /// Expand the compressed state onto an explicit per-state statevector
  /// given the class index of every state (cross-check path for tests;
  /// only sensible for small spaces).
  [[nodiscard]] cvec expand(const std::vector<std::size_t>& class_of) const;

 private:
  /// psi <- e^{-i beta |psi0><psi0|} psi on the compressed amplitudes.
  void apply_grover_exp(std::vector<cplx>& amps, double beta) const;
  /// Degeneracy-weighted inner product sum_j m_j conj(a_j) b_j.
  [[nodiscard]] cplx weighted_dot(const std::vector<cplx>& a,
                                  const std::vector<cplx>& b) const;

  std::vector<double> values_;
  std::vector<double> counts_;
  std::vector<double> phase_vals_;
  std::vector<double> vc_;  ///< values_[j] * counts_[j], the expectation diag
  std::vector<cplx> amps_;
  double total_ = 0.0;
  double expectation_ = 0.0;
};

/// Analytic degeneracy tables for very large n (no enumeration):

/// Cost depending only on Hamming weight: C(x) = weight_cost[|x|],
/// degeneracy of class m is C(n, m). Representable up to n ≈ 1000.
GroverQaoa grover_hamming_weight_qaoa(int n,
                                      const std::vector<double>& weight_cost);

/// Unstructured search: `marked` states at value 1, the rest at value 0
/// (with the Grover mixer and a threshold phase separator this is exactly
/// Grover's algorithm as a QAOA).
GroverQaoa grover_search_qaoa(double num_states, double marked);

}  // namespace fastqaoa
