#pragma once
/// \file engine.hpp
/// The engine-selection seam: every front end (qaoa_cli, the service
/// workload router) names its evaluation engine through this one enum, so
/// adding an engine is a one-line change here plus a dispatch arm there —
/// the exact statevector engine (this directory) and the approximate
/// matrix-product-state engine (src/mps/) are the two today.
///
/// Engine choice is part of every result's identity: plan-cache keys and
/// checkpoint fingerprints must incorporate to_string(kind) (plus any
/// engine-specific knobs) so exact and approximate artifacts for the same
/// problem can never be confused for each other.

#include <optional>
#include <string>
#include <vector>

namespace fastqaoa {

enum class EngineKind {
  Exact,  ///< dense statevector over the (sub)space — exact, O(2^n)
  Mps,    ///< matrix-product state — approximate, polynomial in n
};

/// Stable lower-case names ("exact", "mps") — the CLI flag values, the
/// service wire values, and the cache-key material.
const char* to_string(EngineKind kind) noexcept;

/// All engines, in declaration order, for error messages and --help.
const std::vector<std::string>& engine_names();

/// Parse a flag/wire value; std::nullopt for unknown names (callers build
/// their own error with engine_names()).
std::optional<EngineKind> parse_engine(const std::string& name);

}  // namespace fastqaoa
