#include "core/grover_fast.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/kernels/kernels.hpp"
#include "obs/trace.hpp"

namespace fastqaoa {

GroverQaoa::GroverQaoa(std::vector<double> values, std::vector<double> counts)
    : values_(std::move(values)), counts_(std::move(counts)) {
  FASTQAOA_CHECK(!values_.empty(), "GroverQaoa: empty value table");
  FASTQAOA_CHECK(values_.size() == counts_.size(),
                 "GroverQaoa: values/counts size mismatch");
  for (const double c : counts_) {
    FASTQAOA_CHECK(c > 0.0, "GroverQaoa: counts must be positive");
    total_ += c;
  }
  phase_vals_ = values_;
  vc_.resize(values_.size());
  for (std::size_t j = 0; j < values_.size(); ++j) {
    vc_[j] = values_[j] * counts_[j];
  }
  amps_.resize(values_.size());
}

GroverQaoa::GroverQaoa(const DegeneracyTable& table)
    : GroverQaoa(table.values, std::vector<double>(table.counts.begin(),
                                                   table.counts.end())) {}

void GroverQaoa::set_phase_values(std::vector<double> phase_vals) {
  FASTQAOA_CHECK(phase_vals.size() == values_.size(),
                 "GroverQaoa::set_phase_values: size mismatch");
  phase_vals_ = std::move(phase_vals);
}

void GroverQaoa::apply_grover_exp(std::vector<cplx>& amps,
                                  double beta) const {
  // Grover mixer on the compressed representation:
  // <psi0|psi> sqrt(N) = sum_j m_j a_j.
  cplx weighted{0.0, 0.0};
  for (std::size_t j = 0; j < amps.size(); ++j) {
    weighted += counts_[j] * amps[j];
  }
  const cplx factor =
      (cplx{std::cos(beta), -std::sin(beta)} - 1.0) * weighted / total_;
  for (auto& a : amps) a += factor;
}

cplx GroverQaoa::weighted_dot(const std::vector<cplx>& a,
                              const std::vector<cplx>& b) const {
  cplx acc{0.0, 0.0};
  for (std::size_t j = 0; j < a.size(); ++j) {
    acc += counts_[j] * std::conj(a[j]) * b[j];
  }
  return acc;
}

double GroverQaoa::run(std::span<const double> betas,
                       std::span<const double> gammas) {
  FASTQAOA_CHECK(betas.size() == gammas.size(),
                 "GroverQaoa::run: betas/gammas size mismatch");
  FASTQAOA_OBS_COUNT("core.grover.evals", 1);
  FASTQAOA_OBS_TIMED("core.grover.run");
  FASTQAOA_TRACE_SPAN("grover_run");
  const std::size_t m = values_.size();
  // |psi0> = uniform: every state has amplitude 1/sqrt(N), so class j's
  // representative amplitude is 1/sqrt(N).
  const double amp0 = 1.0 / std::sqrt(total_);
  for (std::size_t j = 0; j < m; ++j) amps_[j] = cplx{amp0, 0.0};

  const linalg::kernels::KernelBackend& kern = linalg::kernels::active();
  for (std::size_t round = 0; round < gammas.size(); ++round) {
    kern.diag_phase(amps_.data(), phase_vals_.data(), gammas[round],
                    static_cast<index_t>(m));
    apply_grover_exp(amps_, betas[round]);
  }

  expectation_ = kern.diag_expectation(vc_.data(), amps_.data(),
                                       static_cast<index_t>(m));
  return expectation_;
}

double GroverQaoa::value_and_gradient(std::span<const double> betas,
                                      std::span<const double> gammas,
                                      std::span<double> grad_betas,
                                      std::span<double> grad_gammas) {
  FASTQAOA_CHECK(grad_betas.size() == betas.size() &&
                     grad_gammas.size() == gammas.size(),
                 "GroverQaoa::value_and_gradient: gradient size mismatch");
  FASTQAOA_OBS_COUNT("core.grover.gradients", 1);
  FASTQAOA_OBS_TIMED("core.grover.gradient");
  FASTQAOA_TRACE_SPAN("grover_gradient");
  const double value = run(betas, gammas);
  const std::size_t m = values_.size();

  // Adjoint sweep on the compressed amplitudes (degeneracy-weighted inner
  // products throughout).
  std::vector<cplx> psi = amps_;
  std::vector<cplx> lambda(m);
  for (std::size_t j = 0; j < m; ++j) lambda[j] = values_[j] * psi[j];

  std::vector<cplx> h_psi(m);
  for (std::size_t k = betas.size(); k-- > 0;) {
    // H_G psi = |psi0> <psi0|psi>: constant amplitude across classes.
    const cplx overlap = [&] {
      cplx acc{0.0, 0.0};
      for (std::size_t j = 0; j < m; ++j) acc += counts_[j] * psi[j];
      return acc / total_;
    }();
    for (std::size_t j = 0; j < m; ++j) h_psi[j] = overlap;
    grad_betas[k] = 2.0 * weighted_dot(lambda, h_psi).imag();

    apply_grover_exp(psi, -betas[k]);
    apply_grover_exp(lambda, -betas[k]);

    cplx bracket{0.0, 0.0};
    for (std::size_t j = 0; j < m; ++j) {
      bracket += counts_[j] * std::conj(lambda[j]) * phase_vals_[j] * psi[j];
    }
    grad_gammas[k] = 2.0 * bracket.imag();

    for (std::size_t j = 0; j < m; ++j) {
      const double phase = gammas[k] * phase_vals_[j];
      const cplx undo{std::cos(phase), std::sin(phase)};
      psi[j] *= undo;
      lambda[j] *= undo;
    }
  }
  return value;
}

double GroverQaoa::run_packed(std::span<const double> angles) {
  FASTQAOA_CHECK(angles.size() % 2 == 0 && !angles.empty(),
                 "GroverQaoa::run_packed: need 2p angles");
  const std::size_t p = angles.size() / 2;
  return run(angles.subspan(0, p), angles.subspan(p, p));
}

double GroverQaoa::ground_state_probability(Direction direction) const {
  // values_ are sorted ascending by construction from DegeneracyTable, but
  // user-supplied tables may not be; scan for the extremum.
  std::size_t best = 0;
  for (std::size_t j = 1; j < values_.size(); ++j) {
    const bool better = direction == Direction::Maximize
                            ? values_[j] > values_[best]
                            : values_[j] < values_[best];
    if (better) best = j;
  }
  return counts_[best] * std::norm(amps_[best]);
}

cplx GroverQaoa::class_amplitude(std::size_t j) const {
  FASTQAOA_CHECK(j < amps_.size(), "class_amplitude: index out of range");
  return amps_[j];
}

cvec GroverQaoa::expand(const std::vector<std::size_t>& class_of) const {
  cvec psi(class_of.size(), cplx{0.0, 0.0});
  for (std::size_t i = 0; i < class_of.size(); ++i) {
    FASTQAOA_CHECK(class_of[i] < amps_.size(),
                   "expand: class index out of range");
    psi[i] = amps_[class_of[i]];
  }
  return psi;
}

GroverQaoa grover_hamming_weight_qaoa(int n,
                                      const std::vector<double>& weight_cost) {
  FASTQAOA_CHECK(n >= 1, "grover_hamming_weight_qaoa: need n >= 1");
  FASTQAOA_CHECK(static_cast<int>(weight_cost.size()) == n + 1,
                 "grover_hamming_weight_qaoa: need n+1 weight costs");
  std::vector<double> counts(static_cast<std::size_t>(n) + 1);
  // C(n, m) computed multiplicatively in doubles — exact for n <= 52 and
  // accurate to 1 ulp beyond; overflows only past n ≈ 1020.
  double binom = 1.0;
  for (int m = 0; m <= n; ++m) {
    counts[static_cast<std::size_t>(m)] = binom;
    binom = binom * (n - m) / (m + 1);
  }
  return GroverQaoa(weight_cost, counts);
}

GroverQaoa grover_search_qaoa(double num_states, double marked) {
  FASTQAOA_CHECK(marked > 0.0 && marked < num_states,
                 "grover_search_qaoa: need 0 < marked < num_states");
  return GroverQaoa({0.0, 1.0}, {num_states - marked, marked});
}

}  // namespace fastqaoa
