#include "core/multi_angle.hpp"

#include "common/error.hpp"

namespace fastqaoa {

std::vector<XMixer> per_qubit_x_mixers(int n) {
  FASTQAOA_CHECK(n >= 1 && n <= 30, "per_qubit_x_mixers: need 1 <= n <= 30");
  std::vector<XMixer> mixers;
  mixers.reserve(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    mixers.emplace_back(n, std::vector<PauliXTerm>{{state_t{1} << q, 1.0}});
  }
  return mixers;
}

std::vector<MixerLayer> repeated_layers(const std::vector<XMixer>& mixers,
                                        int rounds) {
  FASTQAOA_CHECK(rounds >= 1, "repeated_layers: need at least one round");
  FASTQAOA_CHECK(!mixers.empty(), "repeated_layers: empty mixer set");
  MixerLayer layer;
  layer.mixers.reserve(mixers.size());
  for (const XMixer& m : mixers) layer.mixers.push_back(&m);
  return std::vector<MixerLayer>(static_cast<std::size_t>(rounds), layer);
}

}  // namespace fastqaoa
