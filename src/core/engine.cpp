#include "core/engine.hpp"

namespace fastqaoa {

const char* to_string(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::Exact:
      return "exact";
    case EngineKind::Mps:
      return "mps";
  }
  return "unknown";
}

const std::vector<std::string>& engine_names() {
  static const std::vector<std::string> names = {"exact", "mps"};
  return names;
}

std::optional<EngineKind> parse_engine(const std::string& name) {
  if (name == "exact") return EngineKind::Exact;
  if (name == "mps") return EngineKind::Mps;
  return std::nullopt;
}

}  // namespace fastqaoa
