#include "core/plan.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/topology.hpp"
#include "linalg/kernels/kernels.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/trace.hpp"

namespace fastqaoa {

namespace {

std::vector<MixerLayer> repeat_layer(const Mixer& mixer, int rounds) {
  FASTQAOA_CHECK(rounds >= 1, "QaoaPlan: need at least one round");
  std::vector<MixerLayer> layers(static_cast<std::size_t>(rounds));
  for (auto& layer : layers) layer.mixers = {&mixer};
  return layers;
}

std::vector<MixerLayer> one_per_round(const std::vector<const Mixer*>& ms) {
  FASTQAOA_CHECK(!ms.empty(), "QaoaPlan: need at least one round");
  std::vector<MixerLayer> layers(ms.size());
  for (std::size_t i = 0; i < ms.size(); ++i) layers[i].mixers = {ms[i]};
  return layers;
}

/// Reject NaN/Inf table entries at construction so a poisoned cost table is
/// caught once, loudly, instead of silently NaN-ing hours of optimization.
void check_table_finite(const dvec& table, const char* which) {
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (!std::isfinite(table[i])) {
      FASTQAOA_CHECK(false, std::string("QaoaPlan: ") + which +
                                " table contains a non-finite value at "
                                "index " +
                                std::to_string(i) +
                                " — fix the cost function or filter the "
                                "instance before building a plan");
    }
  }
}

}  // namespace

QaoaPlan::QaoaPlan(std::vector<MixerLayer> layers, dvec obj_vals,
                   QaoaPlanOptions options)
    : layers_(std::move(layers)), obj_vals_(std::move(obj_vals)) {
  validate_and_finalize(std::move(options));
}

QaoaPlan::QaoaPlan(const Mixer& mixer, dvec obj_vals, int rounds,
                   QaoaPlanOptions options)
    : QaoaPlan(repeat_layer(mixer, rounds), std::move(obj_vals),
               std::move(options)) {}

QaoaPlan::QaoaPlan(std::vector<const Mixer*> round_mixers, dvec obj_vals,
                   QaoaPlanOptions options)
    : QaoaPlan(one_per_round(round_mixers), std::move(obj_vals),
               std::move(options)) {}

void QaoaPlan::validate_and_finalize(QaoaPlanOptions options) {
  FASTQAOA_CHECK(!layers_.empty(), "QaoaPlan: need at least one round");
  FASTQAOA_CHECK(!obj_vals_.empty(), "QaoaPlan: empty objective table");
  for (const MixerLayer& layer : layers_) {
    FASTQAOA_CHECK(!layer.mixers.empty(),
                   "QaoaPlan: every round needs at least one mixer");
    for (const Mixer* m : layer.mixers) {
      FASTQAOA_CHECK(m != nullptr, "QaoaPlan: null mixer");
      FASTQAOA_CHECK(
          m->dim() == obj_vals_.size(),
          "QaoaPlan: mixer dimension does not match objective table — "
          "did you tabulate over the wrong feasible set?");
    }
    num_betas_ += static_cast<int>(layer.mixers.size());
  }
  check_table_finite(obj_vals_, "objective");

  if (options.phase_values) {
    FASTQAOA_CHECK(options.phase_values->size() == dim(),
                   "QaoaPlan: phase table dimension mismatch");
    check_table_finite(*options.phase_values, "phase-separator");
    phase_vals_ = std::move(*options.phase_values);
  }

  if (options.initial_state) {
    FASTQAOA_CHECK(options.initial_state->size() == dim(),
                   "QaoaPlan: initial state dimension mismatch");
    const double nrm = linalg::norm(*options.initial_state);
    FASTQAOA_CHECK(std::abs(nrm - 1.0) < 1e-8,
                   "QaoaPlan: initial state must be unit norm");
    psi0_ = std::move(*options.initial_state);
    custom_psi0_ = true;
  } else {
    // Eager uniform-superposition default: building |ψ0> here (instead of
    // lazily on first use) is what makes evaluation truly const.
    psi0_.resize(dim());
    const double amp = 1.0 / std::sqrt(static_cast<double>(dim()));
    linalg::fill(psi0_, cplx{amp, 0.0});
  }

  // Quantize the phase table eagerly (O(dim), done once) so every batched
  // evaluation gets the per-distinct-value sincos route for free.
  phase_dict_ = linalg::build_diag_dict(phase_values());
}

void EvalWorkspace::reserve(const QaoaPlan& plan) {
  psi.set_shard_request(shards);
  psi.resize(plan.dim());
  scratch.reserve(plan.dim());
}

double evaluate(const QaoaPlan& plan, EvalWorkspace& ws,
                std::span<const double> betas,
                std::span<const double> gammas) {
  FASTQAOA_CHECK(static_cast<int>(betas.size()) == plan.num_betas(),
                 "evaluate: wrong number of beta angles");
  FASTQAOA_CHECK(static_cast<int>(gammas.size()) == plan.num_gammas(),
                 "evaluate: wrong number of gamma angles");
  FASTQAOA_OBS_SCOPE(ws.metrics);
  FASTQAOA_OBS_COUNT("core.evaluate.calls", 1);
  FASTQAOA_OBS_TIMED("core.evaluate");
  FASTQAOA_OBS_HIST_TIMED("core.evaluate.latency_seconds");
  FASTQAOA_TRACE_SPAN("evaluate");
  ws.psi.set_shard_request(ws.shards);
  ws.psi = plan.initial_state();
  const dvec& phase = plan.phase_values();
  const auto& layers = plan.layers();
  std::size_t beta_index = 0;
  for (std::size_t k = 0; k < layers.size(); ++k) {
    FASTQAOA_OBS_TIMED("core.evaluate.round");
    FASTQAOA_OBS_HIST_TIMED("core.evaluate.round_latency_seconds");
    const auto& ms = layers[k].mixers;
    const bool last = k + 1 == layers.size();
    if (last && ms.size() == 1) {
      // Whole final round — phase separator, mixer, expectation — through
      // the mixer's fused entry point (XMixer folds all three into WHT
      // passes; the base-class default composes the unfused kernels).
      ws.expectation = ms[0]->apply_phase_exp_expect(
          ws.psi, phase, gammas[k], betas[beta_index++], plan.objective(),
          ws.scratch);
      return ws.expectation;
    }
    // Phase separator rides the first mixer's fused entry; extra mixers in
    // the round apply plain.
    ms[0]->apply_phase_exp(ws.psi, phase, gammas[k], betas[beta_index++],
                           ws.scratch);
    for (std::size_t j = 1; j < ms.size(); ++j) {
      ms[j]->apply_exp(ws.psi, betas[beta_index++], ws.scratch);
    }
  }
  ws.expectation = linalg::diag_expectation(plan.objective(), ws.psi);
  return ws.expectation;
}

double evaluate_packed(const QaoaPlan& plan, EvalWorkspace& ws,
                       std::span<const double> angles) {
  FASTQAOA_CHECK(plan.num_betas() == plan.rounds(),
                 "evaluate_packed: only valid for single-mixer rounds");
  FASTQAOA_CHECK(static_cast<int>(angles.size()) == 2 * plan.rounds(),
                 "evaluate_packed: need 2p angles (betas then gammas)");
  const std::size_t p = static_cast<std::size_t>(plan.rounds());
  return evaluate(plan, ws, angles.subspan(0, p), angles.subspan(p, p));
}

namespace {

/// Lanes per kernel sub-batch: wide enough to amortize the shared table and
/// twiddle sweeps, small enough that a tile of statevectors still fits the
/// outer cache level alongside the tables (measured knee on the reference
/// machine; see bench/baselines/batch_eval.json).
constexpr int kEvalBatchTile = 8;

}  // namespace

void evaluate_batch(const QaoaPlan& plan, EvalWorkspace& ws,
                    std::span<const double> betas,
                    std::span<const double> gammas, std::span<double> out) {
  const int b_count = static_cast<int>(out.size());
  FASTQAOA_CHECK(b_count >= 1, "evaluate_batch: empty output span");
  const std::size_t nb = static_cast<std::size_t>(plan.num_betas());
  const std::size_t ng = static_cast<std::size_t>(plan.num_gammas());
  FASTQAOA_CHECK(betas.size() == nb * static_cast<std::size_t>(b_count),
                 "evaluate_batch: wrong number of beta angles");
  FASTQAOA_CHECK(gammas.size() == ng * static_cast<std::size_t>(b_count),
                 "evaluate_batch: wrong number of gamma angles");
  if (b_count == 1) {
    // One-lane batches take the single-point path outright, so lane 0 and
    // evaluate() share psi by construction instead of silently diverging.
    out[0] = evaluate(plan, ws, betas, gammas);
    ws.batch_lanes = 1;
    FASTQAOA_ASSERT(ws.lane_state(0) == ws.psi.data(),
                    "evaluate_batch: one-lane batch must alias the "
                    "single-point buffers");
    return;
  }
  FASTQAOA_OBS_SCOPE(ws.metrics);
  FASTQAOA_OBS_COUNT("core.evaluate_batch.calls", 1);
  FASTQAOA_OBS_COUNT("core.evaluate.batched_lanes", b_count);
  FASTQAOA_OBS_TIMED("core.evaluate_batch");
  FASTQAOA_OBS_HIST_TIMED("core.evaluate_batch.latency_seconds");
  FASTQAOA_OBS_HIST("core.evaluate_batch.width", b_count);
  FASTQAOA_TRACE_SPAN("evaluate_batch");

  const index_t d = plan.dim();
  // Lane stride: dim rounded up to a whole cache line of cplx, plus a
  // 64-cplx pad that skews the cache-set mapping of equal offsets across
  // lanes (power-of-two strides alias brutally in set-associative caches).
  const index_t stride = ((d + index_t{3}) & ~index_t{3}) + 64;
  ws.batch_states.set_shard_request(ws.shards);
  ws.batch_states.resize(stride * static_cast<index_t>(b_count));
  ws.batch_stride = stride;
  ws.batch_lanes = b_count;
  // Shard count appropriate for ONE lane of length d (the batch matrix as a
  // whole is not what the kernels shard over).
  const int lane_shards = plan_shards(d, ws.shards).shards;

  const dvec& phase = plan.phase_values();
  const linalg::DiagDict* pdict = &plan.phase_dict();
  const auto& layers = plan.layers();
  double gk[kEvalBatchTile];
  double bk[kEvalBatchTile];

  // Tile-outer, round-inner: each tile of lanes runs the whole circuit
  // before the next tile starts, so a tile's statevectors stay cache-warm
  // across rounds while every table sweep is shared tile-wide.
  for (int l0 = 0; l0 < b_count; l0 += kEvalBatchTile) {
    const int lanes = std::min(kEvalBatchTile, b_count - l0);
    StateBatch tile{ws.batch_states.data() + stride * static_cast<index_t>(l0),
                    stride, lanes, nullptr, lane_shards};
    std::size_t beta_index = 0;
    bool fused_expect = false;
    for (std::size_t k = 0; k < layers.size(); ++k) {
      FASTQAOA_OBS_TIMED("core.evaluate_batch.round");
      FASTQAOA_OBS_HIST_TIMED("core.evaluate_batch.round_latency_seconds");
      const auto& ms = layers[k].mixers;
      const bool last = k + 1 == layers.size();
      // All lanes start from the shared |psi0>; the copy is fused into the
      // first round's first pass over the data.
      tile.init = k == 0 ? plan.initial_state().data() : nullptr;
      for (int l = 0; l < lanes; ++l) {
        gk[l] = gammas[static_cast<std::size_t>(l0 + l) * ng + k];
        bk[l] = betas[static_cast<std::size_t>(l0 + l) * nb + beta_index];
      }
      if (last && ms.size() == 1) {
        ms[0]->apply_phase_exp_expect_batch(tile, phase, pdict, gk, bk,
                                            plan.objective(),
                                            out.data() + l0, ws.scratch);
        fused_expect = true;
        break;
      }
      ms[0]->apply_phase_exp_batch(tile, phase, pdict, gk, bk, ws.scratch);
      ++beta_index;
      tile.init = nullptr;
      for (std::size_t j = 1; j < ms.size(); ++j) {
        for (int l = 0; l < lanes; ++l) {
          bk[l] = betas[static_cast<std::size_t>(l0 + l) * nb + beta_index];
        }
        ms[j]->apply_exp_batch(tile, bk, ws.scratch);
        ++beta_index;
      }
    }
    if (!fused_expect) {
      const auto& be = linalg::kernels::active();
      for (int l = 0; l < lanes; ++l) {
        out[l0 + l] = be.diag_expectation(
            plan.objective().data(),
            tile.states + stride * static_cast<index_t>(l), d);
      }
    }
  }
}

void evaluate_batch_packed(const QaoaPlan& plan, EvalWorkspace& ws,
                           std::span<const double> angles,
                           std::span<double> out) {
  FASTQAOA_CHECK(plan.num_betas() == plan.rounds(),
                 "evaluate_batch_packed: only valid for single-mixer rounds");
  const std::size_t p = static_cast<std::size_t>(plan.rounds());
  const std::size_t b_count = out.size();
  FASTQAOA_CHECK(angles.size() == 2 * p * b_count,
                 "evaluate_batch_packed: need 2p angles per lane");
  // De-interleave the per-lane (betas, gammas) packing into the lane-major
  // layout of evaluate_batch; angle arrays are tiny next to statevectors.
  std::vector<double> betas(p * b_count);
  std::vector<double> gammas(p * b_count);
  for (std::size_t l = 0; l < b_count; ++l) {
    for (std::size_t k = 0; k < p; ++k) {
      betas[l * p + k] = angles[l * 2 * p + k];
      gammas[l * p + k] = angles[l * 2 * p + p + k];
    }
  }
  evaluate_batch(plan, ws, betas, gammas, out);
}

}  // namespace fastqaoa
