#pragma once
/// \file plan.hpp
/// The immutable / mutable split at the heart of the engine.
///
/// The paper's whole speed argument is "precompute once, evaluate thousands
/// of times". We make that structural: a QaoaPlan holds everything that is
/// precomputed and never changes across evaluations (mixer schedule,
/// objective and phase-separator tables, initial state — all validated once
/// at construction), while an EvalWorkspace holds everything one evaluation
/// mutates (statevector, scratch, adjoint buffers). evaluate() takes the
/// plan by const reference and the workspace by mutable reference, so one
/// shared plan can be evaluated from many threads concurrently as long as
/// each thread brings its own workspace — the property every parallel outer
/// loop (basinhopping restarts, ensemble instances) is built on.

#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "mixers/mixer.hpp"
#include "obs/metrics.hpp"
#include "problems/objective.hpp"

namespace fastqaoa {

/// One QAOA round applies the phase separator once, then each mixer in the
/// layer in order, each consuming its own β angle.
struct MixerLayer {
  std::vector<const Mixer*> mixers;
};

/// Optional overrides applied at plan construction. Everything is validated
/// up front so evaluation never has to re-check.
struct QaoaPlanOptions {
  /// Phase-separator table different from the measured objective —
  /// e.g. threshold_indicator(obj_vals, t) for threshold QAOA.
  std::optional<dvec> phase_values;
  /// Custom |ψ0> (warm starts). Must be unit-norm and of matching
  /// dimension. Default: uniform superposition over the feasible set.
  std::optional<cvec> initial_state;
};

/// Immutable, shareable QAOA evaluation plan. Construction validates the
/// mixer schedule against the objective table and materializes the initial
/// state eagerly; afterwards the plan is strictly read-only, so any number
/// of threads may evaluate against it concurrently (each with its own
/// EvalWorkspace). Mixers are held by pointer — keep them alive (and do not
/// mutate them) while the plan is in use.
class QaoaPlan {
 public:
  /// Same mixer every round, for `rounds` rounds (the common case).
  QaoaPlan(const Mixer& mixer, dvec obj_vals, int rounds,
           QaoaPlanOptions options = {});

  /// One (single-mixer) layer per round.
  QaoaPlan(std::vector<const Mixer*> round_mixers, dvec obj_vals,
           QaoaPlanOptions options = {});

  /// Fully general multi-angle schedule: layers[k] lists the mixers of
  /// round k, each taking its own β.
  QaoaPlan(std::vector<MixerLayer> layers, dvec obj_vals,
           QaoaPlanOptions options = {});

  /// Number of rounds p.
  [[nodiscard]] int rounds() const noexcept {
    return static_cast<int>(layers_.size());
  }
  /// Total number of β angles (= p for single-mixer layers).
  [[nodiscard]] int num_betas() const noexcept { return num_betas_; }
  /// Total number of γ angles (= p).
  [[nodiscard]] int num_gammas() const noexcept { return rounds(); }
  /// Hilbert-space (feasible subspace) dimension.
  [[nodiscard]] index_t dim() const noexcept { return obj_vals_.size(); }

  [[nodiscard]] const dvec& objective() const noexcept { return obj_vals_; }
  [[nodiscard]] const dvec& phase_values() const noexcept {
    return phase_vals_.empty() ? obj_vals_ : phase_vals_;
  }
  [[nodiscard]] const std::vector<MixerLayer>& layers() const noexcept {
    return layers_;
  }
  /// The (eagerly built, always non-empty) initial state.
  [[nodiscard]] const cvec& initial_state() const noexcept { return psi0_; }

  /// Whether a custom phase table / initial state was supplied.
  [[nodiscard]] bool has_custom_phase() const noexcept {
    return !phase_vals_.empty();
  }
  [[nodiscard]] bool has_custom_initial_state() const noexcept {
    return custom_psi0_;
  }

 private:
  void validate_and_finalize(QaoaPlanOptions options);

  std::vector<MixerLayer> layers_;
  dvec obj_vals_;
  dvec phase_vals_;  ///< empty = use obj_vals_ as the phase table
  cvec psi0_;        ///< built eagerly at construction, never empty
  int num_betas_ = 0;
  bool custom_psi0_ = false;
};

/// Per-evaluation mutable state: cheap to construct, reusable across calls
/// (buffers are grown on first use, then evaluation is allocation-free).
/// One workspace per thread; never share a workspace across threads.
struct EvalWorkspace {
  cvec psi;      ///< statevector of the last evaluate()
  cvec scratch;  ///< mixer workspace
  /// Adjoint-gradient buffers (see autodiff/adjoint.hpp); unused — and
  /// unallocated — by plain evaluation.
  cvec adjoint_psi;
  cvec lambda;
  cvec hpsi;
  /// <C> of the last evaluate().
  double expectation = 0.0;
  /// This workspace's metric sink. evaluate() binds it as the thread's
  /// active sink, so every instrumented kernel it reaches (WHT, GEMV,
  /// adjoint sweeps) tallies here without touching shared state. Outer
  /// loops merge it into the global aggregate at their join point
  /// (obs::merge_global). Untouched when FASTQAOA_PROFILING=OFF.
  obs::MetricsSink metrics;

  /// Pre-size the forward buffers for a plan (optional warm-up; evaluation
  /// grows them on demand anyway).
  void reserve(const QaoaPlan& plan);
};

/// Evolve |β,γ> = e^{-iβ_p H_M} e^{-iγ_p H_C} ... |ψ0> and return <C>.
/// Thread-safe for a shared `plan`: concurrent calls must each use their
/// own `ws`. betas.size() must equal plan.num_betas(), gammas.size() must
/// equal plan.num_gammas(). The final statevector is left in ws.psi.
double evaluate(const QaoaPlan& plan, EvalWorkspace& ws,
                std::span<const double> betas, std::span<const double> gammas);

/// Paper-style packed angles: angles[0..p) = betas, angles[p..2p) = gammas.
/// Only valid when plan.num_betas() == plan.rounds().
double evaluate_packed(const QaoaPlan& plan, EvalWorkspace& ws,
                       std::span<const double> angles);

}  // namespace fastqaoa
