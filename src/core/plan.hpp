#pragma once
/// \file plan.hpp
/// The immutable / mutable split at the heart of the engine.
///
/// The paper's whole speed argument is "precompute once, evaluate thousands
/// of times". We make that structural: a QaoaPlan holds everything that is
/// precomputed and never changes across evaluations (mixer schedule,
/// objective and phase-separator tables, initial state — all validated once
/// at construction), while an EvalWorkspace holds everything one evaluation
/// mutates (statevector, scratch, adjoint buffers). evaluate() takes the
/// plan by const reference and the workspace by mutable reference, so one
/// shared plan can be evaluated from many threads concurrently as long as
/// each thread brings its own workspace — the property every parallel outer
/// loop (basinhopping restarts, ensemble instances) is built on.

#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "linalg/diag_dict.hpp"
#include "linalg/sharded_state.hpp"
#include "mixers/mixer.hpp"
#include "obs/metrics.hpp"
#include "problems/objective.hpp"

namespace fastqaoa {

/// One QAOA round applies the phase separator once, then each mixer in the
/// layer in order, each consuming its own β angle.
struct MixerLayer {
  std::vector<const Mixer*> mixers;
};

/// Optional overrides applied at plan construction. Everything is validated
/// up front so evaluation never has to re-check.
struct QaoaPlanOptions {
  /// Phase-separator table different from the measured objective —
  /// e.g. threshold_indicator(obj_vals, t) for threshold QAOA.
  std::optional<dvec> phase_values;
  /// Custom |ψ0> (warm starts). Must be unit-norm and of matching
  /// dimension. Default: uniform superposition over the feasible set.
  std::optional<cvec> initial_state;
};

/// Immutable, shareable QAOA evaluation plan. Construction validates the
/// mixer schedule against the objective table and materializes the initial
/// state eagerly; afterwards the plan is strictly read-only, so any number
/// of threads may evaluate against it concurrently (each with its own
/// EvalWorkspace). Mixers are held by pointer — keep them alive (and do not
/// mutate them) while the plan is in use.
class QaoaPlan {
 public:
  /// Same mixer every round, for `rounds` rounds (the common case).
  QaoaPlan(const Mixer& mixer, dvec obj_vals, int rounds,
           QaoaPlanOptions options = {});

  /// One (single-mixer) layer per round.
  QaoaPlan(std::vector<const Mixer*> round_mixers, dvec obj_vals,
           QaoaPlanOptions options = {});

  /// Fully general multi-angle schedule: layers[k] lists the mixers of
  /// round k, each taking its own β.
  QaoaPlan(std::vector<MixerLayer> layers, dvec obj_vals,
           QaoaPlanOptions options = {});

  /// Number of rounds p.
  [[nodiscard]] int rounds() const noexcept {
    return static_cast<int>(layers_.size());
  }
  /// Total number of β angles (= p for single-mixer layers).
  [[nodiscard]] int num_betas() const noexcept { return num_betas_; }
  /// Total number of γ angles (= p).
  [[nodiscard]] int num_gammas() const noexcept { return rounds(); }
  /// Hilbert-space (feasible subspace) dimension.
  [[nodiscard]] index_t dim() const noexcept { return obj_vals_.size(); }

  [[nodiscard]] const dvec& objective() const noexcept { return obj_vals_; }
  [[nodiscard]] const dvec& phase_values() const noexcept {
    return phase_vals_.empty() ? obj_vals_ : phase_vals_;
  }
  /// Quantized dictionary over phase_values(), built eagerly at
  /// construction. Valid whenever the phase table has few distinct values
  /// (integer-weighted cost functions, indicators); lets batched evaluation
  /// collapse the phase-separator sincos sweep to one call per distinct
  /// value per lane. Invalid dictionaries are simply not used.
  [[nodiscard]] const linalg::DiagDict& phase_dict() const noexcept {
    return phase_dict_;
  }
  [[nodiscard]] const std::vector<MixerLayer>& layers() const noexcept {
    return layers_;
  }
  /// The (eagerly built, always non-empty) initial state.
  [[nodiscard]] const cvec& initial_state() const noexcept { return psi0_; }

  /// Whether a custom phase table / initial state was supplied.
  [[nodiscard]] bool has_custom_phase() const noexcept {
    return !phase_vals_.empty();
  }
  [[nodiscard]] bool has_custom_initial_state() const noexcept {
    return custom_psi0_;
  }

 private:
  void validate_and_finalize(QaoaPlanOptions options);

  std::vector<MixerLayer> layers_;
  dvec obj_vals_;
  dvec phase_vals_;  ///< empty = use obj_vals_ as the phase table
  linalg::DiagDict phase_dict_;  ///< quantized view of phase_values()
  cvec psi0_;        ///< built eagerly at construction, never empty
  int num_betas_ = 0;
  bool custom_psi0_ = false;
};

/// Per-evaluation mutable state: cheap to construct, reusable across calls
/// (buffers are grown on first use, then evaluation is allocation-free).
/// One workspace per thread; never share a workspace across threads.
///
/// Single-point vs batch semantics: evaluate() writes psi and expectation.
/// evaluate_batch() with B == 1 delegates to evaluate() — lane 0 of a
/// one-lane batch and the single-point path share the same buffers (psi),
/// debug-asserted rather than silently diverging. With B > 1 the per-lane
/// final statevectors live in the strided batch matrix (lane_state) and the
/// per-lane expectations in the caller's out span; the legacy single-point
/// fields psi and expectation are left untouched and keep reflecting the
/// last single-point evaluate().
struct EvalWorkspace {
  /// Shard request for the statevector buffers: 0 = auto (FASTQAOA_SHARDS,
  /// then one shard per detected NUMA node), otherwise an explicit count
  /// (rounded to a power of two, clamped for small states — see
  /// fastqaoa::plan_shards). Applied when buffers are (re)sized; results
  /// are bit-identical at every shard count.
  int shards = 0;
  linalg::ShardedState psi;  ///< statevector of the last evaluate()
  cvec scratch;              ///< mixer workspace
  /// Batched-evaluation state matrix: lane l of the last evaluate_batch()
  /// (B > 1) occupies batch_states[l*batch_stride .. l*batch_stride+dim).
  /// The stride is padded past dim to keep lanes 64-byte aligned while
  /// skewing their cache-set mapping; the pad tail is uninitialized.
  linalg::ShardedState batch_states;
  index_t batch_stride = 0;  ///< lane stride of batch_states, in elements
  int batch_lanes = 0;       ///< lane count of the last evaluate_batch()
  /// Adjoint-gradient buffers (see autodiff/adjoint.hpp); unused — and
  /// unallocated — by plain evaluation.
  linalg::ShardedState adjoint_psi;
  linalg::ShardedState lambda;
  linalg::ShardedState hpsi;
  /// <C> of the last evaluate().
  double expectation = 0.0;
  /// This workspace's metric sink. evaluate() binds it as the thread's
  /// active sink, so every instrumented kernel it reaches (WHT, GEMV,
  /// adjoint sweeps) tallies here without touching shared state. Outer
  /// loops merge it into the global aggregate at their join point
  /// (obs::merge_global). Untouched when FASTQAOA_PROFILING=OFF.
  obs::MetricsSink metrics;

  /// Pre-size the forward buffers for a plan (optional warm-up; evaluation
  /// grows them on demand anyway). Applies the shard request and
  /// first-touches psi so its pages land on their shard's NUMA node before
  /// the first evaluation.
  void reserve(const QaoaPlan& plan);

  /// Lane l's final statevector after the last evaluate_batch(). For a
  /// one-lane batch this aliases psi.data() (shared-buffer contract above).
  [[nodiscard]] const cplx* lane_state(int lane) const noexcept {
    return batch_lanes <= 1 ? psi.data()
                            : batch_states.data() +
                                  batch_stride * static_cast<index_t>(lane);
  }
};

/// Evolve |β,γ> = e^{-iβ_p H_M} e^{-iγ_p H_C} ... |ψ0> and return <C>.
/// Thread-safe for a shared `plan`: concurrent calls must each use their
/// own `ws`. betas.size() must equal plan.num_betas(), gammas.size() must
/// equal plan.num_gammas(). The final statevector is left in ws.psi.
double evaluate(const QaoaPlan& plan, EvalWorkspace& ws,
                std::span<const double> betas, std::span<const double> gammas);

/// Paper-style packed angles: angles[0..p) = betas, angles[p..2p) = gammas.
/// Only valid when plan.num_betas() == plan.rounds().
double evaluate_packed(const QaoaPlan& plan, EvalWorkspace& ws,
                       std::span<const double> angles);

/// Batched evaluation: B = out.size() independent angle sets carried through
/// the fused phase→WHT→expect kernels together, sharing every sweep over the
/// plan's cost/phase tables across the batch. Angles are lane-major:
/// betas.size() == B * plan.num_betas() with lane l's betas at
/// betas[l*num_betas ..), and likewise gammas. out[l] receives lane l's <C>.
///
/// Contract: out is bit-identical, lane for lane, to B sequential
/// evaluate() calls with the same workspace — batching reorders execution,
/// never arithmetic association — at any thread count and any batch size.
/// B == 1 delegates to evaluate() (see EvalWorkspace buffer-sharing notes).
/// Lanes are tiled through the kernels in fixed-size sub-batches, so memory
/// is batch_states (B lanes) plus nothing else; very large B is fine.
void evaluate_batch(const QaoaPlan& plan, EvalWorkspace& ws,
                    std::span<const double> betas,
                    std::span<const double> gammas, std::span<double> out);

/// Packed-angle batch: lane l occupies angles[l*2p .. (l+1)*2p), each lane
/// packed as betas then gammas. Only valid when num_betas() == rounds().
void evaluate_batch_packed(const QaoaPlan& plan, EvalWorkspace& ws,
                           std::span<const double> angles,
                           std::span<double> out);

}  // namespace fastqaoa
