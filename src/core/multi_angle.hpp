#pragma once
/// \file multi_angle.hpp
/// Helpers for multi-angle QAOA (Herrman et al. [21], paper §3): each
/// mixer component gets its own beta angle within a round. The Qaoa engine
/// already takes arbitrary MixerLayer lists; these helpers build the common
/// decompositions.

#include <vector>

#include "core/qaoa.hpp"
#include "mixers/x_mixer.hpp"

namespace fastqaoa {

/// One single-qubit X mixer per qubit: the ma-QAOA mixer decomposition
/// (n betas per round instead of one).
std::vector<XMixer> per_qubit_x_mixers(int n);

/// Assemble p identical multi-angle layers from a mixer set. The returned
/// layers point at the supplied mixers — keep `mixers` alive while the
/// Qaoa engine built from the layers is in use.
std::vector<MixerLayer> repeated_layers(const std::vector<XMixer>& mixers,
                                        int rounds);

}  // namespace fastqaoa
