#pragma once
/// \file cnf.hpp
/// CNF formulas and random k-SAT instance generation. The paper's Fig. 2
/// uses a random 3-SAT instance at clause density 6 (clauses = 6n); the
/// QAOA objective counts satisfied clauses.

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace fastqaoa {

/// A single literal: variable index (0-based) and polarity.
struct Literal {
  int variable;
  bool negated;

  bool operator==(const Literal&) const = default;
};

/// A disjunction of literals.
using Clause = std::vector<Literal>;

/// A CNF formula over n boolean variables.
class CnfFormula {
 public:
  explicit CnfFormula(int num_variables);
  CnfFormula(int num_variables, std::vector<Clause> clauses);

  [[nodiscard]] int num_variables() const noexcept { return n_; }
  [[nodiscard]] int num_clauses() const noexcept {
    return static_cast<int>(clauses_.size());
  }
  [[nodiscard]] const std::vector<Clause>& clauses() const noexcept {
    return clauses_;
  }

  /// Append a clause (literal variables must be < num_variables and
  /// distinct within the clause).
  void add_clause(Clause clause);

  /// Number of clauses satisfied by assignment x (bit i of x = variable i).
  [[nodiscard]] int count_satisfied(state_t x) const;

  /// True iff every clause is satisfied by x.
  [[nodiscard]] bool satisfied(state_t x) const {
    return count_satisfied(x) == num_clauses();
  }

  /// Clause density m/n.
  [[nodiscard]] double clause_density() const {
    return static_cast<double>(num_clauses()) / n_;
  }

 private:
  int n_;
  std::vector<Clause> clauses_;
};

/// Uniform random k-SAT: each clause picks k distinct variables uniformly
/// and negates each independently with probability 1/2.
CnfFormula random_ksat(int num_variables, int k, int num_clauses, Rng& rng);

/// Random k-SAT at a target clause density alpha (num_clauses =
/// round(alpha * n)).
CnfFormula random_ksat_density(int num_variables, int k, double density,
                               Rng& rng);

}  // namespace fastqaoa
