#include "sat/cnf.hpp"

#include <algorithm>
#include <cmath>

namespace fastqaoa {

CnfFormula::CnfFormula(int num_variables) : n_(num_variables) {
  FASTQAOA_CHECK(num_variables >= 1, "CnfFormula: need at least one variable");
}

CnfFormula::CnfFormula(int num_variables, std::vector<Clause> clauses)
    : CnfFormula(num_variables) {
  for (auto& c : clauses) add_clause(std::move(c));
}

void CnfFormula::add_clause(Clause clause) {
  FASTQAOA_CHECK(!clause.empty(), "add_clause: empty clause");
  for (std::size_t i = 0; i < clause.size(); ++i) {
    FASTQAOA_CHECK(clause[i].variable >= 0 && clause[i].variable < n_,
                   "add_clause: variable out of range");
    for (std::size_t j = i + 1; j < clause.size(); ++j) {
      FASTQAOA_CHECK(clause[i].variable != clause[j].variable,
                     "add_clause: repeated variable within a clause");
    }
  }
  clauses_.push_back(std::move(clause));
}

int CnfFormula::count_satisfied(state_t x) const {
  int count = 0;
  for (const Clause& clause : clauses_) {
    for (const Literal& lit : clause) {
      const bool value = ((x >> lit.variable) & 1ULL) != 0;
      if (value != lit.negated) {  // literal true
        ++count;
        break;
      }
    }
  }
  return count;
}

CnfFormula random_ksat(int num_variables, int k, int num_clauses, Rng& rng) {
  FASTQAOA_CHECK(k >= 1 && k <= num_variables,
                 "random_ksat: need 1 <= k <= num_variables");
  FASTQAOA_CHECK(num_clauses >= 0, "random_ksat: negative clause count");
  CnfFormula f(num_variables);
  std::vector<int> vars(static_cast<std::size_t>(num_variables));
  for (int i = 0; i < num_variables; ++i) vars[static_cast<std::size_t>(i)] = i;
  for (int c = 0; c < num_clauses; ++c) {
    // Partial Fisher-Yates: draw k distinct variables.
    for (int i = 0; i < k; ++i) {
      const auto j =
          i + static_cast<int>(rng.bounded(
                  static_cast<std::uint64_t>(num_variables - i)));
      std::swap(vars[static_cast<std::size_t>(i)],
                vars[static_cast<std::size_t>(j)]);
    }
    Clause clause;
    clause.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      clause.push_back(
          Literal{vars[static_cast<std::size_t>(i)], rng.uniform() < 0.5});
    }
    f.add_clause(std::move(clause));
  }
  return f;
}

CnfFormula random_ksat_density(int num_variables, int k, double density,
                               Rng& rng) {
  const int m = static_cast<int>(std::lround(density * num_variables));
  return random_ksat(num_variables, k, m, rng);
}

}  // namespace fastqaoa
