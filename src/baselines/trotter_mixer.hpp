#pragma once
/// \file trotter_mixer.hpp
/// First-order-Trotter approximation of XY-hopping mixers — the QOKit
/// approach the paper contrasts with (§4): "They include both Clique and
/// Ring mixers, but their implementation is equivalent to a first-order
/// Trotter approximation." Instead of the exact
/// e^{-i beta sum_e (XX+YY)_e} via eigendecomposition, each application is
/// prod_e e^{-i beta (XX+YY)_e} repeated `steps` times with beta/steps —
/// O(steps * |E| * dim) per call, no O(dim^3) precomputation, but only
/// approximately the target unitary (terms on overlapping pairs do not
/// commute). Used by bench/ablation_trotter to quantify the trade.

#include <vector>

#include "graphs/graph.hpp"
#include "mixers/mixer.hpp"
#include "problems/state_space.hpp"

namespace fastqaoa::baselines {

/// Trotterized XY mixer on a feasible state space (full or Dicke — XY terms
/// conserve Hamming weight, so the Dicke subspace stays closed either way).
class TrotterXYMixer final : public Mixer {
 public:
  TrotterXYMixer(const StateSpace& space, const Graph& pairs, int steps = 1);

  [[nodiscard]] index_t dim() const override { return space_.dim(); }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int steps() const noexcept { return steps_; }

  void apply_exp(StateRef psi, double beta, cvec& scratch) const override;
  void apply_ham(ConstStateRef in, StateRef out,
                 cvec& scratch) const override;

 private:
  StateSpace space_;
  Graph pairs_;
  int steps_;
  /// Precomputed swap partners: for edge e and feasible index i,
  /// partner_[e][i] = index of the state with bits (u,v) swapped, or i
  /// itself when the bits agree (no mixing).
  std::vector<std::vector<index_t>> partner_;
};

}  // namespace fastqaoa::baselines
