#pragma once
/// \file circuit.hpp
/// A circuit intermediate representation plus the QAOA-ansatz circuit
/// builder. Circuit-based stacks (Qiskit under QAOAKit, Yao under QAOA.jl)
/// re-materialize this object for every angle set the optimizer tries;
/// reproducing that construction cost is part of the Fig. 4 comparison.

#include <span>
#include <vector>

#include "baselines/gate_sim.hpp"
#include "common/types.hpp"
#include "graphs/graph.hpp"

namespace fastqaoa::baselines {

/// Gate kinds appearing in a (standard-decomposition) QAOA circuit.
enum class GateKind { H, RX, RZ, RZZ, XY, Generic1Q, Generic2Q };

/// One gate instance. Generic gates carry their dense matrix inline —
/// the representation a generic circuit simulator dispatches on.
struct Gate {
  GateKind kind;
  int q1 = -1;
  int q2 = -1;
  double param = 0.0;
  std::vector<cplx> matrix;  ///< 4 entries for 1q, 16 for 2q generics
};

/// An ordered gate list over n qubits.
struct Circuit {
  int n = 0;
  std::vector<Gate> gates;
};

/// Build the standard MaxCut QAOA circuit: initial H layer, then per round
/// RZZ(-gamma * w) per edge (the phase separator, up to a global phase) and
/// RX(2 beta) per qubit (the transverse-field mixer).
Circuit build_maxcut_circuit(const Graph& g, std::span<const double> betas,
                             std::span<const double> gammas);

/// Same ansatz, but every gate lowered to a Generic1Q/Generic2Q dense
/// matrix (the heavyweight representation Qiskit-like stacks execute).
Circuit build_maxcut_circuit_generic(const Graph& g,
                                     std::span<const double> betas,
                                     std::span<const double> gammas);

/// Execute a circuit on a statevector (which must already be initialized
/// to |0...0>; the circuit's H layer produces the uniform start).
void run_circuit(const Circuit& circuit, GateStateVector& sv);

/// MaxCut expectation measured the circuit-stack way: one Z_u Z_v
/// expectation pass per edge, combined as sum_e w_e (1 - <ZZ>) / 2.
double measure_maxcut(const GateStateVector& sv, const Graph& g);

}  // namespace fastqaoa::baselines
