#pragma once
/// \file packages.hpp
/// The three "QAOA packages" Fig. 4 races against each other, behind one
/// interface so the benchmark harness can sweep them uniformly:
///
///  * FastQaoaPackage     — this library: objective tabulated once, mixer in
///    its diagonal frame, buffers pre-allocated (the paper's JuliQAOA).
///  * CircuitLightPackage — stand-in for QAOA.jl/Yao: rebuilds the gate list
///    per evaluation but executes with specialized RX/RZZ kernels and
///    measures term-by-term.
///  * CircuitHeavyPackage — stand-in for QAOAKit/Qiskit: per evaluation it
///    materializes every gate as a dense generic matrix, allocates a fresh
///    statevector, dispatches through the generic 1q/2q kernels, and
///    measures term-by-term.
///
/// Absolute times are machine-specific; the *structural* costs (circuit
/// re-construction, generic dispatch, per-term measurement, allocation
/// churn vs. one precomputed diagonal) are the same ones separating the
/// real packages, so the scaling shapes of Fig. 4 carry over.

#include <memory>
#include <string>

#include "core/qaoa.hpp"
#include "graphs/graph.hpp"
#include "problems/cost_functions.hpp"

namespace fastqaoa::baselines {

/// A QAOA evaluation backend for MaxCut with the transverse-field mixer.
class QaoaPackage {
 public:
  virtual ~QaoaPackage() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// <C> at the given angles; every call is a full evaluation, exactly what
  /// an angle-finding outer loop pays per step.
  virtual double evaluate(std::span<const double> betas,
                          std::span<const double> gammas) = 0;
  /// Bytes of long-lived simulation state this package holds (Fig. 4a's
  /// memory axis).
  [[nodiscard]] virtual std::size_t resident_bytes() const = 0;
};

/// Construct a package by name for a MaxCut instance.
std::unique_ptr<QaoaPackage> make_fastqaoa_package(const Graph& g, int rounds);
std::unique_ptr<QaoaPackage> make_circuit_light_package(const Graph& g);
std::unique_ptr<QaoaPackage> make_circuit_heavy_package(const Graph& g);

}  // namespace fastqaoa::baselines
