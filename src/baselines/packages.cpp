#include "baselines/packages.hpp"

#include <algorithm>

#include "baselines/circuit.hpp"
#include "common/error.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/state_space.hpp"

namespace fastqaoa::baselines {

namespace {

/// JuliQAOA-style: precompute objective + mixer diagonal once, evaluate with
/// the reusable engine.
class FastQaoaPackage final : public QaoaPackage {
 public:
  FastQaoaPackage(const Graph& g, int rounds)
      : mixer_(XMixer::transverse_field(g.num_vertices())),
        engine_(mixer_,
                tabulate(StateSpace::full(g.num_vertices()),
                         [&g](state_t x) { return maxcut(g, x); }),
                rounds) {}

  [[nodiscard]] std::string name() const override { return "fastqaoa"; }

  double evaluate(std::span<const double> betas,
                  std::span<const double> gammas) override {
    return engine_.run(betas, gammas);
  }

  [[nodiscard]] std::size_t resident_bytes() const override {
    // Statevector + objective table + mixer diagonal (all length 2^n).
    return engine_.dim() * (sizeof(cplx) + 2 * sizeof(double));
  }

 private:
  XMixer mixer_;
  Qaoa engine_;
};

/// Yao/QAOA.jl-style: re-materialize the gate list per evaluation, execute
/// with specialized kernels on a reused register, measure per edge.
class CircuitLightPackage final : public QaoaPackage {
 public:
  explicit CircuitLightPackage(const Graph& g)
      : graph_(g), sv_(g.num_vertices()) {}

  [[nodiscard]] std::string name() const override { return "circuit-light"; }

  double evaluate(std::span<const double> betas,
                  std::span<const double> gammas) override {
    const Circuit circuit = build_maxcut_circuit(graph_, betas, gammas);
    sv_.reset();
    run_circuit(circuit, sv_);
    return measure_maxcut(sv_, graph_);
  }

  [[nodiscard]] std::size_t resident_bytes() const override {
    return sv_.dim() * sizeof(cplx);
  }

 private:
  Graph graph_;
  GateStateVector sv_;
};

/// Qiskit/QAOAKit-style: dense generic gate matrices rebuilt per
/// evaluation, fresh statevector allocation per evaluation, generic
/// dispatch, per-term measurement.
class CircuitHeavyPackage final : public QaoaPackage {
 public:
  explicit CircuitHeavyPackage(const Graph& g) : graph_(g) {}

  [[nodiscard]] std::string name() const override { return "circuit-heavy"; }

  double evaluate(std::span<const double> betas,
                  std::span<const double> gammas) override {
    const Circuit templ =
        build_maxcut_circuit_generic(graph_, betas, gammas);
    // Parameter binding: Qiskit-like stacks keep a parameterized template
    // and materialize a bound deep copy for every evaluation.
    const Circuit circuit = templ;
    GateStateVector sv(graph_.num_vertices());  // fresh allocation per call
    run_circuit(circuit, sv);
    const double value = measure_maxcut(sv, graph_);
    peak_bytes_ = std::max(peak_bytes_, sv.dim() * sizeof(cplx) +
                                            circuit.gates.size() * sizeof(Gate));
    return value;
  }

  [[nodiscard]] std::size_t resident_bytes() const override {
    return peak_bytes_;
  }

 private:
  Graph graph_;
  std::size_t peak_bytes_ = 0;
};

}  // namespace

std::unique_ptr<QaoaPackage> make_fastqaoa_package(const Graph& g,
                                                   int rounds) {
  return std::make_unique<FastQaoaPackage>(g, rounds);
}

std::unique_ptr<QaoaPackage> make_circuit_light_package(const Graph& g) {
  return std::make_unique<CircuitLightPackage>(g);
}

std::unique_ptr<QaoaPackage> make_circuit_heavy_package(const Graph& g) {
  return std::make_unique<CircuitHeavyPackage>(g);
}

}  // namespace fastqaoa::baselines
