#include "baselines/circuit.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"

namespace fastqaoa::baselines {

Circuit build_maxcut_circuit(const Graph& g, std::span<const double> betas,
                             std::span<const double> gammas) {
  FASTQAOA_CHECK(betas.size() == gammas.size(),
                 "build_maxcut_circuit: betas/gammas size mismatch");
  Circuit c;
  c.n = g.num_vertices();
  for (int q = 0; q < c.n; ++q) c.gates.push_back(Gate{GateKind::H, q, -1, 0.0, {}});
  for (std::size_t round = 0; round < gammas.size(); ++round) {
    // e^{-i gamma H_C} with H_C = sum_e w (1 - Z_u Z_v)/2 equals (up to a
    // global phase) prod_e RZZ(-gamma * w) on (u, v).
    for (const Edge& e : g.edges()) {
      c.gates.push_back(
          Gate{GateKind::RZZ, e.u, e.v, -gammas[round] * e.weight, {}});
    }
    // e^{-i beta sum X_i} = prod_i RX(2 beta).
    for (int q = 0; q < c.n; ++q) {
      c.gates.push_back(Gate{GateKind::RX, q, -1, 2.0 * betas[round], {}});
    }
  }
  return c;
}

namespace {

std::vector<cplx> rx_matrix(double theta) {
  const double ch = std::cos(theta / 2.0);
  const double sh = std::sin(theta / 2.0);
  return {cplx{ch, 0.0}, cplx{0.0, -sh}, cplx{0.0, -sh}, cplx{ch, 0.0}};
}

std::vector<cplx> h_matrix() {
  const double s = 1.0 / std::sqrt(2.0);
  return {cplx{s, 0.0}, cplx{s, 0.0}, cplx{s, 0.0}, cplx{-s, 0.0}};
}

std::vector<cplx> rz_matrix(double theta) {
  const cplx phase0{std::cos(theta / 2.0), -std::sin(theta / 2.0)};
  return {phase0, cplx{0.0, 0.0}, cplx{0.0, 0.0}, std::conj(phase0)};
}

std::vector<cplx> cx_matrix() {
  // Control = q1, target = q2 in apply_2q's |q2 q1> basis convention:
  // rows with q1 = 1 have the q2 bit flipped.
  std::vector<cplx> m(16, cplx{0.0, 0.0});
  m[0] = cplx{1.0, 0.0};   // |00> -> |00>
  m[13] = cplx{1.0, 0.0};  // |01> -> |11>
  m[10] = cplx{1.0, 0.0};  // |10> -> |10>
  m[7] = cplx{1.0, 0.0};   // |11> -> |01>
  return m;
}

}  // namespace

Circuit build_maxcut_circuit_generic(const Graph& g,
                                     std::span<const double> betas,
                                     std::span<const double> gammas) {
  FASTQAOA_CHECK(betas.size() == gammas.size(),
                 "build_maxcut_circuit_generic: betas/gammas size mismatch");
  Circuit c;
  c.n = g.num_vertices();
  for (int q = 0; q < c.n; ++q) {
    c.gates.push_back(Gate{GateKind::Generic1Q, q, -1, 0.0, h_matrix()});
  }
  for (std::size_t round = 0; round < gammas.size(); ++round) {
    for (const Edge& e : g.edges()) {
      // Transpiled RZZ: CX (u -> v), RZ on v, CX (u -> v) — the basis-gate
      // decomposition a Qiskit-like stack executes.
      c.gates.push_back(Gate{GateKind::Generic2Q, e.u, e.v, 0.0, cx_matrix()});
      c.gates.push_back(Gate{GateKind::Generic1Q, e.v, -1, 0.0,
                             rz_matrix(-gammas[round] * e.weight)});
      c.gates.push_back(Gate{GateKind::Generic2Q, e.u, e.v, 0.0, cx_matrix()});
    }
    for (int q = 0; q < c.n; ++q) {
      c.gates.push_back(
          Gate{GateKind::Generic1Q, q, -1, 0.0, rx_matrix(2.0 * betas[round])});
    }
  }
  return c;
}

void run_circuit(const Circuit& circuit, GateStateVector& sv) {
  FASTQAOA_CHECK(circuit.n == sv.n(), "run_circuit: qubit count mismatch");
  for (const Gate& gate : circuit.gates) {
    switch (gate.kind) {
      case GateKind::H:
        sv.apply_h(gate.q1);
        break;
      case GateKind::RX:
        sv.apply_rx(gate.param, gate.q1);
        break;
      case GateKind::RZ:
        sv.apply_rz(gate.param, gate.q1);
        break;
      case GateKind::RZZ:
        sv.apply_rzz(gate.param, gate.q1, gate.q2);
        break;
      case GateKind::XY:
        sv.apply_xy(gate.param, gate.q1, gate.q2);
        break;
      case GateKind::Generic1Q: {
        FASTQAOA_CHECK(gate.matrix.size() == 4,
                       "run_circuit: malformed 1q matrix");
        std::array<cplx, 4> u;
        std::copy(gate.matrix.begin(), gate.matrix.end(), u.begin());
        sv.apply_1q(u, gate.q1);
        break;
      }
      case GateKind::Generic2Q: {
        FASTQAOA_CHECK(gate.matrix.size() == 16,
                       "run_circuit: malformed 2q matrix");
        std::array<cplx, 16> u;
        std::copy(gate.matrix.begin(), gate.matrix.end(), u.begin());
        sv.apply_2q(u, gate.q1, gate.q2);
        break;
      }
    }
  }
}

double measure_maxcut(const GateStateVector& sv, const Graph& g) {
  double expectation = 0.0;
  for (const Edge& e : g.edges()) {
    expectation += e.weight * 0.5 * (1.0 - sv.expectation_zz(e.u, e.v));
  }
  return expectation;
}

}  // namespace fastqaoa::baselines
