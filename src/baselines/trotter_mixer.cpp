#include "baselines/trotter_mixer.hpp"

#include <cmath>

#include "bits/bitops.hpp"
#include "common/error.hpp"
#include "linalg/vector_ops.hpp"

namespace fastqaoa::baselines {

TrotterXYMixer::TrotterXYMixer(const StateSpace& space, const Graph& pairs,
                               int steps)
    : space_(space), pairs_(pairs), steps_(steps) {
  FASTQAOA_CHECK(steps >= 1, "TrotterXYMixer: need steps >= 1");
  FASTQAOA_CHECK(pairs.num_vertices() == space.n(),
                 "TrotterXYMixer: pair graph must have n vertices");
  partner_.resize(pairs_.edges().size());
  for (std::size_t e = 0; e < pairs_.edges().size(); ++e) {
    const Edge& edge = pairs_.edges()[e];
    auto& table = partner_[e];
    table.resize(space_.dim());
    space_.for_each([&](index_t i, state_t x) {
      if (bit(x, edge.u) != bit(x, edge.v)) {
        table[i] = space_.index_of(flip(flip(x, edge.u), edge.v));
      } else {
        table[i] = i;
      }
    });
  }
}

std::string TrotterXYMixer::name() const {
  return "trotter-xy(steps=" + std::to_string(steps_) + ")";
}

void TrotterXYMixer::apply_exp(StateRef psi, double beta,
                               cvec& scratch) const {
  (void)scratch;
  FASTQAOA_CHECK(psi.size() == dim(), "TrotterXYMixer: state size mismatch");
  const double theta_total = beta / static_cast<double>(steps_);
  for (int s = 0; s < steps_; ++s) {
    for (std::size_t e = 0; e < pairs_.edges().size(); ++e) {
      const double w = pairs_.edges()[e].weight;
      // exp(-i theta (XX+YY)) on the swap pair (matrix [[0,2],[2,0]] block):
      // cos(2 theta) on the diagonal, -i sin(2 theta) across.
      const double c = std::cos(2.0 * theta_total * w);
      const cplx is{0.0, -std::sin(2.0 * theta_total * w)};
      const auto& table = partner_[e];
      const std::ptrdiff_t sz = static_cast<std::ptrdiff_t>(dim());
#pragma omp parallel for schedule(static)
      for (std::ptrdiff_t i = 0; i < sz; ++i) {
        const index_t j = table[static_cast<index_t>(i)];
        // Touch each pair once via its lower index.
        if (j > static_cast<index_t>(i)) {
          const cplx a = psi[static_cast<index_t>(i)];
          const cplx b = psi[j];
          psi[static_cast<index_t>(i)] = c * a + is * b;
          psi[j] = is * a + c * b;
        }
      }
    }
  }
}

void TrotterXYMixer::apply_ham(ConstStateRef in, StateRef out,
                               cvec& scratch) const {
  (void)scratch;
  FASTQAOA_CHECK(in.size() == dim(), "TrotterXYMixer: state size mismatch");
  FASTQAOA_CHECK(out.size() == dim(),
                 "TrotterXYMixer: apply_ham output must be presized");
  // Exact H application (H = sum_e 2 w_e swap_e on differing bits); the
  // Trotterization only approximates the exponential, not H itself.
  linalg::fill(out, cplx{0.0, 0.0});
  for (std::size_t e = 0; e < pairs_.edges().size(); ++e) {
    const double w = 2.0 * pairs_.edges()[e].weight;
    const auto& table = partner_[e];
    const std::ptrdiff_t sz = static_cast<std::ptrdiff_t>(dim());
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < sz; ++i) {
      const index_t j = table[static_cast<index_t>(i)];
      if (j != static_cast<index_t>(i)) {
        out[static_cast<index_t>(i)] += w * in[j];
      }
    }
  }
}

}  // namespace fastqaoa::baselines
