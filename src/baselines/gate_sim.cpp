#include "baselines/gate_sim.hpp"

#include <cmath>

#include "bits/bitops.hpp"
#include "common/error.hpp"

namespace fastqaoa::baselines {

GateStateVector::GateStateVector(int n) : n_(n) {
  FASTQAOA_CHECK(n >= 1 && n <= 30, "GateStateVector: need 1 <= n <= 30");
  psi_.assign(index_t{1} << n, cplx{0.0, 0.0});
  psi_[0] = cplx{1.0, 0.0};
}

void GateStateVector::check_qubit(int q) const {
  FASTQAOA_CHECK(q >= 0 && q < n_, "GateStateVector: qubit out of range");
}

void GateStateVector::reset() {
  const std::ptrdiff_t sz = static_cast<std::ptrdiff_t>(psi_.size());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < sz; ++i) {
    psi_[static_cast<index_t>(i)] = cplx{0.0, 0.0};
  }
  psi_[0] = cplx{1.0, 0.0};
}

void GateStateVector::reset_uniform() {
  const double amp = 1.0 / std::sqrt(static_cast<double>(psi_.size()));
  const std::ptrdiff_t sz = static_cast<std::ptrdiff_t>(psi_.size());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < sz; ++i) {
    psi_[static_cast<index_t>(i)] = cplx{amp, 0.0};
  }
}

void GateStateVector::apply_1q(const std::array<cplx, 4>& u, int q) {
  check_qubit(q);
  const index_t stride = index_t{1} << q;
  const std::ptrdiff_t pairs = static_cast<std::ptrdiff_t>(psi_.size() / 2);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t t = 0; t < pairs; ++t) {
    // Index with a zero inserted at bit q.
    const index_t low = static_cast<index_t>(t) & (stride - 1);
    const index_t high = (static_cast<index_t>(t) >> q) << (q + 1);
    const index_t i0 = high | low;
    const index_t i1 = i0 | stride;
    const cplx a = psi_[i0];
    const cplx b = psi_[i1];
    psi_[i0] = u[0] * a + u[1] * b;
    psi_[i1] = u[2] * a + u[3] * b;
  }
}

void GateStateVector::apply_2q(const std::array<cplx, 16>& u, int q1, int q2) {
  check_qubit(q1);
  check_qubit(q2);
  FASTQAOA_CHECK(q1 != q2, "apply_2q: qubits must differ");
  const index_t s1 = index_t{1} << q1;
  const index_t s2 = index_t{1} << q2;
  const int lo = q1 < q2 ? q1 : q2;
  const int hi = q1 < q2 ? q2 : q1;
  const index_t slo = index_t{1} << lo;
  const index_t shi = index_t{1} << hi;
  const std::ptrdiff_t groups = static_cast<std::ptrdiff_t>(psi_.size() / 4);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t t = 0; t < groups; ++t) {
    // Insert zeros at bit positions lo and hi.
    index_t idx = static_cast<index_t>(t);
    const index_t a = idx & (slo - 1);
    idx >>= lo;
    const index_t b = idx & ((shi >> (lo + 1)) - 1);
    idx >>= (hi - lo - 1);
    const index_t base = (idx << (hi + 1)) | (b << (lo + 1)) | a;
    const index_t i00 = base;
    const index_t i01 = base | s1;        // q1 = 1
    const index_t i10 = base | s2;        // q2 = 1
    const index_t i11 = base | s1 | s2;
    const cplx v00 = psi_[i00];
    const cplx v01 = psi_[i01];
    const cplx v10 = psi_[i10];
    const cplx v11 = psi_[i11];
    psi_[i00] = u[0] * v00 + u[1] * v01 + u[2] * v10 + u[3] * v11;
    psi_[i01] = u[4] * v00 + u[5] * v01 + u[6] * v10 + u[7] * v11;
    psi_[i10] = u[8] * v00 + u[9] * v01 + u[10] * v10 + u[11] * v11;
    psi_[i11] = u[12] * v00 + u[13] * v01 + u[14] * v10 + u[15] * v11;
  }
}

void GateStateVector::apply_h(int q) {
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  apply_1q({cplx{inv_sqrt2, 0.0}, cplx{inv_sqrt2, 0.0}, cplx{inv_sqrt2, 0.0},
            cplx{-inv_sqrt2, 0.0}},
           q);
}

void GateStateVector::apply_rx(double theta, int q) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  apply_1q({cplx{c, 0.0}, cplx{0.0, -s}, cplx{0.0, -s}, cplx{c, 0.0}}, q);
}

void GateStateVector::apply_rz(double theta, int q) {
  check_qubit(q);
  const cplx phase0{std::cos(theta / 2.0), -std::sin(theta / 2.0)};
  const cplx phase1 = std::conj(phase0);
  const index_t mask = index_t{1} << q;
  const std::ptrdiff_t sz = static_cast<std::ptrdiff_t>(psi_.size());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < sz; ++i) {
    psi_[static_cast<index_t>(i)] *=
        (static_cast<index_t>(i) & mask) ? phase1 : phase0;
  }
}

void GateStateVector::apply_rzz(double theta, int q1, int q2) {
  check_qubit(q1);
  check_qubit(q2);
  FASTQAOA_CHECK(q1 != q2, "apply_rzz: qubits must differ");
  const cplx even{std::cos(theta / 2.0), -std::sin(theta / 2.0)};
  const cplx odd = std::conj(even);
  const index_t m1 = index_t{1} << q1;
  const index_t m2 = index_t{1} << q2;
  const std::ptrdiff_t sz = static_cast<std::ptrdiff_t>(psi_.size());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < sz; ++i) {
    const index_t x = static_cast<index_t>(i);
    const bool same = ((x & m1) != 0) == ((x & m2) != 0);
    psi_[x] *= same ? even : odd;
  }
}

void GateStateVector::apply_xy(double theta, int q1, int q2) {
  check_qubit(q1);
  check_qubit(q2);
  FASTQAOA_CHECK(q1 != q2, "apply_xy: qubits must differ");
  // exp(-i theta (XX+YY)/2) is a Givens rotation on the |01>,|10> block:
  // [[cos theta, -i sin theta], [-i sin theta, cos theta]].
  const double c = std::cos(theta);
  const cplx is{0.0, -std::sin(theta)};
  const index_t m1 = index_t{1} << q1;
  const index_t m2 = index_t{1} << q2;
  const std::ptrdiff_t sz = static_cast<std::ptrdiff_t>(psi_.size());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < sz; ++i) {
    const index_t x = static_cast<index_t>(i);
    // Touch each |01>,|10> pair once via its q1=1, q2=0 member.
    if ((x & m1) != 0 && (x & m2) == 0) {
      const index_t y = (x ^ m1) | m2;
      const cplx a = psi_[x];
      const cplx b = psi_[y];
      psi_[x] = c * a + is * b;
      psi_[y] = is * a + c * b;
    }
  }
}

double GateStateVector::expectation_zz(int q1, int q2) const {
  check_qubit(q1);
  check_qubit(q2);
  const index_t m1 = index_t{1} << q1;
  const index_t m2 = index_t{1} << q2;
  const std::ptrdiff_t sz = static_cast<std::ptrdiff_t>(psi_.size());
  double acc = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : acc)
  for (std::ptrdiff_t i = 0; i < sz; ++i) {
    const index_t x = static_cast<index_t>(i);
    const bool same = ((x & m1) != 0) == ((x & m2) != 0);
    const double p = std::norm(psi_[x]);
    acc += same ? p : -p;
  }
  return acc;
}

double GateStateVector::expectation_diag(const dvec& vals) const {
  FASTQAOA_CHECK(vals.size() == psi_.size(),
                 "expectation_diag: size mismatch");
  const std::ptrdiff_t sz = static_cast<std::ptrdiff_t>(psi_.size());
  double acc = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : acc)
  for (std::ptrdiff_t i = 0; i < sz; ++i) {
    acc += vals[static_cast<index_t>(i)] * std::norm(psi_[static_cast<index_t>(i)]);
  }
  return acc;
}

}  // namespace fastqaoa::baselines
