#pragma once
/// \file gate_sim.hpp
/// A general-purpose gate-level statevector simulator. This is the
/// *comparator substrate* for Fig. 4: QAOAKit hands QAOA circuits to Qiskit
/// and QAOA.jl hands them to Yao — both apply the ansatz gate by gate on the
/// full 2^n space. The packages in packages.hpp drive this simulator the way
/// those stacks do, so the measured gap against the precomputed fastQAOA
/// path reflects the paper's structural comparison on identical hardware.

#include <array>

#include "common/types.hpp"

namespace fastqaoa::baselines {

/// Full 2^n statevector with per-gate application kernels.
class GateStateVector {
 public:
  /// Initialize to |0...0>.
  explicit GateStateVector(int n);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] index_t dim() const noexcept { return psi_.size(); }
  [[nodiscard]] const cvec& state() const noexcept { return psi_; }
  [[nodiscard]] cvec& state() noexcept { return psi_; }

  /// Reset to |0...0>.
  void reset();
  /// Reset to the uniform superposition (H on every qubit, fused).
  void reset_uniform();

  /// Apply an arbitrary 2x2 unitary [[u00,u01],[u10,u11]] to qubit q.
  void apply_1q(const std::array<cplx, 4>& u, int q);

  /// Apply an arbitrary 4x4 unitary (row-major, basis |q2 q1> = |00>,|01>,
  /// |10>,|11> with q1 the low qubit) to qubits q1 != q2. This is the
  /// generic two-qubit path a circuit-object simulator uses.
  void apply_2q(const std::array<cplx, 16>& u, int q1, int q2);

  /// Specialized gates (the "light" comparator path):
  void apply_h(int q);
  /// RX(theta) = exp(-i theta X / 2).
  void apply_rx(double theta, int q);
  /// RZ(theta) = exp(-i theta Z / 2).
  void apply_rz(double theta, int q);
  /// RZZ(theta) = exp(-i theta Z⊗Z / 2) — diagonal, one fused pass.
  void apply_rzz(double theta, int q1, int q2);
  /// XY rotation exp(-i theta (XX + YY) / 2) — a Givens rotation on the
  /// |01>,|10> block (QOKit's Trotterized constrained-mixer primitive).
  void apply_xy(double theta, int q1, int q2);

  /// <psi| Z_q1 Z_q2 |psi> — the per-term Pauli expectation pass a
  /// circuit-based stack performs to measure a cost Hamiltonian.
  [[nodiscard]] double expectation_zz(int q1, int q2) const;

  /// <psi| diag(vals) |psi> for a precomputed diagonal (test cross-checks).
  [[nodiscard]] double expectation_diag(const dvec& vals) const;

 private:
  void check_qubit(int q) const;

  int n_;
  cvec psi_;
};

}  // namespace fastqaoa::baselines
