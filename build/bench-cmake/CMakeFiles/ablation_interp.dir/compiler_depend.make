# Empty compiler generated dependencies file for ablation_interp.
# This may be replaced when dependencies are built.
