file(REMOVE_RECURSE
  "../bench/ablation_interp"
  "../bench/ablation_interp.pdb"
  "CMakeFiles/ablation_interp.dir/ablation_interp.cpp.o"
  "CMakeFiles/ablation_interp.dir/ablation_interp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
