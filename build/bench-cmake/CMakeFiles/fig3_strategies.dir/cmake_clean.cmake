file(REMOVE_RECURSE
  "../bench/fig3_strategies"
  "../bench/fig3_strategies.pdb"
  "CMakeFiles/fig3_strategies.dir/fig3_strategies.cpp.o"
  "CMakeFiles/fig3_strategies.dir/fig3_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
