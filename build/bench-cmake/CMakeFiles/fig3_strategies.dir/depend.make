# Empty dependencies file for fig3_strategies.
# This may be replaced when dependencies are built.
