# Empty dependencies file for ablation_kernels.
# This may be replaced when dependencies are built.
