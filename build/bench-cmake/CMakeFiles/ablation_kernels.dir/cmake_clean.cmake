file(REMOVE_RECURSE
  "../bench/ablation_kernels"
  "../bench/ablation_kernels.pdb"
  "CMakeFiles/ablation_kernels.dir/ablation_kernels.cpp.o"
  "CMakeFiles/ablation_kernels.dir/ablation_kernels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
