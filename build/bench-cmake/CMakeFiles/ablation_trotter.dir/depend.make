# Empty dependencies file for ablation_trotter.
# This may be replaced when dependencies are built.
