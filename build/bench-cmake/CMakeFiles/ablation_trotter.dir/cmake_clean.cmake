file(REMOVE_RECURSE
  "../bench/ablation_trotter"
  "../bench/ablation_trotter.pdb"
  "CMakeFiles/ablation_trotter.dir/ablation_trotter.cpp.o"
  "CMakeFiles/ablation_trotter.dir/ablation_trotter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trotter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
