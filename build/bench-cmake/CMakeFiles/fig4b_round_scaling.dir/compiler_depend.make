# Empty compiler generated dependencies file for fig4b_round_scaling.
# This may be replaced when dependencies are built.
