file(REMOVE_RECURSE
  "../bench/fig4b_round_scaling"
  "../bench/fig4b_round_scaling.pdb"
  "CMakeFiles/fig4b_round_scaling.dir/fig4b_round_scaling.cpp.o"
  "CMakeFiles/fig4b_round_scaling.dir/fig4b_round_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_round_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
