# Empty compiler generated dependencies file for fig2_anglefinding.
# This may be replaced when dependencies are built.
