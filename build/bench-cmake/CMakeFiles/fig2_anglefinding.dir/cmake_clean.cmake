file(REMOVE_RECURSE
  "../bench/fig2_anglefinding"
  "../bench/fig2_anglefinding.pdb"
  "CMakeFiles/fig2_anglefinding.dir/fig2_anglefinding.cpp.o"
  "CMakeFiles/fig2_anglefinding.dir/fig2_anglefinding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_anglefinding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
