file(REMOVE_RECURSE
  "../bench/grover_scaling"
  "../bench/grover_scaling.pdb"
  "CMakeFiles/grover_scaling.dir/grover_scaling.cpp.o"
  "CMakeFiles/grover_scaling.dir/grover_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grover_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
