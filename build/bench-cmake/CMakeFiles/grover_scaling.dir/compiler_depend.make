# Empty compiler generated dependencies file for grover_scaling.
# This may be replaced when dependencies are built.
