# Empty compiler generated dependencies file for fig5_ad_vs_fd.
# This may be replaced when dependencies are built.
