file(REMOVE_RECURSE
  "../bench/fig5_ad_vs_fd"
  "../bench/fig5_ad_vs_fd.pdb"
  "CMakeFiles/fig5_ad_vs_fd.dir/fig5_ad_vs_fd.cpp.o"
  "CMakeFiles/fig5_ad_vs_fd.dir/fig5_ad_vs_fd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ad_vs_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
