file(REMOVE_RECURSE
  "../bench/fig4a_qubit_scaling"
  "../bench/fig4a_qubit_scaling.pdb"
  "CMakeFiles/fig4a_qubit_scaling.dir/fig4a_qubit_scaling.cpp.o"
  "CMakeFiles/fig4a_qubit_scaling.dir/fig4a_qubit_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_qubit_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
