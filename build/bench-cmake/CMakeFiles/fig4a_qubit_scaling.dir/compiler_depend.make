# Empty compiler generated dependencies file for fig4a_qubit_scaling.
# This may be replaced when dependencies are built.
