# Empty dependencies file for ablation_chebyshev.
# This may be replaced when dependencies are built.
