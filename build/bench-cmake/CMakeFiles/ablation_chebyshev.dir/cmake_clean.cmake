file(REMOVE_RECURSE
  "../bench/ablation_chebyshev"
  "../bench/ablation_chebyshev.pdb"
  "CMakeFiles/ablation_chebyshev.dir/ablation_chebyshev.cpp.o"
  "CMakeFiles/ablation_chebyshev.dir/ablation_chebyshev.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chebyshev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
