# Empty dependencies file for portfolio.
# This may be replaced when dependencies are built.
