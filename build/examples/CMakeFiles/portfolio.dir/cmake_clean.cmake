file(REMOVE_RECURSE
  "CMakeFiles/portfolio.dir/portfolio.cpp.o"
  "CMakeFiles/portfolio.dir/portfolio.cpp.o.d"
  "portfolio"
  "portfolio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portfolio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
