file(REMOVE_RECURSE
  "CMakeFiles/constrained_clique.dir/constrained_clique.cpp.o"
  "CMakeFiles/constrained_clique.dir/constrained_clique.cpp.o.d"
  "constrained_clique"
  "constrained_clique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constrained_clique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
