# Empty dependencies file for constrained_clique.
# This may be replaced when dependencies are built.
