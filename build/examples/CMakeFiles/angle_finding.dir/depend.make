# Empty dependencies file for angle_finding.
# This may be replaced when dependencies are built.
