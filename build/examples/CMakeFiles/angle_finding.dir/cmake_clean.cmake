file(REMOVE_RECURSE
  "CMakeFiles/angle_finding.dir/angle_finding.cpp.o"
  "CMakeFiles/angle_finding.dir/angle_finding.cpp.o.d"
  "angle_finding"
  "angle_finding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/angle_finding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
