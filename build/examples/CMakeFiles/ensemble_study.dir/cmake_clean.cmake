file(REMOVE_RECURSE
  "CMakeFiles/ensemble_study.dir/ensemble_study.cpp.o"
  "CMakeFiles/ensemble_study.dir/ensemble_study.cpp.o.d"
  "ensemble_study"
  "ensemble_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
