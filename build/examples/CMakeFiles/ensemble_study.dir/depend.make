# Empty dependencies file for ensemble_study.
# This may be replaced when dependencies are built.
