file(REMOVE_RECURSE
  "CMakeFiles/grover_search.dir/grover_search.cpp.o"
  "CMakeFiles/grover_search.dir/grover_search.cpp.o.d"
  "grover_search"
  "grover_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grover_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
