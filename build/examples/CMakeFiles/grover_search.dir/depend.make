# Empty dependencies file for grover_search.
# This may be replaced when dependencies are built.
