# Empty dependencies file for custom_problem.
# This may be replaced when dependencies are built.
