file(REMOVE_RECURSE
  "CMakeFiles/custom_problem.dir/custom_problem.cpp.o"
  "CMakeFiles/custom_problem.dir/custom_problem.cpp.o.d"
  "custom_problem"
  "custom_problem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
