file(REMOVE_RECURSE
  "CMakeFiles/entanglement_study.dir/entanglement_study.cpp.o"
  "CMakeFiles/entanglement_study.dir/entanglement_study.cpp.o.d"
  "entanglement_study"
  "entanglement_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entanglement_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
