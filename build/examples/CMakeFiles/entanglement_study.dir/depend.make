# Empty dependencies file for entanglement_study.
# This may be replaced when dependencies are built.
