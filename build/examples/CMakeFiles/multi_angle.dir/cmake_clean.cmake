file(REMOVE_RECURSE
  "CMakeFiles/multi_angle.dir/multi_angle.cpp.o"
  "CMakeFiles/multi_angle.dir/multi_angle.cpp.o.d"
  "multi_angle"
  "multi_angle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_angle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
