# Empty dependencies file for multi_angle.
# This may be replaced when dependencies are built.
