file(REMOVE_RECURSE
  "CMakeFiles/qaoa_cli.dir/qaoa_cli.cpp.o"
  "CMakeFiles/qaoa_cli.dir/qaoa_cli.cpp.o.d"
  "qaoa_cli"
  "qaoa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qaoa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
