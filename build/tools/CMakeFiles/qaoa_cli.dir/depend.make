# Empty dependencies file for qaoa_cli.
# This may be replaced when dependencies are built.
