# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[cli_maxcut_tf]=] "/root/repo/build/tools/qaoa_cli" "--problem=maxcut" "--mixer=tf" "--n=6" "--p=2" "--hops=2")
set_tests_properties([=[cli_maxcut_tf]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_densest_clique]=] "/root/repo/build/tools/qaoa_cli" "--problem=densest" "--mixer=clique" "--n=6" "--k=3" "--p=1" "--hops=2")
set_tests_properties([=[cli_densest_clique]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_ksat_grover_random]=] "/root/repo/build/tools/qaoa_cli" "--problem=ksat" "--mixer=grover" "--n=6" "--p=2" "--strategy=random" "--restarts=3")
set_tests_properties([=[cli_ksat_grover_random]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_partition_minimize_shots]=] "/root/repo/build/tools/qaoa_cli" "--problem=partition" "--mixer=tf" "--n=6" "--p=1" "--minimize" "--shots=500" "--hops=2")
set_tests_properties([=[cli_partition_minimize_shots]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_grid_strategy]=] "/root/repo/build/tools/qaoa_cli" "--problem=maxcut" "--mixer=ring" "--n=6" "--k=3" "--p=1" "--strategy=grid" "--grid-points=8")
set_tests_properties([=[cli_grid_strategy]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_rejects_bad_problem]=] "/root/repo/build/tools/qaoa_cli" "--problem=nonsense")
set_tests_properties([=[cli_rejects_bad_problem]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
