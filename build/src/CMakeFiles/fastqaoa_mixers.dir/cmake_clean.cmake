file(REMOVE_RECURSE
  "CMakeFiles/fastqaoa_mixers.dir/mixers/chebyshev_mixer.cpp.o"
  "CMakeFiles/fastqaoa_mixers.dir/mixers/chebyshev_mixer.cpp.o.d"
  "CMakeFiles/fastqaoa_mixers.dir/mixers/eigen_mixer.cpp.o"
  "CMakeFiles/fastqaoa_mixers.dir/mixers/eigen_mixer.cpp.o.d"
  "CMakeFiles/fastqaoa_mixers.dir/mixers/grover_mixer.cpp.o"
  "CMakeFiles/fastqaoa_mixers.dir/mixers/grover_mixer.cpp.o.d"
  "CMakeFiles/fastqaoa_mixers.dir/mixers/mixer.cpp.o"
  "CMakeFiles/fastqaoa_mixers.dir/mixers/mixer.cpp.o.d"
  "CMakeFiles/fastqaoa_mixers.dir/mixers/sparse_xy.cpp.o"
  "CMakeFiles/fastqaoa_mixers.dir/mixers/sparse_xy.cpp.o.d"
  "CMakeFiles/fastqaoa_mixers.dir/mixers/x_mixer.cpp.o"
  "CMakeFiles/fastqaoa_mixers.dir/mixers/x_mixer.cpp.o.d"
  "libfastqaoa_mixers.a"
  "libfastqaoa_mixers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastqaoa_mixers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
