# Empty dependencies file for fastqaoa_mixers.
# This may be replaced when dependencies are built.
