
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mixers/chebyshev_mixer.cpp" "src/CMakeFiles/fastqaoa_mixers.dir/mixers/chebyshev_mixer.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_mixers.dir/mixers/chebyshev_mixer.cpp.o.d"
  "/root/repo/src/mixers/eigen_mixer.cpp" "src/CMakeFiles/fastqaoa_mixers.dir/mixers/eigen_mixer.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_mixers.dir/mixers/eigen_mixer.cpp.o.d"
  "/root/repo/src/mixers/grover_mixer.cpp" "src/CMakeFiles/fastqaoa_mixers.dir/mixers/grover_mixer.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_mixers.dir/mixers/grover_mixer.cpp.o.d"
  "/root/repo/src/mixers/mixer.cpp" "src/CMakeFiles/fastqaoa_mixers.dir/mixers/mixer.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_mixers.dir/mixers/mixer.cpp.o.d"
  "/root/repo/src/mixers/sparse_xy.cpp" "src/CMakeFiles/fastqaoa_mixers.dir/mixers/sparse_xy.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_mixers.dir/mixers/sparse_xy.cpp.o.d"
  "/root/repo/src/mixers/x_mixer.cpp" "src/CMakeFiles/fastqaoa_mixers.dir/mixers/x_mixer.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_mixers.dir/mixers/x_mixer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastqaoa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_bits.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_graphs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
