file(REMOVE_RECURSE
  "libfastqaoa_mixers.a"
)
