file(REMOVE_RECURSE
  "CMakeFiles/fastqaoa_core.dir/core/grover_fast.cpp.o"
  "CMakeFiles/fastqaoa_core.dir/core/grover_fast.cpp.o.d"
  "CMakeFiles/fastqaoa_core.dir/core/multi_angle.cpp.o"
  "CMakeFiles/fastqaoa_core.dir/core/multi_angle.cpp.o.d"
  "CMakeFiles/fastqaoa_core.dir/core/qaoa.cpp.o"
  "CMakeFiles/fastqaoa_core.dir/core/qaoa.cpp.o.d"
  "libfastqaoa_core.a"
  "libfastqaoa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastqaoa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
