# Empty compiler generated dependencies file for fastqaoa_core.
# This may be replaced when dependencies are built.
