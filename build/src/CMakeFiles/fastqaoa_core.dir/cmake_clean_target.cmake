file(REMOVE_RECURSE
  "libfastqaoa_core.a"
)
