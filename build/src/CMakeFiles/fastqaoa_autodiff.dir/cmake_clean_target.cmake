file(REMOVE_RECURSE
  "libfastqaoa_autodiff.a"
)
