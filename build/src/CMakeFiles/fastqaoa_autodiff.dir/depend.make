# Empty dependencies file for fastqaoa_autodiff.
# This may be replaced when dependencies are built.
