file(REMOVE_RECURSE
  "CMakeFiles/fastqaoa_autodiff.dir/autodiff/adjoint.cpp.o"
  "CMakeFiles/fastqaoa_autodiff.dir/autodiff/adjoint.cpp.o.d"
  "CMakeFiles/fastqaoa_autodiff.dir/autodiff/finite_diff.cpp.o"
  "CMakeFiles/fastqaoa_autodiff.dir/autodiff/finite_diff.cpp.o.d"
  "libfastqaoa_autodiff.a"
  "libfastqaoa_autodiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastqaoa_autodiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
