file(REMOVE_RECURSE
  "CMakeFiles/fastqaoa_sat.dir/sat/cnf.cpp.o"
  "CMakeFiles/fastqaoa_sat.dir/sat/cnf.cpp.o.d"
  "libfastqaoa_sat.a"
  "libfastqaoa_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastqaoa_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
