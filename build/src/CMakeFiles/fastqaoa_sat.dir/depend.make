# Empty dependencies file for fastqaoa_sat.
# This may be replaced when dependencies are built.
