file(REMOVE_RECURSE
  "libfastqaoa_sat.a"
)
