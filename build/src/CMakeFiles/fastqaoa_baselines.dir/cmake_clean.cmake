file(REMOVE_RECURSE
  "CMakeFiles/fastqaoa_baselines.dir/baselines/circuit.cpp.o"
  "CMakeFiles/fastqaoa_baselines.dir/baselines/circuit.cpp.o.d"
  "CMakeFiles/fastqaoa_baselines.dir/baselines/gate_sim.cpp.o"
  "CMakeFiles/fastqaoa_baselines.dir/baselines/gate_sim.cpp.o.d"
  "CMakeFiles/fastqaoa_baselines.dir/baselines/packages.cpp.o"
  "CMakeFiles/fastqaoa_baselines.dir/baselines/packages.cpp.o.d"
  "CMakeFiles/fastqaoa_baselines.dir/baselines/trotter_mixer.cpp.o"
  "CMakeFiles/fastqaoa_baselines.dir/baselines/trotter_mixer.cpp.o.d"
  "libfastqaoa_baselines.a"
  "libfastqaoa_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastqaoa_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
