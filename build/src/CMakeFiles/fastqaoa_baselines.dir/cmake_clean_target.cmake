file(REMOVE_RECURSE
  "libfastqaoa_baselines.a"
)
