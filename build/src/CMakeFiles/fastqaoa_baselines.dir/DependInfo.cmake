
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/circuit.cpp" "src/CMakeFiles/fastqaoa_baselines.dir/baselines/circuit.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_baselines.dir/baselines/circuit.cpp.o.d"
  "/root/repo/src/baselines/gate_sim.cpp" "src/CMakeFiles/fastqaoa_baselines.dir/baselines/gate_sim.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_baselines.dir/baselines/gate_sim.cpp.o.d"
  "/root/repo/src/baselines/packages.cpp" "src/CMakeFiles/fastqaoa_baselines.dir/baselines/packages.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_baselines.dir/baselines/packages.cpp.o.d"
  "/root/repo/src/baselines/trotter_mixer.cpp" "src/CMakeFiles/fastqaoa_baselines.dir/baselines/trotter_mixer.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_baselines.dir/baselines/trotter_mixer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastqaoa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_bits.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_graphs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_mixers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
