# Empty dependencies file for fastqaoa_baselines.
# This may be replaced when dependencies are built.
