file(REMOVE_RECURSE
  "CMakeFiles/fastqaoa_pauli.dir/pauli/pauli_string.cpp.o"
  "CMakeFiles/fastqaoa_pauli.dir/pauli/pauli_string.cpp.o.d"
  "CMakeFiles/fastqaoa_pauli.dir/pauli/pauli_sum.cpp.o"
  "CMakeFiles/fastqaoa_pauli.dir/pauli/pauli_sum.cpp.o.d"
  "libfastqaoa_pauli.a"
  "libfastqaoa_pauli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastqaoa_pauli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
