# Empty compiler generated dependencies file for fastqaoa_pauli.
# This may be replaced when dependencies are built.
