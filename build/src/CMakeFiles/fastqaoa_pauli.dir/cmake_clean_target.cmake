file(REMOVE_RECURSE
  "libfastqaoa_pauli.a"
)
