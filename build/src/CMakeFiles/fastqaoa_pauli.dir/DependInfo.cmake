
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pauli/pauli_string.cpp" "src/CMakeFiles/fastqaoa_pauli.dir/pauli/pauli_string.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_pauli.dir/pauli/pauli_string.cpp.o.d"
  "/root/repo/src/pauli/pauli_sum.cpp" "src/CMakeFiles/fastqaoa_pauli.dir/pauli/pauli_sum.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_pauli.dir/pauli/pauli_sum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastqaoa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_bits.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_graphs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_mixers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
