file(REMOVE_RECURSE
  "CMakeFiles/fastqaoa_graphs.dir/graphs/graph.cpp.o"
  "CMakeFiles/fastqaoa_graphs.dir/graphs/graph.cpp.o.d"
  "libfastqaoa_graphs.a"
  "libfastqaoa_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastqaoa_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
