file(REMOVE_RECURSE
  "libfastqaoa_graphs.a"
)
