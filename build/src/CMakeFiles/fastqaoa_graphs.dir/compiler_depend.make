# Empty compiler generated dependencies file for fastqaoa_graphs.
# This may be replaced when dependencies are built.
