# Empty compiler generated dependencies file for fastqaoa_problems.
# This may be replaced when dependencies are built.
