file(REMOVE_RECURSE
  "libfastqaoa_problems.a"
)
