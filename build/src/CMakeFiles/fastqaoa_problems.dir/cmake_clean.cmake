file(REMOVE_RECURSE
  "CMakeFiles/fastqaoa_problems.dir/problems/cost_functions.cpp.o"
  "CMakeFiles/fastqaoa_problems.dir/problems/cost_functions.cpp.o.d"
  "CMakeFiles/fastqaoa_problems.dir/problems/objective.cpp.o"
  "CMakeFiles/fastqaoa_problems.dir/problems/objective.cpp.o.d"
  "CMakeFiles/fastqaoa_problems.dir/problems/state_space.cpp.o"
  "CMakeFiles/fastqaoa_problems.dir/problems/state_space.cpp.o.d"
  "CMakeFiles/fastqaoa_problems.dir/problems/warm_start.cpp.o"
  "CMakeFiles/fastqaoa_problems.dir/problems/warm_start.cpp.o.d"
  "libfastqaoa_problems.a"
  "libfastqaoa_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastqaoa_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
