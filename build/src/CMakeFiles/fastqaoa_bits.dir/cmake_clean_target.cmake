file(REMOVE_RECURSE
  "libfastqaoa_bits.a"
)
