file(REMOVE_RECURSE
  "CMakeFiles/fastqaoa_bits.dir/bits/combinatorics.cpp.o"
  "CMakeFiles/fastqaoa_bits.dir/bits/combinatorics.cpp.o.d"
  "libfastqaoa_bits.a"
  "libfastqaoa_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastqaoa_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
