# Empty compiler generated dependencies file for fastqaoa_bits.
# This may be replaced when dependencies are built.
