file(REMOVE_RECURSE
  "CMakeFiles/fastqaoa_io.dir/io/serialize.cpp.o"
  "CMakeFiles/fastqaoa_io.dir/io/serialize.cpp.o.d"
  "libfastqaoa_io.a"
  "libfastqaoa_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastqaoa_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
