file(REMOVE_RECURSE
  "libfastqaoa_io.a"
)
