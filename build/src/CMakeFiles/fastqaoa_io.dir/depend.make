# Empty dependencies file for fastqaoa_io.
# This may be replaced when dependencies are built.
