file(REMOVE_RECURSE
  "libfastqaoa_analysis.a"
)
