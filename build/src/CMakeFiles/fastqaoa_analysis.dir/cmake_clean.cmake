file(REMOVE_RECURSE
  "CMakeFiles/fastqaoa_analysis.dir/analysis/entanglement.cpp.o"
  "CMakeFiles/fastqaoa_analysis.dir/analysis/entanglement.cpp.o.d"
  "libfastqaoa_analysis.a"
  "libfastqaoa_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastqaoa_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
