# Empty compiler generated dependencies file for fastqaoa_analysis.
# This may be replaced when dependencies are built.
