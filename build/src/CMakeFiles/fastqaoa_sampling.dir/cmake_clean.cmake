file(REMOVE_RECURSE
  "CMakeFiles/fastqaoa_sampling.dir/sampling/sampler.cpp.o"
  "CMakeFiles/fastqaoa_sampling.dir/sampling/sampler.cpp.o.d"
  "libfastqaoa_sampling.a"
  "libfastqaoa_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastqaoa_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
