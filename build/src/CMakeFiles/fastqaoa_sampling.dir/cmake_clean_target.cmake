file(REMOVE_RECURSE
  "libfastqaoa_sampling.a"
)
