# Empty compiler generated dependencies file for fastqaoa_sampling.
# This may be replaced when dependencies are built.
