# Empty compiler generated dependencies file for fastqaoa_anglefind.
# This may be replaced when dependencies are built.
