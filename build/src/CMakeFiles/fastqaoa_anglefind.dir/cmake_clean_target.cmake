file(REMOVE_RECURSE
  "libfastqaoa_anglefind.a"
)
