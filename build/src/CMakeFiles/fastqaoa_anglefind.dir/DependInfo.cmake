
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anglefind/basinhopping.cpp" "src/CMakeFiles/fastqaoa_anglefind.dir/anglefind/basinhopping.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_anglefind.dir/anglefind/basinhopping.cpp.o.d"
  "/root/repo/src/anglefind/bfgs.cpp" "src/CMakeFiles/fastqaoa_anglefind.dir/anglefind/bfgs.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_anglefind.dir/anglefind/bfgs.cpp.o.d"
  "/root/repo/src/anglefind/grover_objective.cpp" "src/CMakeFiles/fastqaoa_anglefind.dir/anglefind/grover_objective.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_anglefind.dir/anglefind/grover_objective.cpp.o.d"
  "/root/repo/src/anglefind/nelder_mead.cpp" "src/CMakeFiles/fastqaoa_anglefind.dir/anglefind/nelder_mead.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_anglefind.dir/anglefind/nelder_mead.cpp.o.d"
  "/root/repo/src/anglefind/optimizer.cpp" "src/CMakeFiles/fastqaoa_anglefind.dir/anglefind/optimizer.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_anglefind.dir/anglefind/optimizer.cpp.o.d"
  "/root/repo/src/anglefind/qaoa_objective.cpp" "src/CMakeFiles/fastqaoa_anglefind.dir/anglefind/qaoa_objective.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_anglefind.dir/anglefind/qaoa_objective.cpp.o.d"
  "/root/repo/src/anglefind/strategies.cpp" "src/CMakeFiles/fastqaoa_anglefind.dir/anglefind/strategies.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_anglefind.dir/anglefind/strategies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastqaoa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_mixers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_bits.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_graphs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
