file(REMOVE_RECURSE
  "CMakeFiles/fastqaoa_anglefind.dir/anglefind/basinhopping.cpp.o"
  "CMakeFiles/fastqaoa_anglefind.dir/anglefind/basinhopping.cpp.o.d"
  "CMakeFiles/fastqaoa_anglefind.dir/anglefind/bfgs.cpp.o"
  "CMakeFiles/fastqaoa_anglefind.dir/anglefind/bfgs.cpp.o.d"
  "CMakeFiles/fastqaoa_anglefind.dir/anglefind/grover_objective.cpp.o"
  "CMakeFiles/fastqaoa_anglefind.dir/anglefind/grover_objective.cpp.o.d"
  "CMakeFiles/fastqaoa_anglefind.dir/anglefind/nelder_mead.cpp.o"
  "CMakeFiles/fastqaoa_anglefind.dir/anglefind/nelder_mead.cpp.o.d"
  "CMakeFiles/fastqaoa_anglefind.dir/anglefind/optimizer.cpp.o"
  "CMakeFiles/fastqaoa_anglefind.dir/anglefind/optimizer.cpp.o.d"
  "CMakeFiles/fastqaoa_anglefind.dir/anglefind/qaoa_objective.cpp.o"
  "CMakeFiles/fastqaoa_anglefind.dir/anglefind/qaoa_objective.cpp.o.d"
  "CMakeFiles/fastqaoa_anglefind.dir/anglefind/strategies.cpp.o"
  "CMakeFiles/fastqaoa_anglefind.dir/anglefind/strategies.cpp.o.d"
  "libfastqaoa_anglefind.a"
  "libfastqaoa_anglefind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastqaoa_anglefind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
