src/CMakeFiles/fastqaoa_common.dir/common/version.cpp.o: \
 /root/repo/src/common/version.cpp /usr/include/stdc-predef.h \
 /root/repo/src/common/version.hpp
