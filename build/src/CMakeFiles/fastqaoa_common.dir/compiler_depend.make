# Empty compiler generated dependencies file for fastqaoa_common.
# This may be replaced when dependencies are built.
