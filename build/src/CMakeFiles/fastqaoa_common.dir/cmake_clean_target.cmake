file(REMOVE_RECURSE
  "libfastqaoa_common.a"
)
