file(REMOVE_RECURSE
  "CMakeFiles/fastqaoa_common.dir/common/version.cpp.o"
  "CMakeFiles/fastqaoa_common.dir/common/version.cpp.o.d"
  "libfastqaoa_common.a"
  "libfastqaoa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastqaoa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
