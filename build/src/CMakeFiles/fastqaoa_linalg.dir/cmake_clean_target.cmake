file(REMOVE_RECURSE
  "libfastqaoa_linalg.a"
)
