# Empty dependencies file for fastqaoa_linalg.
# This may be replaced when dependencies are built.
