
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/dense.cpp" "src/CMakeFiles/fastqaoa_linalg.dir/linalg/dense.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_linalg.dir/linalg/dense.cpp.o.d"
  "/root/repo/src/linalg/eigen_herm.cpp" "src/CMakeFiles/fastqaoa_linalg.dir/linalg/eigen_herm.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_linalg.dir/linalg/eigen_herm.cpp.o.d"
  "/root/repo/src/linalg/eigen_sym.cpp" "src/CMakeFiles/fastqaoa_linalg.dir/linalg/eigen_sym.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_linalg.dir/linalg/eigen_sym.cpp.o.d"
  "/root/repo/src/linalg/lanczos.cpp" "src/CMakeFiles/fastqaoa_linalg.dir/linalg/lanczos.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_linalg.dir/linalg/lanczos.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/CMakeFiles/fastqaoa_linalg.dir/linalg/vector_ops.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_linalg.dir/linalg/vector_ops.cpp.o.d"
  "/root/repo/src/linalg/wht.cpp" "src/CMakeFiles/fastqaoa_linalg.dir/linalg/wht.cpp.o" "gcc" "src/CMakeFiles/fastqaoa_linalg.dir/linalg/wht.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastqaoa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_bits.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
