file(REMOVE_RECURSE
  "CMakeFiles/fastqaoa_linalg.dir/linalg/dense.cpp.o"
  "CMakeFiles/fastqaoa_linalg.dir/linalg/dense.cpp.o.d"
  "CMakeFiles/fastqaoa_linalg.dir/linalg/eigen_herm.cpp.o"
  "CMakeFiles/fastqaoa_linalg.dir/linalg/eigen_herm.cpp.o.d"
  "CMakeFiles/fastqaoa_linalg.dir/linalg/eigen_sym.cpp.o"
  "CMakeFiles/fastqaoa_linalg.dir/linalg/eigen_sym.cpp.o.d"
  "CMakeFiles/fastqaoa_linalg.dir/linalg/lanczos.cpp.o"
  "CMakeFiles/fastqaoa_linalg.dir/linalg/lanczos.cpp.o.d"
  "CMakeFiles/fastqaoa_linalg.dir/linalg/vector_ops.cpp.o"
  "CMakeFiles/fastqaoa_linalg.dir/linalg/vector_ops.cpp.o.d"
  "CMakeFiles/fastqaoa_linalg.dir/linalg/wht.cpp.o"
  "CMakeFiles/fastqaoa_linalg.dir/linalg/wht.cpp.o.d"
  "libfastqaoa_linalg.a"
  "libfastqaoa_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastqaoa_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
