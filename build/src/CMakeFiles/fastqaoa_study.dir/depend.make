# Empty dependencies file for fastqaoa_study.
# This may be replaced when dependencies are built.
