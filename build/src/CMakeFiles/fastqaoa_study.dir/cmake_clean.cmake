file(REMOVE_RECURSE
  "CMakeFiles/fastqaoa_study.dir/study/ensemble.cpp.o"
  "CMakeFiles/fastqaoa_study.dir/study/ensemble.cpp.o.d"
  "CMakeFiles/fastqaoa_study.dir/study/stats.cpp.o"
  "CMakeFiles/fastqaoa_study.dir/study/stats.cpp.o.d"
  "libfastqaoa_study.a"
  "libfastqaoa_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastqaoa_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
