file(REMOVE_RECURSE
  "libfastqaoa_study.a"
)
