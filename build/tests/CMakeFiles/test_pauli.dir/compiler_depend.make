# Empty compiler generated dependencies file for test_pauli.
# This may be replaced when dependencies are built.
