file(REMOVE_RECURSE
  "CMakeFiles/test_pauli.dir/test_pauli.cpp.o"
  "CMakeFiles/test_pauli.dir/test_pauli.cpp.o.d"
  "test_pauli"
  "test_pauli.pdb"
  "test_pauli[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pauli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
