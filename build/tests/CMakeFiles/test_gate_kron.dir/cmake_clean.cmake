file(REMOVE_RECURSE
  "CMakeFiles/test_gate_kron.dir/test_gate_kron.cpp.o"
  "CMakeFiles/test_gate_kron.dir/test_gate_kron.cpp.o.d"
  "test_gate_kron"
  "test_gate_kron.pdb"
  "test_gate_kron[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gate_kron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
