# Empty compiler generated dependencies file for test_gate_kron.
# This may be replaced when dependencies are built.
