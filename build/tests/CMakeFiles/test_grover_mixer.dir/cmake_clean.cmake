file(REMOVE_RECURSE
  "CMakeFiles/test_grover_mixer.dir/test_grover_mixer.cpp.o"
  "CMakeFiles/test_grover_mixer.dir/test_grover_mixer.cpp.o.d"
  "test_grover_mixer"
  "test_grover_mixer.pdb"
  "test_grover_mixer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grover_mixer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
