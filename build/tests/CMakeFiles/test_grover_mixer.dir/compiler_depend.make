# Empty compiler generated dependencies file for test_grover_mixer.
# This may be replaced when dependencies are built.
