# Empty compiler generated dependencies file for test_eigen_mixer.
# This may be replaced when dependencies are built.
