file(REMOVE_RECURSE
  "CMakeFiles/test_eigen_mixer.dir/test_eigen_mixer.cpp.o"
  "CMakeFiles/test_eigen_mixer.dir/test_eigen_mixer.cpp.o.d"
  "test_eigen_mixer"
  "test_eigen_mixer.pdb"
  "test_eigen_mixer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eigen_mixer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
