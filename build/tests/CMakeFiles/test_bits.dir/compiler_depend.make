# Empty compiler generated dependencies file for test_bits.
# This may be replaced when dependencies are built.
