# Empty dependencies file for test_warm_start.
# This may be replaced when dependencies are built.
