file(REMOVE_RECURSE
  "CMakeFiles/test_warm_start.dir/test_warm_start.cpp.o"
  "CMakeFiles/test_warm_start.dir/test_warm_start.cpp.o.d"
  "test_warm_start"
  "test_warm_start.pdb"
  "test_warm_start[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_warm_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
