# Empty compiler generated dependencies file for test_graphs.
# This may be replaced when dependencies are built.
