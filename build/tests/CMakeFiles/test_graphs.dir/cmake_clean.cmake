file(REMOVE_RECURSE
  "CMakeFiles/test_graphs.dir/test_graphs.cpp.o"
  "CMakeFiles/test_graphs.dir/test_graphs.cpp.o.d"
  "test_graphs"
  "test_graphs.pdb"
  "test_graphs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
