# Empty compiler generated dependencies file for test_qaoa.
# This may be replaced when dependencies are built.
