file(REMOVE_RECURSE
  "CMakeFiles/test_qaoa.dir/test_qaoa.cpp.o"
  "CMakeFiles/test_qaoa.dir/test_qaoa.cpp.o.d"
  "test_qaoa"
  "test_qaoa.pdb"
  "test_qaoa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qaoa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
