# Empty compiler generated dependencies file for test_trotter.
# This may be replaced when dependencies are built.
