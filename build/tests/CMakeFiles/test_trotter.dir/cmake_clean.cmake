file(REMOVE_RECURSE
  "CMakeFiles/test_trotter.dir/test_trotter.cpp.o"
  "CMakeFiles/test_trotter.dir/test_trotter.cpp.o.d"
  "test_trotter"
  "test_trotter.pdb"
  "test_trotter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trotter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
