# Empty dependencies file for test_optimizers.
# This may be replaced when dependencies are built.
