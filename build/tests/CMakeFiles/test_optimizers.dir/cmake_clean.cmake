file(REMOVE_RECURSE
  "CMakeFiles/test_optimizers.dir/test_optimizers.cpp.o"
  "CMakeFiles/test_optimizers.dir/test_optimizers.cpp.o.d"
  "test_optimizers"
  "test_optimizers.pdb"
  "test_optimizers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
