file(REMOVE_RECURSE
  "CMakeFiles/test_grover_fast.dir/test_grover_fast.cpp.o"
  "CMakeFiles/test_grover_fast.dir/test_grover_fast.cpp.o.d"
  "test_grover_fast"
  "test_grover_fast.pdb"
  "test_grover_fast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grover_fast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
