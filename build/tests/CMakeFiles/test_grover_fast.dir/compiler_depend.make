# Empty compiler generated dependencies file for test_grover_fast.
# This may be replaced when dependencies are built.
