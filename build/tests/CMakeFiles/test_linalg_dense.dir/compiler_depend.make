# Empty compiler generated dependencies file for test_linalg_dense.
# This may be replaced when dependencies are built.
