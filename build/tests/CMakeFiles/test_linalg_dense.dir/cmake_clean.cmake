file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_dense.dir/test_linalg_dense.cpp.o"
  "CMakeFiles/test_linalg_dense.dir/test_linalg_dense.cpp.o.d"
  "test_linalg_dense"
  "test_linalg_dense.pdb"
  "test_linalg_dense[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
