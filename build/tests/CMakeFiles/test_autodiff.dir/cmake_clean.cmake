file(REMOVE_RECURSE
  "CMakeFiles/test_autodiff.dir/test_autodiff.cpp.o"
  "CMakeFiles/test_autodiff.dir/test_autodiff.cpp.o.d"
  "test_autodiff"
  "test_autodiff.pdb"
  "test_autodiff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autodiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
