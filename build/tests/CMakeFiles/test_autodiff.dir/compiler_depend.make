# Empty compiler generated dependencies file for test_autodiff.
# This may be replaced when dependencies are built.
