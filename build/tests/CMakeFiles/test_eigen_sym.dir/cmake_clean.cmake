file(REMOVE_RECURSE
  "CMakeFiles/test_eigen_sym.dir/test_eigen_sym.cpp.o"
  "CMakeFiles/test_eigen_sym.dir/test_eigen_sym.cpp.o.d"
  "test_eigen_sym"
  "test_eigen_sym.pdb"
  "test_eigen_sym[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eigen_sym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
