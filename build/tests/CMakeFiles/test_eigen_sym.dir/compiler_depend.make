# Empty compiler generated dependencies file for test_eigen_sym.
# This may be replaced when dependencies are built.
