file(REMOVE_RECURSE
  "CMakeFiles/test_problems.dir/test_problems.cpp.o"
  "CMakeFiles/test_problems.dir/test_problems.cpp.o.d"
  "test_problems"
  "test_problems.pdb"
  "test_problems[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
