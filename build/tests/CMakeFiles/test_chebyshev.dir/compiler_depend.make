# Empty compiler generated dependencies file for test_chebyshev.
# This may be replaced when dependencies are built.
