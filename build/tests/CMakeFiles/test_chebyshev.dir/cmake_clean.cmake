file(REMOVE_RECURSE
  "CMakeFiles/test_chebyshev.dir/test_chebyshev.cpp.o"
  "CMakeFiles/test_chebyshev.dir/test_chebyshev.cpp.o.d"
  "test_chebyshev"
  "test_chebyshev.pdb"
  "test_chebyshev[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chebyshev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
