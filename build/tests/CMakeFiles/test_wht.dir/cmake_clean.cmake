file(REMOVE_RECURSE
  "CMakeFiles/test_wht.dir/test_wht.cpp.o"
  "CMakeFiles/test_wht.dir/test_wht.cpp.o.d"
  "test_wht"
  "test_wht.pdb"
  "test_wht[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
