# Empty dependencies file for test_wht.
# This may be replaced when dependencies are built.
