file(REMOVE_RECURSE
  "CMakeFiles/test_study.dir/test_study.cpp.o"
  "CMakeFiles/test_study.dir/test_study.cpp.o.d"
  "test_study"
  "test_study.pdb"
  "test_study[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
