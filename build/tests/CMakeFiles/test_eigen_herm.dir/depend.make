# Empty dependencies file for test_eigen_herm.
# This may be replaced when dependencies are built.
