file(REMOVE_RECURSE
  "CMakeFiles/test_eigen_herm.dir/test_eigen_herm.cpp.o"
  "CMakeFiles/test_eigen_herm.dir/test_eigen_herm.cpp.o.d"
  "test_eigen_herm"
  "test_eigen_herm.pdb"
  "test_eigen_herm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eigen_herm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
