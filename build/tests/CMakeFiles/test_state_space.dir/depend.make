# Empty dependencies file for test_state_space.
# This may be replaced when dependencies are built.
