file(REMOVE_RECURSE
  "CMakeFiles/test_state_space.dir/test_state_space.cpp.o"
  "CMakeFiles/test_state_space.dir/test_state_space.cpp.o.d"
  "test_state_space"
  "test_state_space.pdb"
  "test_state_space[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
