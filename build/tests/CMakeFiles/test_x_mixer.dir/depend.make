# Empty dependencies file for test_x_mixer.
# This may be replaced when dependencies are built.
