file(REMOVE_RECURSE
  "CMakeFiles/test_x_mixer.dir/test_x_mixer.cpp.o"
  "CMakeFiles/test_x_mixer.dir/test_x_mixer.cpp.o.d"
  "test_x_mixer"
  "test_x_mixer.pdb"
  "test_x_mixer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_x_mixer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
