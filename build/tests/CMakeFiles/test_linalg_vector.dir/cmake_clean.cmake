file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_vector.dir/test_linalg_vector.cpp.o"
  "CMakeFiles/test_linalg_vector.dir/test_linalg_vector.cpp.o.d"
  "test_linalg_vector"
  "test_linalg_vector.pdb"
  "test_linalg_vector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
