# Empty dependencies file for test_linalg_vector.
# This may be replaced when dependencies are built.
