
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_linalg_vector.cpp" "tests/CMakeFiles/test_linalg_vector.dir/test_linalg_vector.cpp.o" "gcc" "tests/CMakeFiles/test_linalg_vector.dir/test_linalg_vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastqaoa_pauli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_study.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_anglefind.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_mixers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_graphs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_bits.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastqaoa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
