file(REMOVE_RECURSE
  "CMakeFiles/test_sampling.dir/test_sampling.cpp.o"
  "CMakeFiles/test_sampling.dir/test_sampling.cpp.o.d"
  "test_sampling"
  "test_sampling.pdb"
  "test_sampling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
