// Exhaustive gate-kernel verification against explicit Kronecker-product
// reference matrices: every qubit position and every ordered qubit pair of
// the gate simulator is checked against dense linear algebra.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "baselines/gate_sim.hpp"
#include "common/rng.hpp"
#include "linalg/eigen_herm.hpp"
#include "linalg/vector_ops.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

using baselines::GateStateVector;

/// Dense n-qubit operator of a 1-qubit gate u on qubit q (Kronecker
/// embedding built element-wise).
linalg::cmat embed_1q(const std::array<cplx, 4>& u, int q, int n) {
  const index_t dim = index_t{1} << n;
  linalg::cmat m(dim, dim);
  for (index_t col = 0; col < dim; ++col) {
    const int b = static_cast<int>((col >> q) & 1);
    for (int r = 0; r < 2; ++r) {
      const index_t row = (col & ~(index_t{1} << q)) |
                          (static_cast<index_t>(r) << q);
      m(row, col) += u[static_cast<std::size_t>(2 * r + b)];
    }
  }
  return m;
}

/// Dense n-qubit operator of a 2-qubit gate (basis |q2 q1>) on (q1, q2).
linalg::cmat embed_2q(const std::array<cplx, 16>& u, int q1, int q2, int n) {
  const index_t dim = index_t{1} << n;
  linalg::cmat m(dim, dim);
  for (index_t col = 0; col < dim; ++col) {
    const int in = static_cast<int>(((col >> q2) & 1) * 2 + ((col >> q1) & 1));
    for (int out = 0; out < 4; ++out) {
      index_t row = col & ~((index_t{1} << q1) | (index_t{1} << q2));
      row |= static_cast<index_t>(out & 1) << q1;
      row |= static_cast<index_t>((out >> 1) & 1) << q2;
      m(row, col) += u[static_cast<std::size_t>(4 * out + in)];
    }
  }
  return m;
}

/// A random 2x2 unitary via the exponential of a random Hermitian.
std::array<cplx, 4> random_1q_unitary(Rng& rng) {
  linalg::cmat h = linalg::hermitize(linalg::random_cmatrix(2, 2, rng));
  linalg::cmat u = testutil::exp_minus_i_beta(h, 1.0);
  return {u(0, 0), u(0, 1), u(1, 0), u(1, 1)};
}

/// A random 4x4 unitary the same way.
std::array<cplx, 16> random_2q_unitary(Rng& rng) {
  linalg::cmat h = linalg::hermitize(linalg::random_cmatrix(4, 4, rng));
  linalg::cmat u = testutil::exp_minus_i_beta(h, 1.0);
  std::array<cplx, 16> out;
  for (index_t r = 0; r < 4; ++r) {
    for (index_t c = 0; c < 4; ++c) out[4 * r + c] = u(r, c);
  }
  return out;
}

TEST(GateKron, Apply1qMatchesEmbeddingOnEveryQubit) {
  const int n = 5;
  Rng rng(1);
  for (int q = 0; q < n; ++q) {
    const auto u = random_1q_unitary(rng);
    GateStateVector sv(n);
    cvec psi = testutil::random_state(index_t{1} << n, rng);
    sv.state() = psi;
    sv.apply_1q(u, q);
    cvec expected = testutil::matvec(embed_1q(u, q, n), psi);
    EXPECT_LT(testutil::max_diff(sv.state(), expected), 1e-11)
        << "qubit " << q;
  }
}

TEST(GateKron, Apply2qMatchesEmbeddingOnEveryOrderedPair) {
  const int n = 4;
  Rng rng(2);
  for (int q1 = 0; q1 < n; ++q1) {
    for (int q2 = 0; q2 < n; ++q2) {
      if (q1 == q2) continue;
      const auto u = random_2q_unitary(rng);
      GateStateVector sv(n);
      cvec psi = testutil::random_state(index_t{1} << n, rng);
      sv.state() = psi;
      sv.apply_2q(u, q1, q2);
      cvec expected = testutil::matvec(embed_2q(u, q1, q2, n), psi);
      EXPECT_LT(testutil::max_diff(sv.state(), expected), 1e-11)
          << "pair (" << q1 << "," << q2 << ")";
    }
  }
}

TEST(GateKron, NamedGatesMatchTheirMatrices) {
  const int n = 3;
  Rng rng(3);
  const double theta = 0.83;

  // RX.
  {
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    const std::array<cplx, 4> rx = {cplx{c, 0}, cplx{0, -s}, cplx{0, -s},
                                    cplx{c, 0}};
    for (int q = 0; q < n; ++q) {
      GateStateVector sv(n);
      cvec psi = testutil::random_state(8, rng);
      sv.state() = psi;
      sv.apply_rx(theta, q);
      cvec expected = testutil::matvec(embed_1q(rx, q, n), psi);
      EXPECT_LT(testutil::max_diff(sv.state(), expected), 1e-12);
    }
  }
  // RZ.
  {
    const cplx p0{std::cos(theta / 2.0), -std::sin(theta / 2.0)};
    const std::array<cplx, 4> rz = {p0, cplx{0, 0}, cplx{0, 0},
                                    std::conj(p0)};
    GateStateVector sv(n);
    cvec psi = testutil::random_state(8, rng);
    sv.state() = psi;
    sv.apply_rz(theta, 1);
    cvec expected = testutil::matvec(embed_1q(rz, 1, n), psi);
    EXPECT_LT(testutil::max_diff(sv.state(), expected), 1e-12);
  }
  // RZZ via its 4x4 diagonal matrix.
  {
    const cplx even{std::cos(theta / 2.0), -std::sin(theta / 2.0)};
    const cplx odd = std::conj(even);
    std::array<cplx, 16> rzz{};
    rzz[0] = even;
    rzz[5] = odd;
    rzz[10] = odd;
    rzz[15] = even;
    GateStateVector sv(n);
    cvec psi = testutil::random_state(8, rng);
    sv.state() = psi;
    sv.apply_rzz(theta, 0, 2);
    cvec expected = testutil::matvec(embed_2q(rzz, 0, 2, n), psi);
    EXPECT_LT(testutil::max_diff(sv.state(), expected), 1e-12);
  }
  // XY rotation via its Givens block.
  {
    const double c = std::cos(theta);
    const cplx is{0.0, -std::sin(theta)};
    std::array<cplx, 16> xy{};
    xy[0] = cplx{1, 0};
    xy[5] = cplx{c, 0};
    xy[6] = is;
    xy[9] = is;
    xy[10] = cplx{c, 0};
    xy[15] = cplx{1, 0};
    GateStateVector sv(n);
    cvec psi = testutil::random_state(8, rng);
    sv.state() = psi;
    sv.apply_xy(theta, 0, 1);
    cvec expected = testutil::matvec(embed_2q(xy, 0, 1, n), psi);
    EXPECT_LT(testutil::max_diff(sv.state(), expected), 1e-12);
  }
}

TEST(GateKron, UnitarityPreservedUnderLongRandomCircuits) {
  Rng rng(4);
  const int n = 6;
  GateStateVector sv(n);
  sv.reset_uniform();
  for (int step = 0; step < 50; ++step) {
    const int q1 = static_cast<int>(rng.bounded(n));
    int q2 = static_cast<int>(rng.bounded(n));
    while (q2 == q1) q2 = static_cast<int>(rng.bounded(n));
    switch (rng.bounded(4)) {
      case 0:
        sv.apply_1q(random_1q_unitary(rng), q1);
        break;
      case 1:
        sv.apply_2q(random_2q_unitary(rng), q1, q2);
        break;
      case 2:
        sv.apply_rzz(rng.uniform(-2.0, 2.0), q1, q2);
        break;
      default:
        sv.apply_xy(rng.uniform(-2.0, 2.0), q1, q2);
        break;
    }
  }
  EXPECT_NEAR(linalg::norm(sv.state()), 1.0, 1e-10);
}

}  // namespace
}  // namespace fastqaoa
