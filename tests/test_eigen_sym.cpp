// Unit tests for the from-scratch real-symmetric eigensolver (Householder
// tridiagonalization + implicit-shift QL).

#include <gtest/gtest.h>

#include <algorithm>
#include "bits/combinatorics.hpp"
#include <cmath>

#include "common/rng.hpp"
#include "linalg/dense.hpp"
#include "linalg/eigen_sym.hpp"

namespace fastqaoa {
namespace {

using linalg::dmat;
using linalg::eig_residual;
using linalg::eigh;
using linalg::eigvalsh;
using linalg::SymEig;

void expect_orthonormal_columns(const dmat& v, double tol = 1e-10) {
  const index_t n = v.rows();
  for (index_t a = 0; a < n; ++a) {
    for (index_t b = a; b < n; ++b) {
      double d = 0.0;
      for (index_t r = 0; r < n; ++r) d += v(r, a) * v(r, b);
      EXPECT_NEAR(d, a == b ? 1.0 : 0.0, tol) << "columns " << a << "," << b;
    }
  }
}

TEST(EigSym, DiagonalMatrix) {
  dmat a = {{3.0, 0.0, 0.0}, {0.0, -1.0, 0.0}, {0.0, 0.0, 2.0}};
  SymEig e = eigh(a);
  EXPECT_NEAR(e.eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[2], 3.0, 1e-12);
  EXPECT_LT(eig_residual(a, e), 1e-12);
}

TEST(EigSym, TwoByTwoKnownValues) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  dmat a = {{2.0, 1.0}, {1.0, 2.0}};
  SymEig e = eigh(a);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], 3.0, 1e-12);
  expect_orthonormal_columns(e.vectors);
}

TEST(EigSym, OneByOne) {
  dmat a = {{7.5}};
  SymEig e = eigh(a);
  EXPECT_NEAR(e.eigenvalues[0], 7.5, 1e-14);
  EXPECT_NEAR(std::abs(e.vectors(0, 0)), 1.0, 1e-14);
}

TEST(EigSym, DegenerateEigenvalues) {
  // 4x4 with eigenvalue 2 three times and 6 once (projector structure).
  // A = 2 I + 4 u u^T with u = (1,1,1,1)/2.
  dmat a(4, 4);
  for (index_t r = 0; r < 4; ++r) {
    for (index_t c = 0; c < 4; ++c) a(r, c) = 1.0 + (r == c ? 2.0 : 0.0);
  }
  SymEig e = eigh(a);
  EXPECT_NEAR(e.eigenvalues[0], 2.0, 1e-10);
  EXPECT_NEAR(e.eigenvalues[1], 2.0, 1e-10);
  EXPECT_NEAR(e.eigenvalues[2], 2.0, 1e-10);
  EXPECT_NEAR(e.eigenvalues[3], 6.0, 1e-10);
  EXPECT_LT(eig_residual(a, e), 1e-10);
  expect_orthonormal_columns(e.vectors);
}

TEST(EigSym, TraceAndSumOfEigenvaluesAgree) {
  Rng rng(1);
  const dmat a = linalg::symmetrize(linalg::random_matrix(20, 20, rng));
  SymEig e = eigh(a);
  double trace = 0.0;
  for (index_t i = 0; i < 20; ++i) trace += a(i, i);
  double sum = 0.0;
  for (const double w : e.eigenvalues) sum += w;
  EXPECT_NEAR(trace, sum, 1e-9);
}

class EigSymRandom : public ::testing::TestWithParam<int> {};

TEST_P(EigSymRandom, ResidualAndOrthonormality) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 7919);
  const dmat a = linalg::symmetrize(
      linalg::random_matrix(static_cast<index_t>(n), static_cast<index_t>(n),
                            rng));
  SymEig e = eigh(a);
  // Sorted ascending.
  EXPECT_TRUE(std::is_sorted(e.eigenvalues.begin(), e.eigenvalues.end()));
  EXPECT_LT(eig_residual(a, e), 1e-9 * std::max(1, n));
  expect_orthonormal_columns(e.vectors, 1e-9);
  // Eigenvalues-only path agrees.
  dvec vals = eigvalsh(a);
  for (index_t i = 0; i < vals.size(); ++i) {
    EXPECT_NEAR(vals[i], e.eigenvalues[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigSymRandom,
                         ::testing::Values(2, 3, 5, 8, 16, 33, 64, 100));

TEST(EigSym, TridiagonalMatrixKnownSpectrum) {
  // The n x n tridiagonal (-1, 2, -1) matrix has eigenvalues
  // 2 - 2 cos(k pi / (n+1)), k = 1..n (discrete Laplacian).
  const int n = 12;
  dmat a(n, n);
  for (int i = 0; i < n; ++i) {
    a(i, i) = 2.0;
    if (i + 1 < n) {
      a(i, i + 1) = -1.0;
      a(i + 1, i) = -1.0;
    }
  }
  SymEig e = eigh(a);
  for (int k = 1; k <= n; ++k) {
    const double expected = 2.0 - 2.0 * std::cos(k * kPi / (n + 1));
    EXPECT_NEAR(e.eigenvalues[static_cast<index_t>(k - 1)], expected, 1e-10);
  }
}

TEST(EigSym, UsesLowerTriangleViaSymmetrization) {
  // Asymmetric input is symmetrized; eigh(A) == eigh((A + A^T)/2).
  Rng rng(5);
  const dmat a = linalg::random_matrix(6, 6, rng);
  SymEig e1 = eigh(a);
  SymEig e2 = eigh(linalg::symmetrize(a));
  for (index_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(e1.eigenvalues[i], e2.eigenvalues[i], 1e-11);
  }
}

TEST(EigSym, HypercubeAdjacencyWithMassiveDegeneracy) {
  // Regression: the n-cube adjacency matrix has eigenvalue n-2m with
  // multiplicity C(n,m); the huge zero cluster stalled the purely relative
  // deflation test until an absolute eps*||T|| threshold was added.
  const int n = 8;
  const index_t dim = index_t{1} << n;
  dmat h(dim, dim);
  for (index_t x = 0; x < dim; ++x) {
    for (int q = 0; q < n; ++q) h(x ^ (index_t{1} << q), x) += 1.0;
  }
  SymEig e = eigh(h);
  EXPECT_LT(eig_residual(h, e), 1e-10);
  // Spectrum check: eigenvalues are n - 2m with multiplicity C(n, m).
  index_t idx = 0;
  for (int m = n; m >= 0; --m) {  // ascending eigenvalue order
    const double expected = static_cast<double>(n - 2 * m);
    const auto mult = static_cast<index_t>(binomial(n, m));
    for (index_t j = 0; j < mult; ++j) {
      ASSERT_LT(idx, dim);
      EXPECT_NEAR(e.eigenvalues[idx], expected, 1e-9);
      ++idx;
    }
  }
}

TEST(EigSym, NonSquareThrows) {
  dmat a(3, 4);
  EXPECT_THROW(eigh(a), Error);
  EXPECT_THROW(eigvalsh(a), Error);
}

TEST(EigSym, ZeroMatrix) {
  dmat a(5, 5);
  SymEig e = eigh(a);
  for (const double w : e.eigenvalues) EXPECT_NEAR(w, 0.0, 1e-14);
  expect_orthonormal_columns(e.vectors);
}

}  // namespace
}  // namespace fastqaoa
