// Tests for the matrix-free Chebyshev mixer: must match the exact
// eigendecomposition mixer to the requested tolerance while never
// materializing a dense matrix.

#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/adjoint.hpp"
#include "autodiff/finite_diff.hpp"
#include "common/rng.hpp"
#include "core/qaoa.hpp"
#include "linalg/vector_ops.hpp"
#include "mixers/chebyshev_mixer.hpp"
#include "mixers/eigen_mixer.hpp"
#include "problems/cost_functions.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

TEST(SparseXY, ApplyMatchesDenseHamiltonian) {
  Rng rng(1);
  StateSpace space = StateSpace::dicke(6, 3);
  Graph pairs = complete_graph(6);
  SparseXYOperator op(space, pairs);
  const linalg::dmat h = EigenMixer::xy_hamiltonian(space, pairs);
  cvec psi = testutil::random_state(space.dim(), rng);
  cvec out;
  op.apply(psi, out);
  cvec expected(space.dim(), cplx{0.0, 0.0});
  for (index_t r = 0; r < space.dim(); ++r) {
    for (index_t c = 0; c < space.dim(); ++c) expected[r] += h(r, c) * psi[c];
  }
  EXPECT_LT(testutil::max_diff(out, expected), 1e-12);
}

TEST(SparseXY, SpectralBoundDominatesTrueSpectrum) {
  StateSpace space = StateSpace::dicke(6, 2);
  Graph pairs = complete_graph(6);
  SparseXYOperator op(space, pairs);
  const auto eig =
      linalg::eigvalsh(EigenMixer::xy_hamiltonian(space, pairs));
  EXPECT_GE(op.spectral_bound(), std::abs(eig.front()) - 1e-9);
  EXPECT_GE(op.spectral_bound(), std::abs(eig.back()) - 1e-9);
  // Clique on Dicke(n,k): every state has exactly k(n-k) partners, so the
  // Gershgorin bound is 2 k (n-k).
  EXPECT_DOUBLE_EQ(op.spectral_bound(), 2.0 * 2 * (6 - 2));
}

class ChebyshevVsExact
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(ChebyshevVsExact, MatchesEigenMixerToTolerance) {
  const auto [n, k, beta] = GetParam();
  StateSpace space = StateSpace::dicke(n, k);
  EigenMixer exact = EigenMixer::clique(space);
  ChebyshevMixer cheb = ChebyshevMixer::clique(space, 1e-12);
  Rng rng(static_cast<std::uint64_t>(n * 31 + k));
  cvec psi_exact = testutil::random_state(space.dim(), rng);
  cvec psi_cheb = psi_exact;
  cvec scratch;
  exact.apply_exp(psi_exact, beta, scratch);
  cheb.apply_exp(psi_cheb, beta, scratch);
  EXPECT_LT(testutil::max_diff(psi_cheb, psi_exact), 1e-9)
      << "degree used: " << cheb.last_degree();
  EXPECT_NEAR(linalg::norm(psi_cheb), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChebyshevVsExact,
    ::testing::Values(std::tuple{5, 2, 0.3}, std::tuple{6, 3, 0.9},
                      std::tuple{6, 3, -1.2}, std::tuple{7, 3, 2.0},
                      std::tuple{8, 4, 0.05}, std::tuple{6, 2, 6.28}));

TEST(Chebyshev, RingMixerMatchesExact) {
  StateSpace space = StateSpace::dicke(7, 3);
  EigenMixer exact = EigenMixer::ring(space);
  ChebyshevMixer cheb = ChebyshevMixer::ring(space);
  Rng rng(9);
  cvec a = testutil::random_state(space.dim(), rng);
  cvec b = a;
  cvec scratch;
  exact.apply_exp(a, 0.7, scratch);
  cheb.apply_exp(b, 0.7, scratch);
  EXPECT_LT(testutil::max_diff(a, b), 1e-9);
}

TEST(Chebyshev, ZeroBetaIsIdentity) {
  StateSpace space = StateSpace::dicke(5, 2);
  ChebyshevMixer cheb = ChebyshevMixer::clique(space);
  Rng rng(3);
  cvec psi = testutil::random_state(space.dim(), rng);
  cvec orig = psi;
  cvec scratch;
  cheb.apply_exp(psi, 0.0, scratch);
  EXPECT_LT(testutil::max_diff(psi, orig), 1e-12);
}

TEST(Chebyshev, InverseUndoesForward) {
  StateSpace space = StateSpace::dicke(6, 3);
  ChebyshevMixer cheb = ChebyshevMixer::clique(space);
  Rng rng(4);
  cvec psi = testutil::random_state(space.dim(), rng);
  cvec orig = psi;
  cvec scratch;
  cheb.apply_exp(psi, 0.85, scratch);
  cheb.apply_exp(psi, -0.85, scratch);
  EXPECT_LT(testutil::max_diff(psi, orig), 1e-9);
}

TEST(Chebyshev, DegreeTracksBetaTimesSpectralRadius) {
  StateSpace space = StateSpace::dicke(6, 3);
  ChebyshevMixer cheb = ChebyshevMixer::clique(space);
  Rng rng(5);
  cvec psi = testutil::random_state(space.dim(), rng);
  cvec scratch;
  cheb.apply_exp(psi, 0.1, scratch);
  const int small_degree = cheb.last_degree();
  cheb.apply_exp(psi, 2.0, scratch);
  const int large_degree = cheb.last_degree();
  EXPECT_GT(large_degree, small_degree);
}

TEST(Chebyshev, DrivesFullQaoaMatchingEigenMixer) {
  Rng rng(6);
  Graph g = erdos_renyi(7, 0.5, rng);
  StateSpace space = StateSpace::dicke(7, 3);
  dvec table =
      tabulate(space, [&g](state_t x) { return densest_subgraph(g, x); });
  EigenMixer exact = EigenMixer::clique(space);
  ChebyshevMixer cheb = ChebyshevMixer::clique(space);
  std::vector<double> angles = {0.3, 0.8, 0.5, 1.1};
  Qaoa engine_exact(exact, table, 2);
  Qaoa engine_cheb(cheb, table, 2);
  EXPECT_NEAR(engine_exact.run_packed(angles), engine_cheb.run_packed(angles),
              1e-9);
}

TEST(Chebyshev, AdjointGradientsMatchFiniteDifferences) {
  Rng rng(7);
  Graph g = erdos_renyi(6, 0.5, rng);
  StateSpace space = StateSpace::dicke(6, 3);
  dvec table = tabulate(space, [&g](state_t x) { return vertex_cover(g, x); });
  ChebyshevMixer cheb = ChebyshevMixer::clique(space);
  Qaoa engine(cheb, table, 2);
  AdjointDifferentiator adjoint(engine);
  FiniteDiffDifferentiator fd(engine, FdScheme::Central, 1e-6);
  std::vector<double> betas = {0.4, 0.9};
  std::vector<double> gammas = {0.7, 0.2};
  std::vector<double> ga_b(2), ga_g(2), gf_b(2), gf_g(2);
  adjoint.value_and_gradient(betas, gammas, ga_b, ga_g);
  fd.value_and_gradient(betas, gammas, gf_b, gf_g);
  for (int i = 0; i < 2; ++i) {
    EXPECT_NEAR(ga_b[static_cast<std::size_t>(i)],
                gf_b[static_cast<std::size_t>(i)], 2e-5);
    EXPECT_NEAR(ga_g[static_cast<std::size_t>(i)],
                gf_g[static_cast<std::size_t>(i)], 2e-5);
  }
}

TEST(Chebyshev, LanczosTightenedBoundCutsDegreeAndStaysExact) {
  // Ring mixers have a loose Gershgorin bound; the Lanczos-tightened
  // spectral interval shrinks the expansion degree without losing accuracy.
  StateSpace space = StateSpace::dicke(8, 4);
  ChebyshevMixer cheb = ChebyshevMixer::ring(space);
  EigenMixer exact = EigenMixer::ring(space);
  Rng rng(11);
  cvec reference = testutil::random_state(space.dim(), rng);
  cvec scratch;

  cvec a = reference;
  cheb.apply_exp(a, 1.1, scratch);
  const int degree_gershgorin = cheb.last_degree();

  const double old_bound = cheb.spectral_bound();
  const double new_bound = cheb.tighten_spectral_bound(rng);
  EXPECT_LT(new_bound, old_bound);

  cvec b = reference;
  cheb.apply_exp(b, 1.1, scratch);
  EXPECT_LT(cheb.last_degree(), degree_gershgorin);

  cvec c = reference;
  exact.apply_exp(c, 1.1, scratch);
  EXPECT_LT(testutil::max_diff(b, c), 1e-9);
  EXPECT_LT(testutil::max_diff(a, c), 1e-9);
}

TEST(Chebyshev, Validation) {
  EXPECT_THROW(ChebyshevMixer(nullptr), Error);
  StateSpace space = StateSpace::dicke(4, 2);
  auto op = std::make_shared<SparseXYOperator>(space, complete_graph(4));
  EXPECT_THROW(ChebyshevMixer(op, -1.0), Error);
  EXPECT_THROW(ChebyshevMixer(op, 1e-12, 0), Error);
  // A hopeless degree cap fails loudly rather than silently truncating.
  ChebyshevMixer capped(op, 1e-14, 2);
  cvec psi(space.dim(), cplx{0.0, 0.0});
  psi[0] = cplx{1.0, 0.0};
  cvec scratch;
  EXPECT_THROW(capped.apply_exp(psi, 3.0, scratch), Error);
}

}  // namespace
}  // namespace fastqaoa
