// Unit tests for cost functions, objective tables, threshold transforms and
// degeneracy histograms.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "problems/cost_functions.hpp"
#include "problems/objective.hpp"

namespace fastqaoa {
namespace {

TEST(CostFunctions, MaxCutTriangle) {
  Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_DOUBLE_EQ(maxcut(g, 0b000), 0.0);
  EXPECT_DOUBLE_EQ(maxcut(g, 0b001), 2.0);
  EXPECT_DOUBLE_EQ(maxcut(g, 0b011), 2.0);
  EXPECT_DOUBLE_EQ(maxcut(g, 0b111), 0.0);
}

TEST(CostFunctions, MaxCutWeights) {
  Graph g(2);
  g.add_edge(0, 1, 3.5);
  EXPECT_DOUBLE_EQ(maxcut(g, 0b01), 3.5);
  EXPECT_DOUBLE_EQ(maxcut(g, 0b11), 0.0);
}

TEST(CostFunctions, MaxCutComplementSymmetry) {
  Rng rng(1);
  Graph g = erdos_renyi(8, 0.5, rng);
  const state_t mask = (state_t{1} << 8) - 1;
  for (state_t x = 0; x < 256; ++x) {
    EXPECT_DOUBLE_EQ(maxcut(g, x), maxcut(g, x ^ mask));
  }
}

TEST(CostFunctions, KsatMatchesFormula) {
  CnfFormula f(3);
  f.add_clause({{0, false}, {1, false}});
  f.add_clause({{2, true}});
  EXPECT_DOUBLE_EQ(ksat(f, 0b000), 1.0);
  EXPECT_DOUBLE_EQ(ksat(f, 0b001), 2.0);
  EXPECT_DOUBLE_EQ(ksat(f, 0b100), 0.0);
}

TEST(CostFunctions, DensestSubgraphCountsInternalEdges) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  EXPECT_DOUBLE_EQ(densest_subgraph(g, 0b0011), 1.0);  // {0,1}: edge 0-1
  EXPECT_DOUBLE_EQ(densest_subgraph(g, 0b0101), 0.0);  // {0,2}: none
  EXPECT_DOUBLE_EQ(densest_subgraph(g, 0b1111), 4.0);  // all
}

TEST(CostFunctions, VertexCoverCountsIncidentEdges) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_DOUBLE_EQ(vertex_cover(g, 0b0010), 2.0);  // {1} covers 0-1, 1-2
  EXPECT_DOUBLE_EQ(vertex_cover(g, 0b1001), 2.0);  // {0,3}
  EXPECT_DOUBLE_EQ(vertex_cover(g, 0b0110), 3.0);  // {1,2} covers all
  EXPECT_DOUBLE_EQ(vertex_cover(g, 0b0000), 0.0);
}

TEST(CostFunctions, DensestPlusComplementCoverIdentity) {
  // edges inside S + edges covered by complement(S) = all edges;
  // equivalently vertex_cover(S) + densest(complement S) = |E|.
  Rng rng(2);
  Graph g = erdos_renyi(7, 0.6, rng);
  const state_t mask = (state_t{1} << 7) - 1;
  for (state_t x = 0; x < (state_t{1} << 7); ++x) {
    EXPECT_DOUBLE_EQ(vertex_cover(g, x) + densest_subgraph(g, x ^ mask),
                     static_cast<double>(g.num_edges()));
  }
}

TEST(CostFunctions, IsingEnergy) {
  Graph j(2);
  j.add_edge(0, 1, 1.0);
  std::vector<double> h = {0.5, -0.5};
  // x=00 -> s=(+1,+1): E = 0.5 - 0.5 + 1 = 1
  EXPECT_DOUBLE_EQ(ising_energy(j, h, 0b00), 1.0);
  // x=01 -> s=(-1,+1): E = -0.5 - 0.5 - 1 = -2
  EXPECT_DOUBLE_EQ(ising_energy(j, h, 0b01), -2.0);
  std::vector<double> bad = {1.0};
  EXPECT_THROW(ising_energy(j, bad, 0), Error);
}

TEST(CostFunctions, PortfolioValueKnownCases) {
  const std::vector<double> mu = {1.0, 2.0, 0.5};
  linalg::dmat sigma = {{0.1, 0.05, 0.0},
                        {0.05, 0.2, 0.01},
                        {0.0, 0.01, 0.3}};
  // Select asset 1 only: mu_1 - lambda * Sigma_11.
  EXPECT_DOUBLE_EQ(portfolio_value(mu, sigma, 2.0, 0b010), 2.0 - 2.0 * 0.2);
  // Assets 0 and 1: mu_0 + mu_1 - lambda (S00 + S11 + 2 S01).
  EXPECT_DOUBLE_EQ(portfolio_value(mu, sigma, 1.0, 0b011),
                   3.0 - (0.1 + 0.2 + 2.0 * 0.05));
  EXPECT_DOUBLE_EQ(portfolio_value(mu, sigma, 1.0, 0b000), 0.0);
  linalg::dmat bad(2, 3);
  EXPECT_THROW(portfolio_value(mu, bad, 1.0, 0b1), Error);
}

TEST(CostFunctions, PortfolioRiskAversionMonotonicity) {
  // Higher risk aversion never increases the value of a fixed selection
  // with a PSD covariance.
  Rng rng(9);
  const linalg::dmat f = linalg::random_matrix(5, 5, rng);
  linalg::dmat sigma = linalg::matmul(f, linalg::transpose(f));  // PSD
  std::vector<double> mu(5);
  for (auto& m : mu) m = rng.uniform(0.0, 2.0);
  for (state_t x = 1; x < 32; ++x) {
    EXPECT_LE(portfolio_value(mu, sigma, 2.0, x),
              portfolio_value(mu, sigma, 0.5, x) + 1e-12);
  }
}

TEST(Tabulate, FullSpaceMatchesDirectEvaluation) {
  Rng rng(3);
  Graph g = erdos_renyi(6, 0.5, rng);
  StateSpace space = StateSpace::full(6);
  dvec table = tabulate(space, [&g](state_t x) { return maxcut(g, x); });
  ASSERT_EQ(table.size(), 64u);
  for (state_t x = 0; x < 64; ++x) {
    EXPECT_DOUBLE_EQ(table[x], maxcut(g, x));
  }
}

TEST(Tabulate, DickeSubspaceIndexing) {
  Rng rng(4);
  Graph g = erdos_renyi(6, 0.5, rng);
  StateSpace space = StateSpace::dicke(6, 3);
  dvec table =
      tabulate(space, [&g](state_t x) { return densest_subgraph(g, x); });
  ASSERT_EQ(table.size(), 20u);
  space.for_each([&](index_t i, state_t s) {
    EXPECT_DOUBLE_EQ(table[i], densest_subgraph(g, s));
  });
}

TEST(ObjectiveStats, ExtremaAndDegeneracy) {
  dvec values = {1.0, 3.0, 3.0, 0.0, 2.0};
  ObjectiveStats s = objective_stats(values);
  EXPECT_DOUBLE_EQ(s.min_value, 0.0);
  EXPECT_DOUBLE_EQ(s.max_value, 3.0);
  EXPECT_EQ(s.argmin, 3u);
  EXPECT_EQ(s.argmax, 1u);
  EXPECT_EQ(s.count_max, 2u);
  EXPECT_EQ(s.count_min, 1u);
  EXPECT_NEAR(s.mean, 1.8, 1e-14);
}

TEST(ObjectiveTransforms, NegatedAndShifted) {
  dvec values = {1.0, -2.0};
  dvec neg = negated(values);
  EXPECT_DOUBLE_EQ(neg[0], -1.0);
  EXPECT_DOUBLE_EQ(neg[1], 2.0);
  dvec sh = shifted(values, 10.0);
  EXPECT_DOUBLE_EQ(sh[0], 11.0);
  EXPECT_DOUBLE_EQ(sh[1], 8.0);
}

TEST(ObjectiveTransforms, ThresholdIndicator) {
  dvec values = {0.0, 1.0, 2.0, 3.0};
  dvec ind = threshold_indicator(values, 1.5);
  EXPECT_DOUBLE_EQ(ind[0], 0.0);
  EXPECT_DOUBLE_EQ(ind[1], 0.0);
  EXPECT_DOUBLE_EQ(ind[2], 1.0);
  EXPECT_DOUBLE_EQ(ind[3], 1.0);
}

TEST(ApproximationRatio, MaximizeAndMinimize) {
  dvec values = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(approximation_ratio(10.0, values), 1.0);
  EXPECT_DOUBLE_EQ(approximation_ratio(5.0, values), 0.5);
  EXPECT_DOUBLE_EQ(
      approximation_ratio(0.0, values, Direction::Minimize), 1.0);
  dvec constant = {2.0, 2.0};
  EXPECT_THROW(approximation_ratio(2.0, constant), Error);
}

TEST(DegeneracyTable, HistogramsValues) {
  dvec values = {1.0, 2.0, 1.0, 3.0, 2.0, 1.0};
  DegeneracyTable t = degeneracy_table(values);
  ASSERT_EQ(t.num_distinct(), 3u);
  EXPECT_DOUBLE_EQ(t.values[0], 1.0);
  EXPECT_EQ(t.counts[0], 3u);
  EXPECT_DOUBLE_EQ(t.values[1], 2.0);
  EXPECT_EQ(t.counts[1], 2u);
  EXPECT_EQ(t.total, 6u);
}

TEST(DegeneracyTable, StreamingMatchesMaterialized) {
  Rng rng(5);
  Graph g = erdos_renyi(10, 0.5, rng);
  auto cost = [&g](state_t x) { return maxcut(g, x); };
  dvec table = tabulate(StateSpace::full(10), cost);
  DegeneracyTable direct = degeneracy_table(table);
  DegeneracyTable streamed = degeneracy_table_streaming(10, cost);
  ASSERT_EQ(direct.num_distinct(), streamed.num_distinct());
  for (std::size_t i = 0; i < direct.num_distinct(); ++i) {
    EXPECT_DOUBLE_EQ(direct.values[i], streamed.values[i]);
    EXPECT_EQ(direct.counts[i], streamed.counts[i]);
  }
  EXPECT_EQ(streamed.total, 1024u);
}

TEST(DegeneracyTable, StreamingDickeMatchesMaterialized) {
  Rng rng(6);
  Graph g = erdos_renyi(10, 0.5, rng);
  auto cost = [&g](state_t x) { return densest_subgraph(g, x); };
  dvec table = tabulate(StateSpace::dicke(10, 5), cost);
  DegeneracyTable direct = degeneracy_table(table);
  DegeneracyTable streamed = degeneracy_table_streaming_dicke(10, 5, cost);
  ASSERT_EQ(direct.num_distinct(), streamed.num_distinct());
  for (std::size_t i = 0; i < direct.num_distinct(); ++i) {
    EXPECT_DOUBLE_EQ(direct.values[i], streamed.values[i]);
    EXPECT_EQ(direct.counts[i], streamed.counts[i]);
  }
  EXPECT_EQ(streamed.total, 252u);
}

}  // namespace
}  // namespace fastqaoa
