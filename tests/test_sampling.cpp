// Unit tests for measurement sampling: alias-method correctness,
// convergence of shot estimates, and empirical fair sampling for Grover
// states.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/qaoa.hpp"
#include "mixers/grover_mixer.hpp"
#include "problems/cost_functions.hpp"
#include "sampling/sampler.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

TEST(Sampler, DeterministicOutcomeForDeltaState) {
  cvec psi(8, cplx{0.0, 0.0});
  psi[5] = cplx{1.0, 0.0};
  MeasurementSampler sampler(psi);
  Rng rng(1);
  for (int s = 0; s < 100; ++s) EXPECT_EQ(sampler.sample(rng), 5u);
  EXPECT_DOUBLE_EQ(sampler.probability(5), 1.0);
}

TEST(Sampler, ProbabilitiesMatchAmplitudes) {
  Rng rng(2);
  cvec psi = testutil::random_state(32, rng);
  MeasurementSampler sampler(psi);
  double total = 0.0;
  for (index_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(sampler.probability(i), std::norm(psi[i]), 1e-12);
    total += sampler.probability(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Sampler, EmpiricalFrequenciesConverge) {
  // Chi-square-ish: each outcome frequency within 5 sigma of expectation.
  Rng rng(3);
  cvec psi = testutil::random_state(16, rng);
  MeasurementSampler sampler(psi);
  const std::uint64_t shots = 200000;
  auto counts = sampler.sample_counts(shots, rng);
  for (index_t i = 0; i < 16; ++i) {
    const double expected = sampler.probability(i) * shots;
    const double sigma =
        std::sqrt(sampler.probability(i) * (1.0 - sampler.probability(i)) *
                  shots) +
        1.0;
    EXPECT_NEAR(static_cast<double>(counts[i]), expected, 5.0 * sigma)
        << "outcome " << i;
  }
}

TEST(Sampler, WeightsConstructorNormalizes) {
  dvec weights = {1.0, 3.0, 0.0, 4.0};
  MeasurementSampler sampler(weights);
  EXPECT_DOUBLE_EQ(sampler.probability(0), 0.125);
  EXPECT_DOUBLE_EQ(sampler.probability(1), 0.375);
  EXPECT_DOUBLE_EQ(sampler.probability(2), 0.0);
  EXPECT_DOUBLE_EQ(sampler.probability(3), 0.5);
  Rng rng(4);
  for (int s = 0; s < 1000; ++s) EXPECT_NE(sampler.sample(rng), 2u);
}

TEST(Sampler, ShotEstimateConvergesAtSqrtRate) {
  Rng rng(5);
  Graph g = erdos_renyi(8, 0.5, rng);
  dvec table = tabulate(StateSpace::full(8),
                        [&g](state_t x) { return maxcut(g, x); });
  cvec psi = testutil::random_state(256, rng);
  MeasurementSampler sampler(psi);
  const double exact = sampler.exact_expectation(table);

  for (const std::uint64_t shots : {1000ull, 100000ull}) {
    const double err_bound = 6.0 * sampler.standard_error(table, shots);
    const double estimate = sampler.estimate_expectation(table, shots, rng);
    EXPECT_NEAR(estimate, exact, err_bound) << shots << " shots";
  }
  // The predicted standard error itself shrinks like 1/sqrt(shots).
  EXPECT_NEAR(sampler.standard_error(table, 100) /
                  sampler.standard_error(table, 10000),
              10.0, 1e-9);
}

TEST(Sampler, FairSamplingOfGroverState) {
  // After Grover-mixer QAOA, equal-cost states must be measured equally
  // often (paper §2.4's fair-sampling property) — checked empirically.
  Rng rng(6);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = tabulate(StateSpace::full(6),
                        [&g](state_t x) { return maxcut(g, x); });
  GroverMixer mixer(64);
  Qaoa engine(mixer, table, 2);
  std::vector<double> angles = {0.7, 1.1, 0.4, 0.9};
  engine.run_packed(angles);

  MeasurementSampler sampler(engine.state());
  for (index_t i = 0; i < 64; ++i) {
    for (index_t j = i + 1; j < 64; ++j) {
      if (table[i] == table[j]) {
        EXPECT_NEAR(sampler.probability(i), sampler.probability(j), 1e-12);
      }
    }
  }
}

TEST(Sampler, Validation) {
  cvec empty;
  EXPECT_THROW(MeasurementSampler{empty}, Error);
  cvec zero(4, cplx{0.0, 0.0});
  EXPECT_THROW(MeasurementSampler{zero}, Error);
  dvec negative = {0.5, -0.1};
  EXPECT_THROW(MeasurementSampler{negative}, Error);
  MeasurementSampler ok(dvec{1.0, 1.0});
  dvec wrong_size = {1.0, 2.0, 3.0};
  Rng rng(7);
  EXPECT_THROW((void)ok.exact_expectation(wrong_size), Error);
  EXPECT_THROW((void)ok.estimate_expectation(wrong_size, 10, rng), Error);
  dvec fine = {1.0, 2.0};
  EXPECT_THROW((void)ok.estimate_expectation(fine, 0, rng), Error);
}

}  // namespace
}  // namespace fastqaoa
