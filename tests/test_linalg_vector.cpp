// Unit tests for the flat complex-vector kernels that form the simulator's
// inner loops.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

using linalg::apply_diag_phase;
using linalg::apply_threshold_phase;
using linalg::axpy;
using linalg::diag_bracket_imag;
using linalg::diag_expectation;
using linalg::dot;
using linalg::norm;
using linalg::norm_sq;
using linalg::normalize;
using linalg::probability_at_value;

TEST(VectorOps, FillAndScale) {
  cvec v(5);
  linalg::fill(v, cplx{2.0, -1.0});
  for (const auto& x : v) EXPECT_EQ(x, (cplx{2.0, -1.0}));
  linalg::scale(v, cplx{0.0, 1.0});
  for (const auto& x : v) EXPECT_EQ(x, (cplx{1.0, 2.0}));
}

TEST(VectorOps, AxpyMatchesManual) {
  cvec x = {cplx{1, 1}, cplx{2, 0}, cplx{0, -3}};
  cvec y = {cplx{0, 0}, cplx{1, 1}, cplx{2, 2}};
  axpy(cplx{2.0, 0.0}, x, y);
  EXPECT_EQ(y[0], (cplx{2, 2}));
  EXPECT_EQ(y[1], (cplx{5, 1}));
  EXPECT_EQ(y[2], (cplx{2, -4}));
}

TEST(VectorOps, DotIsConjugateLinear) {
  cvec x = {cplx{1, 2}, cplx{3, -1}};
  cvec y = {cplx{0, 1}, cplx{2, 2}};
  // <x|y> = conj(1+2i)(i) + conj(3-i)(2+2i) = (1-2i)(i) + (3+i)(2+2i)
  const cplx expected = cplx{1, -2} * cplx{0, 1} + cplx{3, 1} * cplx{2, 2};
  EXPECT_NEAR(std::abs(dot(x, y) - expected), 0.0, 1e-14);
}

TEST(VectorOps, DotOfSelfIsNormSq) {
  Rng rng(3);
  cvec v = testutil::random_state(64, rng);
  const cplx d = dot(v, v);
  EXPECT_NEAR(d.real(), norm_sq(v), 1e-12);
  EXPECT_NEAR(d.imag(), 0.0, 1e-14);
  EXPECT_NEAR(norm(v), 1.0, 1e-12);
}

TEST(VectorOps, NormalizeReturnsOldNorm) {
  cvec v = {cplx{3, 0}, cplx{0, 4}};
  const double old_norm = normalize(v);
  EXPECT_DOUBLE_EQ(old_norm, 5.0);
  EXPECT_NEAR(norm(v), 1.0, 1e-15);
  cvec zero(3, cplx{0.0, 0.0});
  EXPECT_THROW(normalize(zero), Error);
}

TEST(VectorOps, DiagPhasePreservesNormAndAppliesPhases) {
  Rng rng(9);
  cvec psi = testutil::random_state(32, rng);
  cvec orig = psi;
  dvec d(32, 0.0);
  for (auto& x : d) x = rng.uniform(-4.0, 4.0);
  apply_diag_phase(psi, d, 0.7);
  EXPECT_NEAR(norm(psi), 1.0, 1e-12);
  for (index_t i = 0; i < psi.size(); ++i) {
    const cplx expected =
        orig[i] * std::exp(cplx{0.0, -0.7 * d[i]});
    EXPECT_NEAR(std::abs(psi[i] - expected), 0.0, 1e-13);
  }
}

TEST(VectorOps, DiagPhaseZeroAngleIsIdentity) {
  Rng rng(11);
  cvec psi = testutil::random_state(16, rng);
  cvec orig = psi;
  dvec d(16, 3.0);
  apply_diag_phase(psi, d, 0.0);
  EXPECT_LT(testutil::max_diff(psi, orig), 1e-15);
}

TEST(VectorOps, ThresholdPhaseOnlyAboveThreshold) {
  cvec psi(4, cplx{0.5, 0.0});
  dvec d = {0.0, 1.0, 2.0, 3.0};
  apply_threshold_phase(psi, d, 1.5, kPi);
  // States 0,1 unchanged; 2,3 picked up e^{-i pi} = -1.
  EXPECT_NEAR(std::abs(psi[0] - cplx{0.5, 0.0}), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(psi[1] - cplx{0.5, 0.0}), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(psi[2] + cplx{0.5, 0.0}), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(psi[3] + cplx{0.5, 0.0}), 0.0, 1e-14);
}

TEST(VectorOps, DiagExpectationUniformIsMean) {
  const index_t n = 128;
  cvec psi = testutil::uniform_state(n);
  dvec d(n, 0.0);
  double mean = 0.0;
  for (index_t i = 0; i < n; ++i) {
    d[i] = static_cast<double>(i);
    mean += d[i];
  }
  mean /= static_cast<double>(n);
  EXPECT_NEAR(diag_expectation(d, psi), mean, 1e-10);
}

TEST(VectorOps, DiagBracketImagMatchesDirectComputation) {
  Rng rng(21);
  const index_t n = 40;
  cvec a = testutil::random_state(n, rng);
  cvec b = testutil::random_state(n, rng);
  dvec d(n, 0.0);
  for (auto& x : d) x = rng.uniform(-2.0, 2.0);
  cplx direct{0.0, 0.0};
  for (index_t i = 0; i < n; ++i) direct += std::conj(a[i]) * d[i] * b[i];
  EXPECT_NEAR(diag_bracket_imag(a, d, b), direct.imag(), 1e-13);
}

TEST(VectorOps, ProbabilityAtValueSumsMatchingStates) {
  cvec psi = {cplx{0.5, 0}, cplx{0.5, 0}, cplx{0.5, 0}, cplx{0.5, 0}};
  dvec d = {1.0, 2.0, 2.0, 3.0};
  EXPECT_NEAR(probability_at_value(d, psi, 2.0), 0.5, 1e-14);
  EXPECT_NEAR(probability_at_value(d, psi, 3.0), 0.25, 1e-14);
  EXPECT_NEAR(probability_at_value(d, psi, 9.0), 0.0, 1e-14);
}

TEST(VectorOps, SizeMismatchesThrow) {
  cvec a(4), b(5);
  dvec d(4, 0.0);
  EXPECT_THROW(axpy(cplx{1, 0}, a, b), Error);
  EXPECT_THROW((void)dot(a, b), Error);
  EXPECT_THROW(apply_diag_phase(b, d, 1.0), Error);
  EXPECT_THROW((void)diag_expectation(d, b), Error);
}

}  // namespace
}  // namespace fastqaoa
