// Tests for the angle-finding strategies: INTERP extrapolation, iterative
// find_angles with checkpoint/resume, random restarts, median angles.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "anglefind/strategies.hpp"
#include "common/rng.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"

namespace fastqaoa {
namespace {

class TempDir {
 public:
  TempDir() {
    // gtest_discover_tests runs every TEST in its own process, so a bare
    // counter restarts at 0 each time and concurrent ctest jobs would
    // collide on (and remove_all!) the same directory — key by pid too.
    dir_ = std::filesystem::temp_directory_path() /
           ("fastqaoa_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

dvec maxcut_table(const Graph& g) {
  return tabulate(StateSpace::full(g.num_vertices()),
                  [&g](state_t x) { return maxcut(g, x); });
}

FindAnglesOptions quick_options() {
  FindAnglesOptions opt;
  opt.hopping.hops = 4;
  opt.hopping.local.max_iterations = 60;
  opt.seed = 1234;
  return opt;
}

TEST(Interp, LengthOneRepeats) {
  std::vector<double> next = interp_extrapolate({0.7});
  ASSERT_EQ(next.size(), 2u);
  EXPECT_DOUBLE_EQ(next[0], 0.7);
  EXPECT_DOUBLE_EQ(next[1], 0.7);
}

TEST(Interp, PreservesEndpointsAndMonotonicity) {
  std::vector<double> prev = {0.1, 0.3, 0.5, 0.9};
  std::vector<double> next = interp_extrapolate(prev);
  ASSERT_EQ(next.size(), 5u);
  EXPECT_DOUBLE_EQ(next.front(), 0.1);
  EXPECT_DOUBLE_EQ(next.back(), 0.9);
  for (std::size_t i = 0; i + 1 < next.size(); ++i) {
    EXPECT_LE(next[i], next[i + 1] + 1e-12);
  }
}

TEST(Interp, LinearProfileResampledExactly) {
  // A linear ramp stays a linear ramp under INTERP.
  std::vector<double> prev = {0.0, 1.0, 2.0};
  std::vector<double> next = interp_extrapolate(prev);
  ASSERT_EQ(next.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(next[i], 2.0 * static_cast<double>(i) / 3.0, 1e-12);
  }
}

TEST(Interp, EmptyThrows) {
  EXPECT_THROW(interp_extrapolate({}), Error);
}

TEST(FindAngles, ExpectationImprovesWithRounds) {
  Rng rng(42);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(6);

  auto schedules = find_angles(mixer, table, 3, quick_options());
  ASSERT_EQ(schedules.size(), 3u);
  const double best = objective_stats(table).max_value;
  const double mean = objective_stats(table).mean;
  for (int p = 0; p < 3; ++p) {
    const auto& s = schedules[static_cast<std::size_t>(p)];
    EXPECT_EQ(s.p, p + 1);
    EXPECT_EQ(s.betas.size(), static_cast<std::size_t>(p + 1));
    EXPECT_EQ(s.gammas.size(), static_cast<std::size_t>(p + 1));
    EXPECT_GT(s.expectation, mean);  // beats random guessing
    EXPECT_LE(s.expectation, best + 1e-9);
    if (p > 0) {
      // Monotone non-decreasing (within optimizer noise): p rounds can
      // always reproduce p-1 rounds by zeroing the extra angles, and the
      // INTERP seed starts from the previous optimum.
      EXPECT_GE(s.expectation,
                schedules[static_cast<std::size_t>(p - 1)].expectation - 0.05);
    }
  }
}

TEST(FindAngles, ReproducesExactSingleEdgeOptimum) {
  Graph g(2, {{0, 1}});
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(2);
  auto schedules = find_angles(mixer, table, 1, quick_options());
  EXPECT_NEAR(schedules[0].expectation, 1.0, 1e-6);
}

TEST(FindAngles, MinimizeDirection) {
  Rng rng(3);
  Graph g = erdos_renyi(5, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(5);
  FindAnglesOptions opt = quick_options();
  opt.direction = Direction::Minimize;
  auto schedules = find_angles(mixer, table, 1, opt);
  // Minimizing cut: should get below the mean.
  EXPECT_LT(schedules[0].expectation, objective_stats(table).mean);
}

TEST(FindAngles, CheckpointRoundTrip) {
  TempDir tmp;
  std::vector<AngleSchedule> schedules(2);
  schedules[0] = {1, {0.1}, {0.2}, 3.5};
  schedules[1] = {2, {0.1, 0.3}, {0.2, 0.4}, 4.25};
  const std::string path = tmp.path("angles.txt");
  save_checkpoint(path, schedules);
  auto loaded = load_checkpoint(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[1].p, 2);
  EXPECT_DOUBLE_EQ(loaded[1].expectation, 4.25);
  EXPECT_EQ(loaded[0].betas, schedules[0].betas);
  EXPECT_EQ(loaded[1].gammas, schedules[1].gammas);
}

TEST(FindAngles, ResumeFromCheckpointSkipsCompletedRounds) {
  TempDir tmp;
  Rng rng(4);
  Graph g = erdos_renyi(5, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(5);

  FindAnglesOptions opt = quick_options();
  opt.checkpoint_file = tmp.path("resume.txt");

  auto first = find_angles(mixer, table, 2, opt);
  ASSERT_EQ(first.size(), 2u);
  // Resume to p=4: rounds 1-2 must be bit-identical (loaded, not re-run).
  auto resumed = find_angles(mixer, table, 4, opt);
  ASSERT_EQ(resumed.size(), 4u);
  EXPECT_EQ(resumed[0].betas, first[0].betas);
  EXPECT_EQ(resumed[1].gammas, first[1].gammas);
  EXPECT_DOUBLE_EQ(resumed[1].expectation, first[1].expectation);
  // And the file now holds all four rounds.
  EXPECT_EQ(load_checkpoint(opt.checkpoint_file).size(), 4u);
}

TEST(FindAngles, CorruptCheckpointFailsLoudly) {
  TempDir tmp;
  const std::string path = tmp.path("corrupt.txt");
  std::ofstream(path) << "not a checkpoint\n";
  EXPECT_THROW(load_checkpoint(path), Error);
  EXPECT_THROW(load_checkpoint(tmp.path("missing.txt")), Error);
}

TEST(FindAnglesAt, RefinesGivenInitialAngles) {
  Graph g(2, {{0, 1}});
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(2);
  // Start near the optimum (pi/8, pi/2); basinhopping should lock it in.
  AngleSchedule s = find_angles_at(mixer, table, 1, {0.3, 1.4},
                                   quick_options());
  EXPECT_NEAR(s.expectation, 1.0, 1e-6);
  EXPECT_THROW(find_angles_at(mixer, table, 2, {0.3, 1.4}, quick_options()),
               Error);
}

TEST(FindAnglesRandom, FindsGoodAnglesWithEnoughRestarts) {
  Rng rng(5);
  Graph g = erdos_renyi(5, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(5);
  FindAnglesOptions opt = quick_options();
  AngleSchedule s = find_angles_random(mixer, table, 1, 20, opt);
  EXPECT_EQ(s.p, 1);
  EXPECT_GT(approximation_ratio(s.expectation, table), 0.55);
}

TEST(MedianAngles, CoordinateWiseMedian) {
  std::vector<std::vector<double>> sets = {
      {1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}};
  std::vector<double> med = median_angles(sets);
  ASSERT_EQ(med.size(), 2u);
  EXPECT_DOUBLE_EQ(med[0], 2.0);
  EXPECT_DOUBLE_EQ(med[1], 20.0);
  // Even count: average of the middle two.
  sets.push_back({4.0, 40.0});
  med = median_angles(sets);
  EXPECT_DOUBLE_EQ(med[0], 2.5);
  EXPECT_DOUBLE_EQ(med[1], 25.0);
}

TEST(MedianAngles, ValidatesInput) {
  EXPECT_THROW(median_angles({}), Error);
  EXPECT_THROW(median_angles({{1.0}, {1.0, 2.0}}), Error);
}

TEST(EvaluateAngles, MatchesEngineRun) {
  Rng rng(6);
  Graph g = erdos_renyi(4, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(4);
  std::vector<double> packed = {0.3, 0.5, 0.7, 0.9};
  Qaoa engine(mixer, table, 2);
  EXPECT_NEAR(evaluate_angles(mixer, table, packed),
              engine.run_packed(packed), 1e-13);
}

TEST(TqaInit, LinearRampShape) {
  std::vector<double> packed = tqa_initial_angles(4, 0.8);
  ASSERT_EQ(packed.size(), 8u);
  // Betas ramp down, gammas ramp up, symmetric about dt/2.
  for (int i = 0; i + 1 < 4; ++i) {
    EXPECT_GT(packed[static_cast<std::size_t>(i)],
              packed[static_cast<std::size_t>(i + 1)]);
    EXPECT_LT(packed[static_cast<std::size_t>(4 + i)],
              packed[static_cast<std::size_t>(4 + i + 1)]);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(packed[static_cast<std::size_t>(i)] +
                    packed[static_cast<std::size_t>(4 + i)],
                0.8, 1e-12);
  }
  EXPECT_THROW(tqa_initial_angles(0), Error);
  EXPECT_THROW(tqa_initial_angles(2, -1.0), Error);
}

TEST(TqaInit, BeatsRandomAnglesOnAverage) {
  // The annealing-inspired seed should outperform typical random angles
  // without any optimization at all.
  Rng rng(31);
  Graph g = erdos_renyi(8, 0.5, rng);
  dvec table = tabulate(StateSpace::full(8),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(8);
  const int p = 4;
  const double e_tqa =
      evaluate_angles(mixer, table, tqa_initial_angles(p));
  double e_random = 0.0;
  const int draws = 25;
  for (int d = 0; d < draws; ++d) {
    std::vector<double> rnd(static_cast<std::size_t>(2 * p));
    for (auto& a : rnd) a = rng.uniform(0.0, 2.0 * kPi);
    e_random += evaluate_angles(mixer, table, rnd);
  }
  EXPECT_GT(e_tqa, e_random / draws);
}

TEST(AngleSchedule, PackedLayout) {
  AngleSchedule s{2, {0.1, 0.2}, {0.3, 0.4}, 0.0};
  std::vector<double> packed = s.packed();
  ASSERT_EQ(packed.size(), 4u);
  EXPECT_DOUBLE_EQ(packed[0], 0.1);
  EXPECT_DOUBLE_EQ(packed[3], 0.4);
}

}  // namespace
}  // namespace fastqaoa
