// Tests for the comparator substrate: the gate-level simulator must agree
// with the precomputed fastQAOA path on identical ansätze — that agreement
// is what makes the Fig. 4 timing comparison meaningful.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/circuit.hpp"
#include "baselines/gate_sim.hpp"
#include "baselines/packages.hpp"
#include "bits/bitops.hpp"
#include "common/rng.hpp"
#include "core/qaoa.hpp"
#include "linalg/vector_ops.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

using baselines::build_maxcut_circuit;
using baselines::build_maxcut_circuit_generic;
using baselines::GateStateVector;
using baselines::measure_maxcut;
using baselines::run_circuit;

TEST(GateSim, InitialStateIsZeroKet) {
  GateStateVector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_EQ(sv.state()[0], (cplx{1.0, 0.0}));
  for (index_t i = 1; i < 8; ++i) EXPECT_EQ(sv.state()[i], (cplx{0.0, 0.0}));
}

TEST(GateSim, HadamardLayerGivesUniform) {
  GateStateVector sv(4);
  for (int q = 0; q < 4; ++q) sv.apply_h(q);
  for (const auto& a : sv.state()) {
    EXPECT_NEAR(std::abs(a - cplx{0.25, 0.0}), 0.0, 1e-13);
  }
  // reset_uniform is the fused equivalent.
  GateStateVector sv2(4);
  sv2.reset_uniform();
  EXPECT_LT(testutil::max_diff(sv.state(), sv2.state()), 1e-14);
}

TEST(GateSim, RxOnSingleQubit) {
  GateStateVector sv(1);
  sv.apply_rx(2.0 * 0.7, 0);  // e^{-i 0.7 X}
  EXPECT_NEAR(std::abs(sv.state()[0] - cplx{std::cos(0.7), 0.0}), 0.0, 1e-13);
  EXPECT_NEAR(std::abs(sv.state()[1] - cplx{0.0, -std::sin(0.7)}), 0.0,
              1e-13);
}

TEST(GateSim, RzPhases) {
  GateStateVector sv(1);
  sv.apply_h(0);
  sv.apply_rz(1.3, 0);
  EXPECT_NEAR(std::arg(sv.state()[1] / sv.state()[0]), 1.3, 1e-12);
}

TEST(GateSim, RzzDiagonalPhases) {
  GateStateVector sv(2);
  sv.reset_uniform();
  sv.apply_rzz(0.9, 0, 1);
  // |00>,|11> get e^{-i 0.45}; |01>,|10> get e^{+i 0.45}.
  const double expected = -0.9;  // relative phase of odd vs even parity
  EXPECT_NEAR(std::arg(sv.state()[0] / sv.state()[1]), expected, 1e-12);
  EXPECT_NEAR(std::arg(sv.state()[3] / sv.state()[2]), expected, 1e-12);
}

TEST(GateSim, GenericGateMatchesSpecialized) {
  Rng rng(1);
  GateStateVector a(5), b(5);
  a.reset_uniform();
  b.reset_uniform();
  // Random RX via both paths.
  const double theta = 1.234;
  a.apply_rx(theta, 2);
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  b.apply_1q({cplx{c, 0}, cplx{0, -s}, cplx{0, -s}, cplx{c, 0}}, 2);
  EXPECT_LT(testutil::max_diff(a.state(), b.state()), 1e-14);
}

TEST(GateSim, Generic2qMatchesRzz) {
  GateStateVector a(4), b(4);
  a.reset_uniform();
  b.reset_uniform();
  const double theta = 0.77;
  a.apply_rzz(theta, 1, 3);
  const cplx even{std::cos(theta / 2.0), -std::sin(theta / 2.0)};
  const cplx odd = std::conj(even);
  std::array<cplx, 16> u{};
  u[0] = even;
  u[5] = odd;
  u[10] = odd;
  u[15] = even;
  b.apply_2q(u, 1, 3);
  EXPECT_LT(testutil::max_diff(a.state(), b.state()), 1e-14);
}

TEST(GateSim, XyGateConservesHammingWeight) {
  Rng rng(2);
  GateStateVector sv(4);
  // Start in |0011> (weight 2).
  sv.state()[0] = cplx{0.0, 0.0};
  sv.state()[0b0011] = cplx{1.0, 0.0};
  sv.apply_xy(0.6, 1, 2);
  sv.apply_xy(1.1, 0, 3);
  double weight2_mass = 0.0;
  for (index_t x = 0; x < 16; ++x) {
    if (popcount(x) == 2) weight2_mass += std::norm(sv.state()[x]);
  }
  EXPECT_NEAR(weight2_mass, 1.0, 1e-12);
}

TEST(GateSim, ExpectationZzSigns) {
  GateStateVector sv(2);
  EXPECT_NEAR(sv.expectation_zz(0, 1), 1.0, 1e-14);  // |00>
  sv.state()[0] = cplx{0.0, 0.0};
  sv.state()[1] = cplx{1.0, 0.0};  // |01>
  EXPECT_NEAR(sv.expectation_zz(0, 1), -1.0, 1e-14);
}

TEST(Circuit, SpecializedAndGenericCircuitsAgree) {
  Rng rng(3);
  Graph g = erdos_renyi(6, 0.5, rng);
  std::vector<double> betas = {0.3, 0.9};
  std::vector<double> gammas = {0.7, 0.4};
  GateStateVector sv1(6), sv2(6);
  run_circuit(build_maxcut_circuit(g, betas, gammas), sv1);
  run_circuit(build_maxcut_circuit_generic(g, betas, gammas), sv2);
  EXPECT_LT(testutil::max_diff(sv1.state(), sv2.state()), 1e-12);
}

TEST(Circuit, MatchesFastQaoaExpectation) {
  // The central cross-validation: gate-by-gate RZZ/RX circuit simulation
  // and the precomputed diagonal-frame simulation compute the same <C>.
  Rng rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = erdos_renyi(7, 0.5, rng);
    const int p = 1 + trial % 3;
    std::vector<double> betas(static_cast<std::size_t>(p));
    std::vector<double> gammas(static_cast<std::size_t>(p));
    for (auto& b : betas) b = rng.uniform(0.0, 2.0 * kPi);
    for (auto& gm : gammas) gm = rng.uniform(0.0, 2.0 * kPi);

    GateStateVector sv(7);
    run_circuit(build_maxcut_circuit(g, betas, gammas), sv);
    const double e_circuit = measure_maxcut(sv, g);

    dvec table = tabulate(StateSpace::full(7),
                          [&g](state_t x) { return maxcut(g, x); });
    XMixer mixer = XMixer::transverse_field(7);
    Qaoa engine(mixer, table, p);
    const double e_fast = engine.run(betas, gammas);
    EXPECT_NEAR(e_circuit, e_fast, 1e-10) << "trial=" << trial << " p=" << p;

    // The statevectors agree too, up to the RZZ decomposition's global
    // phase — compare via per-state probabilities against the table.
    EXPECT_NEAR(sv.expectation_diag(table), e_fast, 1e-10);
  }
}

TEST(Packages, AllThreeAgreeOnExpectation) {
  Rng rng(5);
  Graph g = erdos_renyi(6, 0.5, rng);
  std::vector<double> betas = {0.25, 0.85};
  std::vector<double> gammas = {0.55, 1.15};
  auto fast = baselines::make_fastqaoa_package(g, 2);
  auto light = baselines::make_circuit_light_package(g);
  auto heavy = baselines::make_circuit_heavy_package(g);
  const double e_fast = fast->evaluate(betas, gammas);
  const double e_light = light->evaluate(betas, gammas);
  const double e_heavy = heavy->evaluate(betas, gammas);
  EXPECT_NEAR(e_fast, e_light, 1e-10);
  EXPECT_NEAR(e_fast, e_heavy, 1e-10);
  EXPECT_GT(fast->resident_bytes(), 0u);
  EXPECT_GT(light->resident_bytes(), 0u);
  heavy->evaluate(betas, gammas);
  EXPECT_GT(heavy->resident_bytes(), 0u);
}

TEST(Packages, RepeatedEvaluationIsConsistent) {
  Rng rng(6);
  Graph g = erdos_renyi(5, 0.5, rng);
  auto light = baselines::make_circuit_light_package(g);
  std::vector<double> betas = {0.4};
  std::vector<double> gammas = {0.8};
  const double e1 = light->evaluate(betas, gammas);
  const double e2 = light->evaluate(betas, gammas);
  EXPECT_DOUBLE_EQ(e1, e2);
}

TEST(GateSim, Validation) {
  EXPECT_THROW(GateStateVector(0), Error);
  GateStateVector sv(3);
  EXPECT_THROW(sv.apply_h(3), Error);
  EXPECT_THROW(sv.apply_rzz(0.1, 1, 1), Error);
  EXPECT_THROW(sv.apply_xy(0.1, 0, 5), Error);
}

}  // namespace
}  // namespace fastqaoa
