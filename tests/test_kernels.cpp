// Backend-parity suite for the dispatched kernel layer (linalg/kernels/).
//
// Every backend the CPU supports is run against the scalar reference on
// randomized inputs: results must agree to 1e-13 relative. On top of the
// raw-kernel properties, each backend gets an adjoint-vs-finite-difference
// gradient check through the full engine, and a 1-vs-4-thread bit-identity
// check of the fixed-order reductions (the determinism contract of
// kernels.hpp).

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "autodiff/adjoint.hpp"
#include "common/alloc.hpp"
#include "common/threading.hpp"
#include "common/topology.hpp"
#include "core/qaoa.hpp"
#include "linalg/kernels/kernels.hpp"
#include "linalg/sharded_state.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"

namespace fastqaoa {
namespace {

namespace kn = linalg::kernels;

constexpr double kParityTol = 1e-13;

/// RAII: select a backend for one test, restore auto-detection after.
class BackendGuard {
 public:
  explicit BackendGuard(const std::string& name) {
    ok_ = kn::select(name);
  }
  ~BackendGuard() { kn::select("auto"); }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  bool ok_ = false;
};

std::vector<std::string> simd_backends() {
  std::vector<std::string> out;
  for (const std::string& name : kn::available()) {
    if (name != "scalar") out.push_back(name);
  }
  return out;
}

cvec random_state(std::mt19937_64& gen, index_t n) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  cvec v(n);
  for (auto& z : v) z = cplx{u(gen), u(gen)};
  return v;
}

std::vector<double> random_diag(std::mt19937_64& gen, index_t n,
                                double span = 4.0) {
  std::uniform_real_distribution<double> u(-span, span);
  std::vector<double> d(n);
  for (auto& x : d) x = u(gen);
  return d;
}

double rel_err(double got, double want) {
  const double scale = std::max(1.0, std::abs(want));
  return std::abs(got - want) / scale;
}

double state_rel_err(const cvec& got, const cvec& want) {
  double num = 0.0;
  double den = 1.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    num = std::max(num, std::abs(got[i] - want[i]));
    den = std::max(den, std::abs(want[i]));
  }
  return num / den;
}

/// Sizes that cross the serial/parallel thresholds of every kernel family
/// (WHT blocks at 4096 complex, elementwise at 8192, reductions at 8192).
const index_t kSizes[] = {1, 2, 8, 64, 1024, 1 << 14};

TEST(Kernels, ScalarBackendAlwaysAvailable) {
  const auto names = kn::available();
  ASSERT_FALSE(names.empty());
  EXPECT_NE(std::find(names.begin(), names.end(), "scalar"), names.end());
  BackendGuard g("scalar");
  ASSERT_TRUE(g.ok());
  EXPECT_STREQ(kn::active_name(), "scalar");
  EXPECT_STREQ(kn::active().name, "scalar");
}

TEST(Kernels, SelectRejectsUnknownName) {
  EXPECT_FALSE(kn::select("not-a-backend"));
  // The failed select must leave the active table untouched and usable.
  EXPECT_NE(kn::active_name(), nullptr);
  EXPECT_TRUE(kn::select("auto"));
}

TEST(Kernels, WhtFamilyMatchesScalarReference) {
  std::mt19937_64 gen(7);
  for (const std::string& name : simd_backends()) {
    for (const index_t n : kSizes) {
      const cvec base = random_state(gen, n);
      const auto d = random_diag(gen, n);
      const auto obj = random_diag(gen, n, 2.0);
      const double angle = 0.83;
      const double scale = 1.0 / static_cast<double>(n);

      // Scalar reference results.
      ASSERT_TRUE(kn::select("scalar"));
      cvec ref_wht = base;
      kn::active().wht(ref_wht.data(), n);
      cvec ref_pw = base;
      kn::active().phase_wht(ref_pw.data(), d.data(), angle, scale, n);
      cvec ref_sc = base;
      kn::active().phase_wht(ref_sc.data(), nullptr, 0.0, scale, n);
      cvec ref_we = base;
      const double ref_e =
          kn::active().wht_expect(ref_we.data(), obj.data(), n);
      cvec ref_pwe = base;
      const double ref_pe = kn::active().phase_wht_expect(
          ref_pwe.data(), d.data(), angle, scale, obj.data(), n);

      BackendGuard g(name);
      ASSERT_TRUE(g.ok());
      cvec got = base;
      kn::active().wht(got.data(), n);
      EXPECT_LT(state_rel_err(got, ref_wht), kParityTol)
          << name << " wht n=" << n;

      got = base;
      kn::active().phase_wht(got.data(), d.data(), angle, scale, n);
      EXPECT_LT(state_rel_err(got, ref_pw), kParityTol)
          << name << " phase_wht n=" << n;

      got = base;
      kn::active().phase_wht(got.data(), nullptr, 0.0, scale, n);
      EXPECT_LT(state_rel_err(got, ref_sc), kParityTol)
          << name << " phase_wht(scale-only) n=" << n;

      got = base;
      const double e = kn::active().wht_expect(got.data(), obj.data(), n);
      EXPECT_LT(state_rel_err(got, ref_we), kParityTol)
          << name << " wht_expect state n=" << n;
      EXPECT_LT(rel_err(e, ref_e), kParityTol)
          << name << " wht_expect value n=" << n;

      got = base;
      const double pe = kn::active().phase_wht_expect(
          got.data(), d.data(), angle, scale, obj.data(), n);
      EXPECT_LT(state_rel_err(got, ref_pwe), kParityTol)
          << name << " phase_wht_expect state n=" << n;
      EXPECT_LT(rel_err(pe, ref_pe), kParityTol)
          << name << " phase_wht_expect value n=" << n;
    }
  }
}

TEST(Kernels, ElementwiseMatchesScalarReference) {
  std::mt19937_64 gen(11);
  for (const std::string& name : simd_backends()) {
    for (const index_t n : kSizes) {
      const cvec base = random_state(gen, n);
      const cvec other = random_state(gen, n);
      const auto d = random_diag(gen, n);

      struct Case {
        const char* label;
        cvec ref;
        cvec got;
      };
      std::vector<Case> cases;
      // Run each elementwise kernel once per backend; collect pairs.
      for (int which = 0; which < 2; ++which) {
        if (which == 0) {
          ASSERT_TRUE(kn::select("scalar"));
        } else {
          ASSERT_TRUE(kn::select(name));
        }
        const kn::KernelBackend& k = kn::active();
        auto out = [&](const char* label) -> cvec& {
          if (which == 0) {
            cases.push_back({label, base, base});
            return cases.back().ref;
          }
          for (auto& c : cases) {
            if (std::string_view(c.label) == label) return c.got;
          }
          ADD_FAILURE() << "missing case " << label;
          return cases.back().got;
        };
        {
          cvec& v = out("diag_phase");
          k.diag_phase(v.data(), d.data(), 1.7, n);
        }
        {
          cvec& v = out("diag_mul");
          k.diag_mul(v.data(), d.data(), 0.5, n);
        }
        {
          cvec& v = out("scale");
          k.scale(v.data(), 0.8, -0.6, n);
        }
        {
          cvec& v = out("scale_real");
          k.scale_real(v.data(), 1.0 / 3.0, n);
        }
        {
          cvec& v = out("copy_scale");
          k.copy_scale(v.data(), other.data(), 0.25, n);
        }
        {
          cvec& v = out("fill");
          k.fill(v.data(), 0.125, -2.0, n);
        }
        {
          cvec& v = out("add_const");
          k.add_const(v.data(), -0.3, 0.7, n);
        }
        {
          cvec& v = out("axpy");
          k.axpy(0.9, -1.1, other.data(), v.data(), n);
        }
        {
          cvec& v = out("cheb_recur");
          k.cheb_recur(v.data(), other.data(), 1.9, n);
        }
      }
      kn::select("auto");
      for (const auto& c : cases) {
        EXPECT_LT(state_rel_err(c.got, c.ref), kParityTol)
            << name << " " << c.label << " n=" << n;
      }
    }
  }
}

TEST(Kernels, ReductionsMatchScalarReference) {
  std::mt19937_64 gen(13);
  for (const std::string& name : simd_backends()) {
    for (const index_t n : kSizes) {
      const cvec x = random_state(gen, n);
      const cvec y = random_state(gen, n);
      const auto d = random_diag(gen, n);

      ASSERT_TRUE(kn::select("scalar"));
      const kn::KernelBackend& s = kn::active();
      const kn::CplxSum ref_dot = s.dot(x.data(), y.data(), n);
      const double ref_nsq = s.norm_sq(x.data(), n);
      const kn::CplxSum ref_vsum = s.vsum(x.data(), n);
      const double ref_de = s.diag_expectation(d.data(), x.data(), n);
      const double ref_bi =
          s.diag_bracket_imag(x.data(), d.data(), y.data(), n);
      const double ref_mad = s.max_abs_diff(x.data(), y.data(), n);

      BackendGuard g(name);
      ASSERT_TRUE(g.ok());
      const kn::KernelBackend& k = kn::active();
      const kn::CplxSum got_dot = k.dot(x.data(), y.data(), n);
      EXPECT_LT(rel_err(got_dot.re, ref_dot.re), kParityTol) << name << n;
      EXPECT_LT(rel_err(got_dot.im, ref_dot.im), kParityTol) << name << n;
      EXPECT_LT(rel_err(k.norm_sq(x.data(), n), ref_nsq), kParityTol)
          << name << n;
      const kn::CplxSum got_vsum = k.vsum(x.data(), n);
      EXPECT_LT(rel_err(got_vsum.re, ref_vsum.re), kParityTol) << name << n;
      EXPECT_LT(rel_err(got_vsum.im, ref_vsum.im), kParityTol) << name << n;
      EXPECT_LT(rel_err(k.diag_expectation(d.data(), x.data(), n), ref_de),
                kParityTol)
          << name << n;
      EXPECT_LT(
          rel_err(k.diag_bracket_imag(x.data(), d.data(), y.data(), n),
                  ref_bi),
          kParityTol)
          << name << n;
      EXPECT_LT(rel_err(k.max_abs_diff(x.data(), y.data(), n), ref_mad),
                kParityTol)
          << name << n;
    }
  }
}

TEST(Kernels, GemvMatchesScalarReference) {
  std::mt19937_64 gen(17);
  for (const std::string& name : simd_backends()) {
    for (const index_t rows : {3, 64, 300}) {
      const index_t cols = rows + 5;
      const auto a_re = random_diag(gen, rows * cols, 1.0);
      const cvec a_cx = random_state(gen, rows * cols);
      const cvec x_c = random_state(gen, cols);
      const cvec x_r = random_state(gen, rows);

      ASSERT_TRUE(kn::select("scalar"));
      const kn::KernelBackend& s = kn::active();
      cvec ref_rv(rows), ref_rt(cols), ref_cv(rows), ref_ca(cols);
      s.gemv_real(a_re.data(), rows, cols, x_c.data(), ref_rv.data());
      s.gemv_real_t(a_re.data(), rows, cols, x_r.data(), ref_rt.data());
      s.gemv_cplx(a_cx.data(), rows, cols, x_c.data(), ref_cv.data());
      s.gemv_cplx_adj(a_cx.data(), rows, cols, x_r.data(), ref_ca.data());

      BackendGuard g(name);
      ASSERT_TRUE(g.ok());
      const kn::KernelBackend& k = kn::active();
      cvec got_rv(rows), got_rt(cols), got_cv(rows), got_ca(cols);
      k.gemv_real(a_re.data(), rows, cols, x_c.data(), got_rv.data());
      k.gemv_real_t(a_re.data(), rows, cols, x_r.data(), got_rt.data());
      k.gemv_cplx(a_cx.data(), rows, cols, x_c.data(), got_cv.data());
      k.gemv_cplx_adj(a_cx.data(), rows, cols, x_r.data(), got_ca.data());
      EXPECT_LT(state_rel_err(got_rv, ref_rv), kParityTol) << name << rows;
      EXPECT_LT(state_rel_err(got_rt, ref_rt), kParityTol) << name << rows;
      EXPECT_LT(state_rel_err(got_cv, ref_cv), kParityTol) << name << rows;
      EXPECT_LT(state_rel_err(got_ca, ref_ca), kParityTol) << name << rows;
    }
  }
}

TEST(Kernels, AdjointGradientMatchesFiniteDifferencePerBackend) {
  // Full-engine property: the adjoint gradient agrees with central finite
  // differences of evaluate() on every backend.
  for (const std::string& name : kn::available()) {
    BackendGuard g(name);
    ASSERT_TRUE(g.ok());

    Rng rng(21);
    const int n = 6;
    Graph graph = erdos_renyi(n, 0.5, rng);
    dvec table = tabulate(StateSpace::full(n),
                          [&graph](state_t x) { return maxcut(graph, x); });
    XMixer mixer = XMixer::transverse_field(n);
    Qaoa engine(mixer, table, 2);

    std::vector<double> angles = {0.37, -0.82, 0.55, 1.21};
    std::vector<double> grad(4);
    AdjointDifferentiator diff(engine);
    diff.value_and_gradient_packed(angles, grad);

    const double h = 1e-6;
    for (std::size_t j = 0; j < angles.size(); ++j) {
      std::vector<double> plus = angles;
      std::vector<double> minus = angles;
      plus[j] += h;
      minus[j] -= h;
      const double fd =
          (engine.run_packed(plus) - engine.run_packed(minus)) / (2.0 * h);
      EXPECT_NEAR(grad[j], fd, 1e-5)
          << name << " angle index " << j;
    }
  }
}

TEST(Kernels, ThreadCountInvariancePerBackend) {
  // The determinism contract: fixed-order reductions make every kernel
  // bit-identical at 1 thread and 4 threads. Sizes sit above every serial
  // threshold so the parallel paths actually run.
  std::mt19937_64 gen(29);
  const index_t n = 1 << 15;
  const cvec base = random_state(gen, n);
  const cvec other = random_state(gen, n);
  const auto d = random_diag(gen, n);
  const auto obj = random_diag(gen, n, 2.0);

  for (const std::string& name : kn::available()) {
    BackendGuard g(name);
    ASSERT_TRUE(g.ok());
    const kn::KernelBackend& k = kn::active();

    struct Results {
      cvec pwe_state;
      double pwe = 0.0, nsq = 0.0, de = 0.0, bi = 0.0, mad = 0.0;
      kn::CplxSum dot{}, vsum{};
    };
    auto run_all = [&](int threads) {
      set_num_threads(threads);
      Results r;
      r.pwe_state = base;
      r.pwe = k.phase_wht_expect(r.pwe_state.data(), d.data(), 0.73,
                                 1.0 / static_cast<double>(n), obj.data(),
                                 n);
      r.nsq = k.norm_sq(base.data(), n);
      r.de = k.diag_expectation(d.data(), base.data(), n);
      r.bi = k.diag_bracket_imag(base.data(), d.data(), other.data(), n);
      r.mad = k.max_abs_diff(base.data(), other.data(), n);
      r.dot = k.dot(base.data(), other.data(), n);
      r.vsum = k.vsum(base.data(), n);
      return r;
    };

    const int restore = num_threads();
    const Results one = run_all(1);
    const Results four = run_all(4);
    set_num_threads(restore);

    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(one.pwe_state[i], four.pwe_state[i])
          << name << " state index " << i;
    }
    EXPECT_EQ(one.pwe, four.pwe) << name;
    EXPECT_EQ(one.nsq, four.nsq) << name;
    EXPECT_EQ(one.de, four.de) << name;
    EXPECT_EQ(one.bi, four.bi) << name;
    EXPECT_EQ(one.mad, four.mad) << name;
    EXPECT_EQ(one.dot.re, four.dot.re) << name;
    EXPECT_EQ(one.dot.im, four.dot.im) << name;
    EXPECT_EQ(one.vsum.re, four.vsum.re) << name;
    EXPECT_EQ(one.vsum.im, four.vsum.im) << name;
  }
}

TEST(Kernels, EvaluateParityAcrossBackendsThroughEngine) {
  // End-to-end: the same plan evaluated on every backend agrees to 1e-13.
  Rng rng(31);
  const int n = 8;
  Graph graph = erdos_renyi(n, 0.5, rng);
  dvec table = tabulate(StateSpace::full(n),
                        [&graph](state_t x) { return maxcut(graph, x); });
  XMixer mixer = XMixer::transverse_field(n);
  std::vector<double> angles = {0.4, 0.9, 1.3, 0.7};

  ASSERT_TRUE(kn::select("scalar"));
  Qaoa ref_engine(mixer, table, 2);
  const double ref = ref_engine.run_packed(angles);
  for (const std::string& name : simd_backends()) {
    BackendGuard g(name);
    ASSERT_TRUE(g.ok());
    Qaoa engine(mixer, table, 2);
    EXPECT_LT(rel_err(engine.run_packed(angles), ref), kParityTol) << name;
  }
  kn::select("auto");
}

// ---------------------------------------------------------------------------
// ShardedState unit suite. Runs under TSan in CI together with
// ShardInvariance.* (the thread-sweeping variants live in
// ShardInvarianceThreads.* and are excluded there).
// ---------------------------------------------------------------------------

/// RAII: pin FASTQAOA_SHARDS for one test, restore the previous value after.
class ShardEnvGuard {
 public:
  explicit ShardEnvGuard(const char* value) {
    const char* prev = std::getenv("FASTQAOA_SHARDS");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    if (value != nullptr) {
      setenv("FASTQAOA_SHARDS", value, 1);
    } else {
      unsetenv("FASTQAOA_SHARDS");
    }
  }
  ~ShardEnvGuard() {
    if (had_prev_) {
      setenv("FASTQAOA_SHARDS", prev_.c_str(), 1);
    } else {
      unsetenv("FASTQAOA_SHARDS");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST(ShardedState, ExchangeScheduleIsHypercube) {
  const int k = 8;  // log2(K) = 3 cross stages
  for (int stage = 0; stage < 3; ++stage) {
    for (int s = 0; s < k; ++s) {
      const int partner = linalg::shard_exchange_partner(s, stage);
      ASSERT_GE(partner, 0);
      ASSERT_LT(partner, k);
      EXPECT_NE(partner, s);
      // Involution: the partner's partner is the original shard.
      EXPECT_EQ(linalg::shard_exchange_partner(partner, stage), s);
      // The pair differs in exactly the stage bit.
      EXPECT_EQ((s ^ partner), 1 << stage);
    }
  }
}

TEST(ShardedState, PlanShardsPolicy) {
  ShardEnvGuard env(nullptr);
  // Explicit request, large state: honored (floor-pow2).
  EXPECT_EQ(plan_shards(index_t{1} << 15, 4).shards, 4);
  EXPECT_EQ(plan_shards(index_t{1} << 15, 4).source, "request");
  EXPECT_EQ(plan_shards(index_t{1} << 15, 3).shards, 2);
  // Small states clamp to one shard no matter what was asked.
  EXPECT_EQ(plan_shards(1024, 8).shards, 1);
  EXPECT_EQ(plan_shards(kMinShardElems, 2).shards, 1);
  // The env var fills in when no explicit request is made, and loses to one.
  ShardEnvGuard env2("2");
  EXPECT_EQ(plan_shards(index_t{1} << 15, 0).shards, 2);
  EXPECT_EQ(plan_shards(index_t{1} << 15, 0).source, "env");
  EXPECT_EQ(plan_shards(index_t{1} << 15, 4).shards, 4);
  EXPECT_EQ(shard_request(0), 2);
  EXPECT_EQ(shard_request(4), 4);
}

TEST(ShardedState, FirstTouchZeroFillAndGeometry) {
  const index_t n = index_t{1} << 15;
  linalg::ShardedState s(n, 4);
  ASSERT_EQ(s.size(), n);
  EXPECT_EQ(s.shards(), 4);
  EXPECT_EQ(s.shard_elems(), n / 4);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(s.shard_data(k), s.data() + (n / 4) * k);
  }
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(s[i], (cplx{0.0, 0.0})) << "index " << i;
  }
}

TEST(ShardedState, ResizePreservesPrefix) {
  std::mt19937_64 gen(41);
  const index_t n = index_t{1} << 13;
  const cvec pattern = random_state(gen, n);
  linalg::ShardedState s;
  s = pattern;
  ASSERT_EQ(s.size(), n);
  // Growing reallocates: the prefix is carried over, new tail is zeroed.
  s.resize(4 * n);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(s[i], pattern[i]) << "index " << i;
  }
  for (index_t i = n; i < 4 * n; ++i) {
    ASSERT_EQ(s[i], (cplx{0.0, 0.0})) << "index " << i;
  }
  // Shrinking reuses storage and keeps the prefix.
  s.resize(n / 2);
  for (index_t i = 0; i < n / 2; ++i) {
    ASSERT_EQ(s[i], pattern[i]) << "index " << i;
  }
}

TEST(ShardedState, CopyAssignPropagatesShardRequest) {
  std::mt19937_64 gen(43);
  const index_t n = index_t{1} << 15;
  linalg::ShardedState a(n, 4);
  {
    const cvec pattern = random_state(gen, n);
    a = pattern;  // keeps the request, fills the contents
    a.set_shard_request(4);
  }
  linalg::ShardedState b;
  b = a;
  EXPECT_EQ(b.shard_request(), a.shard_request());
  EXPECT_EQ(b.shards(), a.shards());
  ASSERT_EQ(b.size(), a.size());
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(b[i], a[i]) << "index " << i;
  }
}

TEST(ShardedState, TrackerCountsPaddedBytes) {
  // Pick a size whose raw byte count is not 64-byte aligned so the padded
  // accounting is observable.
  const index_t n = 1001;
  const std::size_t baseline = MemoryTracker::current_bytes();
  {
    linalg::ShardedState s(n);
    const std::size_t delta = MemoryTracker::current_bytes() - baseline;
    EXPECT_EQ(delta, tracked_alloc_bytes(n * sizeof(cplx)));
    EXPECT_GT(delta, n * sizeof(cplx));  // padding is part of the count
  }
  EXPECT_EQ(MemoryTracker::current_bytes(), baseline);
}

TEST(ShardedState, FixedOrderReductionMatchesMonolithic) {
  // The sharded expectation drivers must reproduce the monolithic kernels
  // bit for bit: shard partial sums are folded in fixed shard order with
  // the same association as the blocked serial fold.
  std::mt19937_64 gen(47);
  const index_t n = index_t{1} << 15;
  const cvec base = random_state(gen, n);
  const auto obj = random_diag(gen, n, 2.0);
  const auto d = random_diag(gen, n);

  for (const std::string& name : kn::available()) {
    BackendGuard g(name);
    ASSERT_TRUE(g.ok());
    const kn::KernelBackend& k = kn::active();

    cvec mono = base;
    const double mono_e = k.wht_expect(mono.data(), obj.data(), n);
    cvec mono_p = base;
    const double mono_pe = k.phase_wht_expect(
        mono_p.data(), d.data(), 0.61, 1.0 / static_cast<double>(n),
        obj.data(), n);

    for (const int shards : {1, 2, 4}) {
      cvec sh = base;
      const double e = k.wht_expect_sharded(sh.data(), obj.data(), n, shards);
      EXPECT_EQ(e, mono_e) << name << " shards=" << shards;
      for (index_t i = 0; i < n; ++i) {
        ASSERT_EQ(sh[i], mono[i])
            << name << " shards=" << shards << " index " << i;
      }
      cvec shp = base;
      const double pe = k.phase_wht_expect_sharded(
          shp.data(), d.data(), 0.61, 1.0 / static_cast<double>(n),
          obj.data(), n, shards);
      EXPECT_EQ(pe, mono_pe) << name << " shards=" << shards;
      for (index_t i = 0; i < n; ++i) {
        ASSERT_EQ(shp[i], mono_p[i])
            << name << " shards=" << shards << " index " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Shard-count invariance through the full engine: evaluate, evaluate_batch,
// and the adjoint gradient are bit-identical at every shard count, on every
// backend. Sizes are chosen so the sharded drivers actually engage
// (dim / shards stays >= kMinShardElems and block-aligned).
// ---------------------------------------------------------------------------

struct ShardFixture {
  Graph graph;
  dvec table;
  XMixer mixer;
  std::vector<double> angles;

  static ShardFixture make() {
    Rng rng(53);
    const int n = 15;  // dim 32768: four shards of 8192 >= kMinShardElems
    Graph g = erdos_renyi(n, 0.3, rng);
    dvec t = tabulate(StateSpace::full(n),
                      [&g](state_t x) { return maxcut(g, x); });
    return ShardFixture{std::move(g), std::move(t),
                        XMixer::transverse_field(n),
                        {0.37, -0.82, 0.55, 1.21}};
  }
};

TEST(ShardInvariance, EvaluateBitIdenticalAcrossShardCounts) {
  ShardEnvGuard env(nullptr);
  ShardFixture fx = ShardFixture::make();
  for (const std::string& name : kn::available()) {
    BackendGuard g(name);
    ASSERT_TRUE(g.ok());
    QaoaPlan plan(fx.mixer, fx.table, 2);

    EvalWorkspace ref_ws;
    ref_ws.shards = 1;
    const double ref = evaluate_packed(plan, ref_ws, fx.angles);
    const cvec ref_state = ref_ws.psi.to_vec();

    for (const int shards : {2, 4}) {
      EvalWorkspace ws;
      ws.shards = shards;
      const double got = evaluate_packed(plan, ws, fx.angles);
      EXPECT_EQ(got, ref) << name << " shards=" << shards;
      ASSERT_EQ(ws.psi.size(), ref_state.size());
      EXPECT_EQ(ws.psi.shards(), shards) << name;
      for (index_t i = 0; i < plan.dim(); ++i) {
        ASSERT_EQ(ws.psi[i], ref_state[i])
            << name << " shards=" << shards << " index " << i;
      }
    }
  }
}

TEST(ShardInvariance, EvaluateBatchBitIdenticalAcrossShardCounts) {
  ShardEnvGuard env(nullptr);
  ShardFixture fx = ShardFixture::make();
  // Three lanes, each its own packed angle set.
  const std::vector<double> betas = {0.37, 0.55, -0.2, 0.9, 1.1, -0.6};
  const std::vector<double> gammas = {-0.82, 1.21, 0.3, -0.4, 0.77, 0.05};
  constexpr int kLanes = 3;

  for (const std::string& name : kn::available()) {
    BackendGuard g(name);
    ASSERT_TRUE(g.ok());
    QaoaPlan plan(fx.mixer, fx.table, 2);

    EvalWorkspace ref_ws;
    ref_ws.shards = 1;
    std::vector<double> ref_out(kLanes);
    evaluate_batch(plan, ref_ws, betas, gammas, ref_out);

    for (const int shards : {2, 4}) {
      EvalWorkspace ws;
      ws.shards = shards;
      std::vector<double> out(kLanes);
      evaluate_batch(plan, ws, betas, gammas, out);
      for (int l = 0; l < kLanes; ++l) {
        EXPECT_EQ(out[l], ref_out[l])
            << name << " shards=" << shards << " lane " << l;
        const cplx* got = ws.lane_state(l);
        const cplx* ref = ref_ws.lane_state(l);
        for (index_t i = 0; i < plan.dim(); ++i) {
          ASSERT_EQ(got[i], ref[i])
              << name << " shards=" << shards << " lane " << l << " index "
              << i;
        }
      }
    }
  }
}

TEST(ShardInvariance, AdjointBitIdenticalAcrossShardCounts) {
  ShardEnvGuard env(nullptr);
  ShardFixture fx = ShardFixture::make();
  for (const std::string& name : kn::available()) {
    BackendGuard g(name);
    ASSERT_TRUE(g.ok());
    QaoaPlan plan(fx.mixer, fx.table, 2);

    EvalWorkspace ref_ws;
    ref_ws.shards = 1;
    AdjointDifferentiator ref_diff(plan, ref_ws);
    std::vector<double> ref_grad(fx.angles.size());
    const double ref = ref_diff.value_and_gradient_packed(fx.angles, ref_grad);

    for (const int shards : {2, 4}) {
      EvalWorkspace ws;
      ws.shards = shards;
      AdjointDifferentiator diff(plan, ws);
      std::vector<double> grad(fx.angles.size());
      const double got = diff.value_and_gradient_packed(fx.angles, grad);
      EXPECT_EQ(got, ref) << name << " shards=" << shards;
      for (std::size_t j = 0; j < grad.size(); ++j) {
        EXPECT_EQ(grad[j], ref_grad[j])
            << name << " shards=" << shards << " angle " << j;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Thread x shard sweeps. Kept in their own suite (ShardInvarianceThreads)
// so the TSan CI leg can run ShardedState.* / ShardInvariance.* without
// also paying for (and fighting with) OpenMP thread-count churn.
// ---------------------------------------------------------------------------

TEST(ShardInvarianceThreads, EvaluateBitIdenticalAcrossShardAndThreadCounts) {
  ShardEnvGuard env(nullptr);
  ShardFixture fx = ShardFixture::make();
  const int restore = num_threads();
  for (const std::string& name : kn::available()) {
    BackendGuard g(name);
    ASSERT_TRUE(g.ok());
    QaoaPlan plan(fx.mixer, fx.table, 2);

    set_num_threads(1);
    EvalWorkspace ref_ws;
    ref_ws.shards = 1;
    const double ref = evaluate_packed(plan, ref_ws, fx.angles);
    const cvec ref_state = ref_ws.psi.to_vec();

    for (const int threads : {1, 4}) {
      for (const int shards : {1, 4}) {
        set_num_threads(threads);
        EvalWorkspace ws;
        ws.shards = shards;
        const double got = evaluate_packed(plan, ws, fx.angles);
        EXPECT_EQ(got, ref)
            << name << " threads=" << threads << " shards=" << shards;
        for (index_t i = 0; i < plan.dim(); ++i) {
          ASSERT_EQ(ws.psi[i], ref_state[i])
              << name << " threads=" << threads << " shards=" << shards
              << " index " << i;
        }
      }
    }
  }
  set_num_threads(restore);
}

TEST(ShardInvarianceThreads, AdjointBitIdenticalAcrossShardAndThreadCounts) {
  ShardEnvGuard env(nullptr);
  ShardFixture fx = ShardFixture::make();
  const int restore = num_threads();
  BackendGuard g("scalar");
  ASSERT_TRUE(g.ok());
  QaoaPlan plan(fx.mixer, fx.table, 2);

  set_num_threads(1);
  EvalWorkspace ref_ws;
  ref_ws.shards = 1;
  AdjointDifferentiator ref_diff(plan, ref_ws);
  std::vector<double> ref_grad(fx.angles.size());
  const double ref = ref_diff.value_and_gradient_packed(fx.angles, ref_grad);

  for (const int threads : {1, 4}) {
    for (const int shards : {1, 4}) {
      set_num_threads(threads);
      EvalWorkspace ws;
      ws.shards = shards;
      AdjointDifferentiator diff(plan, ws);
      std::vector<double> grad(fx.angles.size());
      const double got = diff.value_and_gradient_packed(fx.angles, grad);
      EXPECT_EQ(got, ref) << "threads=" << threads << " shards=" << shards;
      for (std::size_t j = 0; j < grad.size(); ++j) {
        EXPECT_EQ(grad[j], ref_grad[j])
            << "threads=" << threads << " shards=" << shards << " angle "
            << j;
      }
    }
  }
  set_num_threads(restore);
}

}  // namespace
}  // namespace fastqaoa
