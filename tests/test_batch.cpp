// Batched multi-angle evaluation suite (core/plan.hpp evaluate_batch).
//
// The contract under test is bit-identity: evaluate_batch must produce, lane
// for lane, the exact doubles (and the exact final statevectors) of B
// sequential evaluate() calls — on every kernel backend this CPU supports,
// at any thread count, at any batch width. Comparisons below use memcmp,
// not tolerances: batching is allowed to reorder execution, never to
// re-associate arithmetic.

#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "autodiff/adjoint.hpp"
#include "autodiff/finite_diff.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"
#include "core/plan.hpp"
#include "linalg/kernels/kernels.hpp"
#include "mixers/grover_mixer.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"

namespace fastqaoa {
namespace {

namespace kn = linalg::kernels;

/// RAII: pin a backend for one test, restore auto-detection after.
class BackendGuard {
 public:
  explicit BackendGuard(const std::string& name) { ok_ = kn::select(name); }
  ~BackendGuard() { kn::select("auto"); }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  bool ok_ = false;
};

/// MaxCut objective on a random graph — integer-valued, so the plan's
/// phase dictionary is valid and the quantized batch route engages.
dvec maxcut_objective(int n, std::uint64_t seed) {
  Rng rng(seed);
  Graph g = erdos_renyi(n, 0.5, rng);
  return tabulate(StateSpace::full(n),
                  [&g](state_t x) { return maxcut(g, x); });
}

/// Lane-major random angle draws for B lanes of (nb betas, ng gammas).
struct AngleSet {
  std::vector<double> betas;
  std::vector<double> gammas;
};

AngleSet random_angles(int lanes, int nb, int ng, std::uint64_t seed) {
  Rng rng(seed);
  AngleSet a;
  a.betas.resize(static_cast<std::size_t>(lanes) * nb);
  a.gammas.resize(static_cast<std::size_t>(lanes) * ng);
  for (double& b : a.betas) b = rng.uniform(0.0, 2.0 * kPi);
  for (double& g : a.gammas) g = rng.uniform(0.0, 2.0 * kPi);
  return a;
}

/// Core bit-identity check: evaluate_batch vs lane-by-lane evaluate() on
/// the given plan — expectations AND final statevectors compared bytewise.
void expect_batch_bitwise(const QaoaPlan& plan, int lanes,
                          std::uint64_t angle_seed) {
  const int nb = plan.num_betas();
  const int ng = plan.num_gammas();
  const AngleSet a = random_angles(lanes, nb, ng, angle_seed);

  EvalWorkspace ws_batch;
  std::vector<double> got(static_cast<std::size_t>(lanes));
  evaluate_batch(plan, ws_batch, a.betas, a.gammas, got);

  EvalWorkspace ws_seq;
  for (int l = 0; l < lanes; ++l) {
    const double want = evaluate(
        plan, ws_seq,
        std::span<const double>(a.betas.data() + static_cast<std::size_t>(l) * nb,
                                static_cast<std::size_t>(nb)),
        std::span<const double>(a.gammas.data() + static_cast<std::size_t>(l) * ng,
                                static_cast<std::size_t>(ng)));
    EXPECT_EQ(0, std::memcmp(&want, &got[static_cast<std::size_t>(l)],
                             sizeof(double)))
        << "lane " << l << ": batch " << got[static_cast<std::size_t>(l)]
        << " vs sequential " << want;
    EXPECT_EQ(0, std::memcmp(ws_seq.psi.data(), ws_batch.lane_state(l),
                             plan.dim() * sizeof(cplx)))
        << "lane " << l << " final state differs from sequential evaluate()";
  }
}

class BatchBackendTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BatchBackendTest, BitIdenticalToSequentialAcrossWidthsAndThreads) {
  BackendGuard guard(GetParam());
  if (!guard.ok()) GTEST_SKIP() << "backend unavailable: " << GetParam();

  const dvec obj = maxcut_objective(8, 42);
  const XMixer mixer = XMixer::transverse_field(8);
  const QaoaPlan plan(mixer, obj, 2);

  for (const int threads : {1, 4}) {
    set_num_threads(threads);
    for (const int lanes : {1, 3, 16}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " lanes=" + std::to_string(lanes));
      expect_batch_bitwise(plan, lanes, 1234);
    }
  }
  set_num_threads(0);
}

TEST_P(BatchBackendTest, BlockedDriverBitIdentity) {
  BackendGuard guard(GetParam());
  if (!guard.ok()) GTEST_SKIP() << "backend unavailable: " << GetParam();
  // dim 8192 exceeds the serial-transform threshold (2^12), so the batched
  // blocked driver runs — including the quantized phase route on every
  // backend. The small-dim tests above cover the per-lane serial path; this
  // pins the other regime.
  const dvec obj = maxcut_objective(13, 19);
  const XMixer mixer = XMixer::transverse_field(13);
  const QaoaPlan plan(mixer, obj, 2);
  for (const int threads : {1, 4}) {
    set_num_threads(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_batch_bitwise(plan, 4, 271);
  }
  set_num_threads(0);
}

TEST_P(BatchBackendTest, DeepCircuitBitIdentity) {
  BackendGuard guard(GetParam());
  if (!guard.ok()) GTEST_SKIP() << "backend unavailable: " << GetParam();
  const dvec obj = maxcut_objective(7, 7);
  const XMixer mixer = XMixer::transverse_field(7);
  const QaoaPlan plan(mixer, obj, 5);  // p > 1: interior fused rounds
  expect_batch_bitwise(plan, 8, 99);
}

TEST_P(BatchBackendTest, MultiMixerLayersUseExtraBetaPath) {
  BackendGuard guard(GetParam());
  if (!guard.ok()) GTEST_SKIP() << "backend unavailable: " << GetParam();
  // Two mixers per round: num_betas = 2p, so batched rounds take the
  // apply_exp_batch (plain-WHT) continuation instead of the fused tail.
  const dvec obj = maxcut_objective(6, 11);
  const XMixer mixer = XMixer::transverse_field(6);
  std::vector<MixerLayer> layers(2);
  for (MixerLayer& layer : layers) layer.mixers = {&mixer, &mixer};
  const QaoaPlan plan(std::move(layers), obj);
  ASSERT_EQ(plan.num_betas(), 4);
  expect_batch_bitwise(plan, 5, 17);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BatchBackendTest,
                         ::testing::ValuesIn(kn::available()));

TEST(BatchEvaluate, GroverMixerFallbackIsBitIdentical) {
  // GroverMixer has no batch override — the Mixer base class bounces each
  // lane through the single-state virtuals. Same bit-identity contract.
  const dvec obj = maxcut_objective(6, 3);
  const GroverMixer mixer(obj.size());
  const QaoaPlan plan(mixer, obj, 2);
  expect_batch_bitwise(plan, 4, 55);
}

TEST(BatchEvaluate, PackedLanesMatchUnpacked) {
  const dvec obj = maxcut_objective(8, 21);
  const XMixer mixer = XMixer::transverse_field(8);
  const QaoaPlan plan(mixer, obj, 3);
  const int p = plan.rounds();
  const int lanes = 6;
  const AngleSet a = random_angles(lanes, p, p, 777);

  // Interleave into packed lanes: [betas_l..., gammas_l...] per lane.
  std::vector<double> packed(static_cast<std::size_t>(lanes) * 2 * p);
  for (int l = 0; l < lanes; ++l) {
    for (int i = 0; i < p; ++i) {
      packed[static_cast<std::size_t>(l * 2 * p + i)] =
          a.betas[static_cast<std::size_t>(l * p + i)];
      packed[static_cast<std::size_t>(l * 2 * p + p + i)] =
          a.gammas[static_cast<std::size_t>(l * p + i)];
    }
  }

  EvalWorkspace ws1;
  std::vector<double> unpacked_out(static_cast<std::size_t>(lanes));
  evaluate_batch(plan, ws1, a.betas, a.gammas, unpacked_out);
  EvalWorkspace ws2;
  std::vector<double> packed_out(static_cast<std::size_t>(lanes));
  evaluate_batch_packed(plan, ws2, packed, packed_out);

  EXPECT_EQ(0, std::memcmp(unpacked_out.data(), packed_out.data(),
                           static_cast<std::size_t>(lanes) * sizeof(double)));
}

TEST(BatchEvaluate, SingleLaneSharesSinglePointBuffers) {
  const dvec obj = maxcut_objective(6, 5);
  const XMixer mixer = XMixer::transverse_field(6);
  const QaoaPlan plan(mixer, obj, 1);
  EvalWorkspace ws;
  const AngleSet a = random_angles(1, 1, 1, 31);
  std::vector<double> out(1);
  evaluate_batch(plan, ws, a.betas, a.gammas, out);
  // B == 1 delegates to evaluate(): lane 0 IS the single-point state.
  EXPECT_EQ(ws.lane_state(0), ws.psi.data());
  EXPECT_EQ(0, std::memcmp(&ws.expectation, out.data(), sizeof(double)));
}

TEST(BatchEvaluate, BatchedFiniteDiffMatchesSequentialBitwise) {
  const dvec obj = maxcut_objective(8, 13);
  const XMixer mixer = XMixer::transverse_field(8);
  const QaoaPlan plan(mixer, obj, 3);
  const int p = plan.rounds();
  const AngleSet a = random_angles(1, p, p, 4321);

  auto run = [&](int eval_batch, std::vector<double>& grad) -> double {
    EvalWorkspace ws;
    FiniteDiffDifferentiator fd(plan, ws);
    fd.set_eval_batch(eval_batch);
    grad.assign(static_cast<std::size_t>(2 * p), 0.0);
    return fd.value_and_gradient(
        a.betas, a.gammas,
        std::span<double>(grad.data(), static_cast<std::size_t>(p)),
        std::span<double>(grad.data() + p, static_cast<std::size_t>(p)));
  };

  std::vector<double> grad_seq;
  std::vector<double> grad_batched;
  const double v_seq = run(1, grad_seq);
  const double v_batched = run(8, grad_batched);
  EXPECT_EQ(0, std::memcmp(&v_seq, &v_batched, sizeof(double)));
  EXPECT_EQ(0, std::memcmp(grad_seq.data(), grad_batched.data(),
                           grad_seq.size() * sizeof(double)));
}

TEST(BatchEvaluate, AdjointAgreesWithBatchedFiniteDiff) {
  const dvec obj = maxcut_objective(8, 29);
  const XMixer mixer = XMixer::transverse_field(8);
  const QaoaPlan plan(mixer, obj, 2);
  const int p = plan.rounds();
  const AngleSet a = random_angles(1, p, p, 86);

  EvalWorkspace ws_fd;
  FiniteDiffDifferentiator fd(plan, ws_fd);
  fd.set_eval_batch(4);
  std::vector<double> fd_gb(static_cast<std::size_t>(p));
  std::vector<double> fd_gg(static_cast<std::size_t>(p));
  const double v_fd = fd.value_and_gradient(a.betas, a.gammas, fd_gb, fd_gg);

  EvalWorkspace ws_ad;
  std::vector<double> ad_gb(static_cast<std::size_t>(p));
  std::vector<double> ad_gg(static_cast<std::size_t>(p));
  const double v_ad = adjoint_value_and_gradient(plan, ws_ad, a.betas,
                                                 a.gammas, ad_gb, ad_gg);

  EXPECT_NEAR(v_fd, v_ad, 1e-9);
  for (int i = 0; i < p; ++i) {
    EXPECT_NEAR(fd_gb[static_cast<std::size_t>(i)],
                ad_gb[static_cast<std::size_t>(i)], 1e-5);
    EXPECT_NEAR(fd_gg[static_cast<std::size_t>(i)],
                ad_gg[static_cast<std::size_t>(i)], 1e-5);
  }
}

TEST(BatchEvaluate, CustomPhaseTableBitIdentity) {
  // Threshold-style custom phase separator: the phase dictionary comes from
  // the phase table, not the objective — both dictionaries must engage
  // without breaking bit-identity.
  const dvec obj = maxcut_objective(7, 61);
  dvec phase(obj.size());
  for (std::size_t i = 0; i < obj.size(); ++i) {
    phase[i] = obj[i] >= 4.0 ? 1.0 : 0.0;
  }
  QaoaPlanOptions options;
  options.phase_values = phase;
  const XMixer mixer = XMixer::transverse_field(7);
  const QaoaPlan plan(mixer, obj, 2, std::move(options));
  expect_batch_bitwise(plan, 6, 91);
}

}  // namespace
}  // namespace fastqaoa
