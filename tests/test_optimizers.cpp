// Unit tests for the classical optimizers: BFGS (strong Wolfe), Nelder–Mead
// and basinhopping, on standard test functions.

#include <gtest/gtest.h>

#include <cmath>

#include "anglefind/basinhopping.hpp"
#include "anglefind/bfgs.hpp"
#include "anglefind/nelder_mead.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace fastqaoa {
namespace {

/// Convex quadratic f = sum (x_i - i)^2.
double quadratic(std::span<const double> x, std::span<double> g) {
  double f = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - static_cast<double>(i);
    f += d * d;
    if (!g.empty()) g[i] = 2.0 * d;
  }
  return f;
}

/// Rosenbrock banana in 2D.
double rosenbrock(std::span<const double> x, std::span<double> g) {
  const double a = 1.0 - x[0];
  const double b = x[1] - x[0] * x[0];
  const double f = a * a + 100.0 * b * b;
  if (!g.empty()) {
    g[0] = -2.0 * a - 400.0 * x[0] * b;
    g[1] = 200.0 * b;
  }
  return f;
}

/// Rastrigin: highly multimodal, global minimum 0 at the origin.
double rastrigin(std::span<const double> x, std::span<double> g) {
  double f = 10.0 * static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    f += x[i] * x[i] - 10.0 * std::cos(2.0 * kPi * x[i]);
    if (!g.empty()) {
      g[i] = 2.0 * x[i] + 20.0 * kPi * std::sin(2.0 * kPi * x[i]);
    }
  }
  return f;
}

TEST(Bfgs, SolvesQuadraticExactly) {
  OptResult res = bfgs_minimize(quadratic, {5.0, -3.0, 10.0});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.f, 0.0, 1e-12);
  EXPECT_NEAR(res.x[0], 0.0, 1e-6);
  EXPECT_NEAR(res.x[1], 1.0, 1e-6);
  EXPECT_NEAR(res.x[2], 2.0, 1e-6);
}

TEST(Bfgs, SolvesRosenbrock) {
  OptResult res = bfgs_minimize(rosenbrock, {-1.2, 1.0});
  EXPECT_NEAR(res.f, 0.0, 1e-10);
  EXPECT_NEAR(res.x[0], 1.0, 1e-4);
  EXPECT_NEAR(res.x[1], 1.0, 1e-4);
}

TEST(Bfgs, StartingAtOptimumConvergesImmediately) {
  OptResult res = bfgs_minimize(quadratic, {0.0, 1.0, 2.0});
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
  EXPECT_NEAR(res.f, 0.0, 1e-14);
}

TEST(Bfgs, RespectsIterationCap) {
  BfgsOptions opt;
  opt.max_iterations = 2;
  OptResult res = bfgs_minimize(rosenbrock, {-1.2, 1.0}, opt);
  EXPECT_LE(res.iterations, 2);
}

TEST(Bfgs, HandlesTrigObjective) {
  // f = -cos(x) cos(y) has a minimum of -1 at the origin.
  auto fn = [](std::span<const double> x, std::span<double> g) {
    const double f = -std::cos(x[0]) * std::cos(x[1]);
    if (!g.empty()) {
      g[0] = std::sin(x[0]) * std::cos(x[1]);
      g[1] = std::cos(x[0]) * std::sin(x[1]);
    }
    return f;
  };
  OptResult res = bfgs_minimize(fn, {0.4, -0.3});
  EXPECT_NEAR(res.f, -1.0, 1e-10);
}

TEST(Bfgs, EmptyStartThrows) {
  EXPECT_THROW(bfgs_minimize(quadratic, {}), Error);
}

TEST(Bfgs, CountsEvaluations) {
  OptResult res = bfgs_minimize(rosenbrock, {-1.2, 1.0});
  EXPECT_GT(res.evaluations, 10u);
  EXPECT_LT(res.evaluations, 1000u);
}

TEST(NelderMead, SolvesQuadratic) {
  auto plain = [](std::span<const double> x) {
    double f = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - static_cast<double>(i);
      f += d * d;
    }
    return f;
  };
  OptResult res = nelder_mead_minimize(plain, {3.0, -2.0});
  EXPECT_NEAR(res.f, 0.0, 1e-8);
  EXPECT_NEAR(res.x[0], 0.0, 1e-4);
  EXPECT_NEAR(res.x[1], 1.0, 1e-4);
}

TEST(NelderMead, SolvesRosenbrockSlowly) {
  auto plain = [](std::span<const double> x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opt;
  opt.max_iterations = 5000;
  OptResult res = nelder_mead_minimize(plain, {-1.2, 1.0}, opt);
  EXPECT_NEAR(res.f, 0.0, 1e-6);
}

TEST(NelderMead, EmptyStartThrows) {
  auto plain = [](std::span<const double>) { return 0.0; };
  EXPECT_THROW(nelder_mead_minimize(plain, {}), Error);
}

TEST(NoGradient, WrapperRefusesGradientRequests) {
  GradObjective fn = no_gradient([](std::span<const double> x) {
    return x[0] * x[0];
  });
  std::vector<double> x = {2.0};
  EXPECT_DOUBLE_EQ(fn(x, {}), 4.0);
  std::vector<double> g(1);
  EXPECT_THROW(fn(x, g), Error);
}

TEST(BasinHopping, EscapesLocalMinimaOfRastrigin) {
  // BFGS alone from (2.1, -1.9) lands in a nearby local minimum with
  // f ≈ 4+; basinhopping must find a basin at least as good, and with
  // enough hops the global one.
  OptResult local = bfgs_minimize(rastrigin, {2.1, -1.9});
  EXPECT_GT(local.f, 1.0);  // stuck

  Rng rng(123);
  BasinHoppingOptions opt;
  opt.hops = 60;
  opt.step_size = 1.0;
  OptResult global = basinhopping(rastrigin, {2.1, -1.9}, rng, opt);
  EXPECT_LT(global.f, local.f + 1e-9);
  EXPECT_NEAR(global.f, 0.0, 1e-6);
  EXPECT_NEAR(global.x[0], 0.0, 1e-3);
  EXPECT_NEAR(global.x[1], 0.0, 1e-3);
}

TEST(BasinHopping, DeterministicPerSeed) {
  Rng a(7), b(7);
  BasinHoppingOptions opt;
  opt.hops = 10;
  OptResult r1 = basinhopping(rastrigin, {1.0, 1.0}, a, opt);
  OptResult r2 = basinhopping(rastrigin, {1.0, 1.0}, b, opt);
  EXPECT_DOUBLE_EQ(r1.f, r2.f);
  EXPECT_EQ(r1.x, r2.x);
}

TEST(BasinHopping, GreedyTemperatureZeroNeverWorsens) {
  Rng rng(9);
  BasinHoppingOptions opt;
  opt.hops = 15;
  opt.temperature = 0.0;
  OptResult res = basinhopping(rastrigin, {3.0, 3.0}, rng, opt);
  OptResult start = bfgs_minimize(rastrigin, {3.0, 3.0});
  EXPECT_LE(res.f, start.f + 1e-12);
}

TEST(BasinHopping, EarlyStopOnStaleHops) {
  Rng rng(11);
  BasinHoppingOptions opt;
  opt.hops = 1000;
  opt.no_improvement_limit = 3;
  OptResult res = basinhopping(quadratic, {1.0, 1.0, 1.0}, rng, opt);
  // Quadratic has one basin: after 3 stale hops it must stop long before
  // 1000 iterations.
  EXPECT_LT(res.iterations, 20);
  EXPECT_NEAR(res.f, 0.0, 1e-10);
}

TEST(BasinHopping, ValidatesArguments) {
  Rng rng(1);
  EXPECT_THROW(basinhopping(quadratic, {}, rng), Error);
  BasinHoppingOptions opt;
  opt.hops = 0;
  EXPECT_THROW(basinhopping(quadratic, {1.0}, rng, opt), Error);
}

}  // namespace
}  // namespace fastqaoa
