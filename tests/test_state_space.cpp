// Unit tests for the feasible-set abstraction (full basis vs Dicke subspace).

#include <gtest/gtest.h>

#include "problems/state_space.hpp"

namespace fastqaoa {
namespace {

TEST(StateSpace, FullBasisIsIdentityIndexed) {
  StateSpace space = StateSpace::full(5);
  EXPECT_EQ(space.n(), 5);
  EXPECT_EQ(space.k(), -1);
  EXPECT_FALSE(space.constrained());
  EXPECT_EQ(space.dim(), 32u);
  for (index_t i = 0; i < 32; ++i) {
    EXPECT_EQ(space.state(i), static_cast<state_t>(i));
    EXPECT_EQ(space.index_of(static_cast<state_t>(i)), i);
    EXPECT_TRUE(space.contains(static_cast<state_t>(i)));
  }
  EXPECT_FALSE(space.contains(state_t{1} << 5));
}

TEST(StateSpace, DickeSubspaceEnumeration) {
  StateSpace space = StateSpace::dicke(6, 2);
  EXPECT_TRUE(space.constrained());
  EXPECT_EQ(space.dim(), 15u);
  index_t count = 0;
  space.for_each([&](index_t i, state_t s) {
    EXPECT_EQ(i, count);
    EXPECT_EQ(popcount(s), 2);
    EXPECT_EQ(space.index_of(s), i);
    ++count;
  });
  EXPECT_EQ(count, 15u);
}

TEST(StateSpace, DickeContainsOnlyWeightK) {
  StateSpace space = StateSpace::dicke(6, 3);
  EXPECT_TRUE(space.contains(0b000111));
  EXPECT_FALSE(space.contains(0b001111));
  EXPECT_FALSE(space.contains(0b000011));
  EXPECT_FALSE(space.contains(state_t{0b111} << 10));  // exceeds n bits
  EXPECT_THROW((void)space.index_of(0b1111), Error);
}

TEST(StateSpace, ForEachOrderIsIncreasing) {
  StateSpace space = StateSpace::dicke(8, 4);
  state_t prev = 0;
  bool first = true;
  space.for_each([&](index_t, state_t s) {
    if (!first) {
      EXPECT_GT(s, prev);
    }
    prev = s;
    first = false;
  });
}

TEST(StateSpace, EqualityComparesShapeOnly) {
  EXPECT_EQ(StateSpace::full(4), StateSpace::full(4));
  EXPECT_FALSE(StateSpace::full(4) == StateSpace::full(5));
  EXPECT_EQ(StateSpace::dicke(6, 3), StateSpace::dicke(6, 3));
  EXPECT_FALSE(StateSpace::dicke(6, 3) == StateSpace::dicke(6, 2));
  EXPECT_FALSE(StateSpace::full(6) == StateSpace::dicke(6, 3));
}

TEST(StateSpace, ValidatesArguments) {
  EXPECT_THROW(StateSpace::full(0), Error);
  EXPECT_THROW(StateSpace::full(63), Error);
  EXPECT_THROW(StateSpace::dicke(5, 6), Error);
  EXPECT_THROW(StateSpace::dicke(5, -1), Error);
}

TEST(StateSpace, EdgeWeights) {
  EXPECT_EQ(StateSpace::dicke(6, 0).dim(), 1u);
  EXPECT_EQ(StateSpace::dicke(6, 6).dim(), 1u);
  EXPECT_EQ(StateSpace::dicke(6, 0).state(0), state_t{0});
  EXPECT_EQ(StateSpace::dicke(6, 6).state(0), state_t{0b111111});
}

}  // namespace
}  // namespace fastqaoa
