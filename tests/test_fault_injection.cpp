// Failure-path tests driven by the deterministic fault-injection harness
// (src/runtime/fault.hpp). Every test is skipped unless the build was
// configured with -DFASTQAOA_FAULT_INJECTION=ON — the dedicated CI job runs
// them; release/TSan builds compile this file to a row of skips.
//
// The crash-kill tests fork(): the child arms a crash fault, runs, and dies
// with _Exit(137) at the instrumented site; the parent reaps it and then
// resumes from the checkpoint the child left behind. gtest_discover_tests
// runs each TEST in its own process, so the fork happens before this
// process ever enters an OpenMP region (forking an initialized OpenMP
// runtime is undefined; a fresh child is fine).

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "anglefind/strategies.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"
#include "mixers/x_mixer.hpp"
#include "obs/metrics.hpp"
#include "problems/cost_functions.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/fault.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "study/ensemble.hpp"

namespace fastqaoa {
namespace {

#define SKIP_WITHOUT_FAULT_INJECTION()                                   \
  if (!fault::compiled_in()) {                                           \
    GTEST_SKIP() << "build configured with FASTQAOA_FAULT_INJECTION=OFF"; \
  }

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("fastqaoa_fault_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

struct FaultReset {
  ~FaultReset() { fault::reset(); }
};

dvec maxcut_table(const Graph& g) {
  return tabulate(StateSpace::full(g.num_vertices()),
                  [&g](state_t x) { return maxcut(g, x); });
}

FindAnglesOptions quick_options() {
  FindAnglesOptions opt;
  opt.hopping.hops = 3;
  opt.hopping.local.max_iterations = 40;
  opt.seed = 1234;
  return opt;
}

/// Fork, run `child` (which must terminate the process itself), and return
/// the child's exit status as seen by waitpid.
template <typename Fn>
int run_in_child(Fn&& child) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    child();
    std::_Exit(0);  // reached only if the armed crash fault did NOT fire
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

// --- quarantine-and-reseed ---------------------------------------------

TEST(FaultInjection, PoisonedChainIsQuarantinedAndBestStaysFinite) {
  SKIP_WITHOUT_FAULT_INJECTION();
  FaultReset cleanup;
  Rng rng(4);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(6);

  FindAnglesOptions opt = quick_options();
  opt.parallel_starts = 8;
  const std::vector<double> x0 = {0.3, 0.3, 0.7, 0.7};

  // Poison chain 3's objective once: the chain diverges, gets quarantined,
  // and re-runs on a reseeded stream — the best-of-chains answer must come
  // out finite.
  fault::arm("anglefind.chain_nan", /*index=*/3);
  AngleSchedule injected = find_angles_at(mixer, table, 2, x0, opt);
  EXPECT_EQ(fault::fired_count("anglefind.chain_nan"), 1);
  EXPECT_TRUE(std::isfinite(injected.expectation));
  EXPECT_FALSE(injected.betas.empty());

#ifdef FASTQAOA_PROFILING_ENABLED
  const obs::MetricsSnapshot snap = obs::global_snapshot();
  const auto it = snap.counters.find("runtime.quarantine.chains");
  ASSERT_NE(it, snap.counters.end())
      << "quarantine events missing from the metrics snapshot";
  EXPECT_GE(it->second, 1u);
#endif
}

TEST(FaultInjection, QuarantineIsDeterministicAcrossThreadCounts) {
  SKIP_WITHOUT_FAULT_INJECTION();
  FaultReset cleanup;
  Rng rng(4);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(6);

  FindAnglesOptions opt = quick_options();
  opt.parallel_starts = 8;
  const std::vector<double> x0 = {0.3, 0.3, 0.7, 0.7};

  set_num_threads(1);
  fault::arm("anglefind.chain_nan", 1);
  AngleSchedule serial = find_angles_at(mixer, table, 2, x0, opt);
  fault::reset();

  set_num_threads(4);
  fault::arm("anglefind.chain_nan", 1);
  AngleSchedule parallel = find_angles_at(mixer, table, 2, x0, opt);
  fault::reset();
  set_num_threads(1);

  // The fault is keyed on the chain index (not the executing thread), and
  // reseed attempt k is a pure function of the chain's own stream, so the
  // injected run is bit-identical at any thread count.
  EXPECT_EQ(serial.betas, parallel.betas);
  EXPECT_EQ(serial.gammas, parallel.gammas);
  EXPECT_DOUBLE_EQ(serial.expectation, parallel.expectation);
  EXPECT_TRUE(std::isfinite(serial.expectation));
}

// --- injected factory / checkpoint failures ----------------------------

TEST(FaultInjection, ThrowingInstanceFactoryPropagatesCleanly) {
  SKIP_WITHOUT_FAULT_INJECTION();
  FaultReset cleanup;
  XMixer mixer = XMixer::transverse_field(5);
  EnsembleConfig config;
  config.instances = 4;
  config.max_rounds = 1;
  config.threads = 2;
  config.angle_options = quick_options();

  fault::arm("study.factory_throw", /*index=*/2);
  try {
    run_ensemble(mixer,
                 [](Rng& inner) {
                   Graph g = erdos_renyi(5, 0.5, inner);
                   return tabulate(StateSpace::full(5), [&g](state_t x) {
                     return maxcut(g, x);
                   });
                 },
                 config);
    FAIL() << "expected the injected factory error to propagate";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("injected factory failure"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("instance 2"), std::string::npos);
  }
}

TEST(FaultInjection, FailedCheckpointWriteCleansUpTmpFile) {
  SKIP_WITHOUT_FAULT_INJECTION();
  FaultReset cleanup;
  TempDir tmp;
  const std::string path = tmp.path("angles.txt");

  std::vector<AngleSchedule> schedules(1);
  schedules[0] = {1, {0.1}, {0.2}, 3.5};
  save_checkpoint(path, schedules);  // a good version lands first

  fault::arm("runtime.checkpoint_write_fail");
  schedules[0].expectation = 9.9;
  EXPECT_THROW(save_checkpoint(path, schedules), Error);
  // The failed write removed its temporary and left the previous version
  // intact — the resume file is never corrupted by a failed save.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto loaded = load_checkpoint(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0].expectation, 3.5);
}

// --- crash-kill and resume ---------------------------------------------

TEST(FaultInjection, KilledFindAnglesResumesBitIdentically) {
  SKIP_WITHOUT_FAULT_INJECTION();
  TempDir tmp;
  const std::string checkpoint = tmp.path("resume.txt");

  // The child is killed (simulated SIGKILL) right after round 2's
  // checkpoint lands. Fork before any OpenMP usage in this process.
  const int status = run_in_child([&] {
    fault::arm("crash.after_round", /*index=*/2);
    Rng rng(4);
    Graph g = erdos_renyi(5, 0.5, rng);
    dvec table = maxcut_table(g);
    XMixer mixer = XMixer::transverse_field(5);
    FindAnglesOptions opt = quick_options();
    opt.checkpoint_file = checkpoint;
    find_angles(mixer, table, 4, opt);
  });
  ASSERT_EQ(status, 137) << "the armed crash fault did not fire";
  ASSERT_TRUE(std::filesystem::exists(checkpoint));
  ASSERT_EQ(load_checkpoint(checkpoint).size(), 2u);

  Rng rng(4);
  Graph g = erdos_renyi(5, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(5);

  FindAnglesOptions opt = quick_options();
  opt.checkpoint_file = checkpoint;
  auto resumed = find_angles(mixer, table, 4, opt);

  FindAnglesOptions fresh = quick_options();
  auto reference = find_angles(mixer, table, 4, fresh);

  // Per-round RNG streams make the resumed run replay the uninterrupted
  // one exactly: every surviving round loads bit-identical angles and the
  // re-run rounds draw the same randomness they would have drawn.
  ASSERT_EQ(resumed.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(resumed[i].betas, reference[i].betas);
    EXPECT_EQ(resumed[i].gammas, reference[i].gammas);
    EXPECT_DOUBLE_EQ(resumed[i].expectation, reference[i].expectation);
  }
}

EnsembleConfig crash_config(const std::string& dir, int threads) {
  EnsembleConfig config;
  config.instances = 4;
  config.max_rounds = 2;
  config.seed = 777;
  config.threads = threads;
  config.checkpoint_dir = dir;
  config.angle_options.hopping.hops = 3;
  config.angle_options.hopping.local.max_iterations = 40;
  return config;
}

InstanceFactory maxcut_factory(int n) {
  return [n](Rng& rng) {
    Graph g = erdos_renyi(n, 0.5, rng);
    return tabulate(StateSpace::full(n),
                    [&g](state_t x) { return maxcut(g, x); });
  };
}

void killed_ensemble_resumes_bit_identically(int threads) {
  TempDir tmp;
  const std::string dir = tmp.path("study");

  // Child: dies right after instance 1's checkpoint file lands.
  const int status = run_in_child([&] {
    fault::arm("study.crash_after_instance", /*index=*/1);
    XMixer mixer = XMixer::transverse_field(5);
    run_ensemble(mixer, maxcut_factory(5), crash_config(dir, threads));
  });
  ASSERT_EQ(status, 137) << "the armed crash fault did not fire";
  ASSERT_TRUE(std::filesystem::exists(
      std::filesystem::path(dir) / "instance_1.txt"));

  // Parent: resume the study, then compare with an uninterrupted run.
  XMixer mixer = XMixer::transverse_field(5);
  EnsembleResult resumed =
      run_ensemble(mixer, maxcut_factory(5), crash_config(dir, threads));
  EXPECT_EQ(resumed.completed_instances, 4);
  EXPECT_FALSE(resumed.stopped_early());

  EnsembleConfig plain = crash_config("", threads);
  EnsembleResult reference = run_ensemble(mixer, maxcut_factory(5), plain);

  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(resumed.schedules[i].size(), reference.schedules[i].size());
    for (std::size_t p = 0; p < reference.schedules[i].size(); ++p) {
      EXPECT_EQ(resumed.schedules[i][p].betas,
                reference.schedules[i][p].betas);
      EXPECT_EQ(resumed.schedules[i][p].gammas,
                reference.schedules[i][p].gammas);
      EXPECT_DOUBLE_EQ(resumed.schedules[i][p].expectation,
                       reference.schedules[i][p].expectation);
    }
    for (std::size_t p = 0; p < reference.ratios[i].size(); ++p) {
      EXPECT_DOUBLE_EQ(resumed.ratios[i][p], reference.ratios[i][p]);
    }
  }
}

TEST(FaultInjection, KilledEnsembleResumesBitIdenticallySerial) {
  SKIP_WITHOUT_FAULT_INJECTION();
  killed_ensemble_resumes_bit_identically(/*threads=*/1);
}

TEST(FaultInjection, KilledEnsembleResumesBitIdenticallyParallel) {
  SKIP_WITHOUT_FAULT_INJECTION();
  killed_ensemble_resumes_bit_identically(/*threads=*/4);
}

// --- env-var arming -----------------------------------------------------

TEST(FaultInjection, ArmFromEnvParsesPointIndexAfter) {
  SKIP_WITHOUT_FAULT_INJECTION();
  FaultReset cleanup;
  ::setenv("FASTQAOA_FAULTS", "anglefind.chain_nan:5:2,crash.after_round:1",
           1);
  fault::arm_from_env();
  ::unsetenv("FASTQAOA_FAULTS");

  EXPECT_FALSE(fault::fire("anglefind.chain_nan", 4));  // wrong index
  EXPECT_FALSE(fault::fire("anglefind.chain_nan", 5));  // after=2: hit 1
  EXPECT_TRUE(fault::fire("anglefind.chain_nan", 5));   // fires on hit 2
  EXPECT_FALSE(fault::fire("anglefind.chain_nan", 5));  // fire-once
  EXPECT_TRUE(fault::fire("crash.after_round", 1));
  EXPECT_EQ(fault::fired_count("anglefind.chain_nan"), 1);
}

// --- network fault points -----------------------------------------------

TEST(FaultInjection, NetFaultPointsExerciseEvictionAndCleanup) {
  SKIP_WITHOUT_FAULT_INJECTION();
  FaultReset cleanup;
  TempDir tmp;

  // Arm one fault per accepted connection (index = accept sequence), then
  // fork the daemon: the child inherits the armed table.
  fault::arm("net.accept_fail", 1);      // conn 1 dropped at accept
  fault::arm("net.short_write", 2);      // conn 2 flushed one byte at a time
  fault::arm("net.drop_connection", 3);  // conn 3 cut mid-frame
  fault::arm("net.stall_reader", 4);     // conn 4 writes never drain

  service::DaemonOptions options;
  options.socket_path = tmp.path("qaoa.sock");
  options.verbose = false;
  options.write_timeout_seconds = 0.3;
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    std::_Exit(service::run_daemon(options));
  }
  fault::reset();  // parent side: only the daemon keeps the armed table

  // Reap the daemon on every exit path so a failing assertion cannot orphan
  // it (an orphan keeps the test's stdout pipe open and hangs the harness).
  struct DaemonGuard {
    pid_t pid;
    ~DaemonGuard() {
      if (pid > 0) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
      }
    }
  } guard{pid};

  // A connection the daemon drops may end in a clean EOF or, when our last
  // request is still unread in its receive buffer, an RST (recv fails with
  // ECONNRESET and Client::read_line throws). Both count as "disconnected".
  auto disconnected = [](service::Client& c) {
    try {
      std::string line;
      while (c.read_line(line)) {
      }
      return true;  // clean EOF
    } catch (const std::exception&) {
      return true;  // connection reset
    }
  };

  auto connect = [&] {
    for (int attempt = 0; attempt < 200; ++attempt) {
      try {
        return service::Client::connect_unix(options.socket_path);
      } catch (const std::exception&) {
        ::usleep(25 * 1000);
      }
    }
    throw Error("daemon did not come up");
  };
  service::Json ping = service::Json::object();
  ping.set("op", service::Json("ping"));

  // conn 1: accepted then immediately dropped, as if accept() had failed.
  {
    service::Client c1 = connect();
    try {
      c1.send(ping);
    } catch (const std::exception&) {
      // Already closed before our send — also a valid "accept failed" shape.
    }
    EXPECT_TRUE(disconnected(c1));
  }
  // conn 2: one-byte flush passes still deliver a complete response.
  {
    service::Client c2 = connect();
    EXPECT_TRUE(c2.request(ping).at("ok").as_bool());
  }
  // conn 3: abrupt mid-frame close after its next read.
  {
    service::Client c3 = connect();
    c3.send(ping);
    EXPECT_TRUE(disconnected(c3));
  }
  // conn 4: a reader that never drains — evicted within the write timeout.
  {
    service::Client c4 = connect();
    c4.send(ping);
    EXPECT_TRUE(disconnected(c4));
  }
  // conn 5: a healthy connection confirms the daemon shrugged it all off
  // and counted the stalled-reader eviction.
  {
    service::Client c5 = connect();
    service::Json req = service::Json::object();
    req.set("op", service::Json("stats"));
    const service::Json stats = c5.request(req).at("stats");
    EXPECT_GE(stats.at("frontend").at("evicted_slow").as_uint64(), 1u);
  }

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = 0;
  ::waitpid(pid, &status, 0);
  guard.pid = -1;  // reaped gracefully; nothing left for the guard
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace fastqaoa
