#pragma once
/// Shared test helpers: *independent* reference implementations used to
/// cross-check the production fast paths. Reference code here favours
/// obviousness over speed (dense matrices, Taylor-series exponentials) so a
/// bug in a production kernel cannot hide in its own reference.

#include <cmath>
#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "linalg/dense.hpp"

namespace fastqaoa::testutil {

/// Dense complex matrix exponential exp(A) by scaling-and-squaring with a
/// Taylor series. Independent of the library's eigensolvers.
inline linalg::cmat expm(const linalg::cmat& a) {
  const index_t n = a.rows();
  // Scale so the norm is small enough for fast Taylor convergence.
  double max_abs = 0.0;
  for (index_t r = 0; r < n; ++r)
    for (index_t c = 0; c < n; ++c)
      max_abs = std::max(max_abs, std::abs(a(r, c)));
  int squarings = 0;
  double scale = max_abs * static_cast<double>(n);
  while (scale > 0.5) {
    scale *= 0.5;
    ++squarings;
  }
  const double factor = std::ldexp(1.0, -squarings);
  linalg::cmat scaled(n, n);
  for (index_t r = 0; r < n; ++r)
    for (index_t c = 0; c < n; ++c) scaled(r, c) = a(r, c) * factor;

  linalg::cmat result = linalg::cmat::identity(n);
  linalg::cmat term = linalg::cmat::identity(n);
  for (int k = 1; k <= 24; ++k) {
    term = linalg::matmul(term, scaled);
    for (index_t r = 0; r < n; ++r)
      for (index_t c = 0; c < n; ++c) {
        term(r, c) /= static_cast<double>(k);
        result(r, c) += term(r, c);
      }
  }
  for (int s = 0; s < squarings; ++s) result = linalg::matmul(result, result);
  return result;
}

/// exp(-i beta H) for a real-symmetric H, via the Taylor expm above.
inline linalg::cmat exp_minus_i_beta(const linalg::dmat& h, double beta) {
  const index_t n = h.rows();
  linalg::cmat a(n, n);
  for (index_t r = 0; r < n; ++r)
    for (index_t c = 0; c < n; ++c) a(r, c) = cplx{0.0, -beta} * h(r, c);
  return expm(a);
}

/// exp(-i beta H) for complex Hermitian H.
inline linalg::cmat exp_minus_i_beta(const linalg::cmat& h, double beta) {
  const index_t n = h.rows();
  linalg::cmat a(n, n);
  for (index_t r = 0; r < n; ++r)
    for (index_t c = 0; c < n; ++c) a(r, c) = cplx{0.0, -beta} * h(r, c);
  return expm(a);
}

/// y = M x (dense, no tricks).
inline cvec matvec(const linalg::cmat& m, const cvec& x) {
  cvec y(m.rows(), cplx{0.0, 0.0});
  for (index_t r = 0; r < m.rows(); ++r) {
    cplx acc{0.0, 0.0};
    for (index_t c = 0; c < m.cols(); ++c) acc += m(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

/// Max elementwise |v - w|. Takes views, so cvec and ShardedState mix.
inline double max_diff(linalg::ConstStateRef v, linalg::ConstStateRef w) {
  double m = 0.0;
  for (index_t i = 0; i < v.size(); ++i) m = std::max(m, std::abs(v[i] - w[i]));
  return m;
}

/// Uniform superposition of the given dimension.
inline cvec uniform_state(index_t dim) {
  return cvec(dim, cplx{1.0 / std::sqrt(static_cast<double>(dim)), 0.0});
}

/// Random unit-norm complex state.
inline cvec random_state(index_t dim, Rng& rng) {
  cvec psi(dim);
  double norm_sq = 0.0;
  for (auto& amp : psi) {
    amp = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    norm_sq += std::norm(amp);
  }
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (auto& amp : psi) amp *= inv;
  return psi;
}

}  // namespace fastqaoa::testutil
