// Property-based sweeps (TEST_P) over problem sizes, subspaces, mixers and
// round counts: invariants every correct QAOA simulator must satisfy,
// checked across the whole configuration grid rather than at hand-picked
// points.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "autodiff/adjoint.hpp"
#include "autodiff/finite_diff.hpp"
#include "common/rng.hpp"
#include "core/qaoa.hpp"
#include "linalg/vector_ops.hpp"
#include "mixers/eigen_mixer.hpp"
#include "mixers/grover_mixer.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"

namespace fastqaoa {
namespace {

enum class MixerKind { TransverseField, Grover, Clique, Ring, OrderTwoX };

const char* mixer_kind_name(MixerKind kind) {
  switch (kind) {
    case MixerKind::TransverseField:
      return "tf";
    case MixerKind::Grover:
      return "grover";
    case MixerKind::Clique:
      return "clique";
    case MixerKind::Ring:
      return "ring";
    default:
      return "x2";
  }
}

struct Config {
  int n;
  int k;  // -1 = full space
  MixerKind mixer;
  int p;
  std::uint64_t seed;
};

std::unique_ptr<Mixer> make_mixer(const Config& cfg, const StateSpace& space) {
  switch (cfg.mixer) {
    case MixerKind::TransverseField:
      return std::make_unique<XMixer>(XMixer::transverse_field(cfg.n));
    case MixerKind::OrderTwoX:
      return std::make_unique<XMixer>(XMixer::from_orders(cfg.n, {1, 2}));
    case MixerKind::Grover:
      return std::make_unique<GroverMixer>(space.dim());
    case MixerKind::Clique:
      return std::make_unique<EigenMixer>(EigenMixer::clique(space));
    case MixerKind::Ring:
      return std::make_unique<EigenMixer>(EigenMixer::ring(space));
  }
  return nullptr;
}

class QaoaInvariants : public ::testing::TestWithParam<Config> {};

TEST_P(QaoaInvariants, NormEnergyBoundsAndGradients) {
  const Config cfg = GetParam();
  Rng rng(cfg.seed);
  StateSpace space = cfg.k >= 0 ? StateSpace::dicke(cfg.n, cfg.k)
                                : StateSpace::full(cfg.n);
  Graph g = erdos_renyi(cfg.n, 0.5, rng);
  dvec table =
      cfg.k >= 0
          ? tabulate(space,
                     [&g](state_t x) { return densest_subgraph(g, x); })
          : tabulate(space, [&g](state_t x) { return maxcut(g, x); });

  std::unique_ptr<Mixer> mixer = make_mixer(cfg, space);
  Qaoa engine(*mixer, table, cfg.p);

  std::vector<double> betas(static_cast<std::size_t>(cfg.p));
  std::vector<double> gammas(static_cast<std::size_t>(cfg.p));
  for (auto& a : betas) a = rng.uniform(0.0, 2.0 * kPi);
  for (auto& a : gammas) a = rng.uniform(0.0, 2.0 * kPi);

  // Invariant 1: evolution is unitary.
  const double e = engine.run(betas, gammas);
  EXPECT_NEAR(linalg::norm(engine.state()), 1.0, 1e-9)
      << mixer_kind_name(cfg.mixer);

  // Invariant 2: <C> within the objective's range.
  const ObjectiveStats stats = objective_stats(table);
  EXPECT_GE(e, stats.min_value - 1e-9);
  EXPECT_LE(e, stats.max_value + 1e-9);

  // Invariant 3: probabilities over optimal/suboptimal states sum to one.
  double mass = 0.0;
  DegeneracyTable hist = degeneracy_table(table);
  for (const double v : hist.values) mass += engine.probability_of_value(v);
  EXPECT_NEAR(mass, 1.0, 1e-9);

  // Invariant 4: zero angles leave the uniform state (mean objective).
  std::vector<double> zeros(static_cast<std::size_t>(cfg.p), 0.0);
  EXPECT_NEAR(engine.run(zeros, zeros), stats.mean, 1e-8);

  // Invariant 5: adjoint gradient == central finite differences.
  AdjointDifferentiator adjoint(engine);
  FiniteDiffDifferentiator fd(engine, FdScheme::Central, 1e-6);
  std::vector<double> ga_b(betas.size()), ga_g(gammas.size());
  std::vector<double> gf_b(betas.size()), gf_g(gammas.size());
  const double ea = adjoint.value_and_gradient(betas, gammas, ga_b, ga_g);
  const double ef = fd.value_and_gradient(betas, gammas, gf_b, gf_g);
  EXPECT_NEAR(ea, ef, 1e-9);
  for (std::size_t i = 0; i < betas.size(); ++i) {
    EXPECT_NEAR(ga_b[i], gf_b[i], 2e-5) << "beta " << i;
    EXPECT_NEAR(ga_g[i], gf_g[i], 2e-5) << "gamma " << i;
  }

  // Invariant 6: 2*pi periodicity in every gamma for integer-valued
  // objectives (MaxCut / edge counts are integers on the table).
  bool integral = true;
  for (const double v : table) {
    if (std::abs(v - std::round(v)) > 1e-12) integral = false;
  }
  if (integral) {
    const double base = engine.run(betas, gammas);
    std::vector<double> shifted_gammas = gammas;
    shifted_gammas[0] += 2.0 * kPi;
    EXPECT_NEAR(engine.run(betas, shifted_gammas), base, 1e-9);
  }
}

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  const Config& c = info.param;
  std::string s = "n" + std::to_string(c.n);
  if (c.k >= 0) s += "k" + std::to_string(c.k);
  s += std::string("_") + mixer_kind_name(c.mixer) + "_p" +
       std::to_string(c.p);
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    FullSpace, QaoaInvariants,
    ::testing::Values(
        Config{4, -1, MixerKind::TransverseField, 1, 11},
        Config{6, -1, MixerKind::TransverseField, 3, 12},
        Config{8, -1, MixerKind::TransverseField, 5, 13},
        Config{5, -1, MixerKind::OrderTwoX, 2, 14},
        Config{7, -1, MixerKind::OrderTwoX, 4, 15},
        Config{4, -1, MixerKind::Grover, 1, 16},
        Config{6, -1, MixerKind::Grover, 3, 17},
        Config{9, -1, MixerKind::Grover, 6, 18}),
    config_name);

INSTANTIATE_TEST_SUITE_P(
    DickeSubspace, QaoaInvariants,
    ::testing::Values(Config{5, 2, MixerKind::Clique, 1, 21},
                      Config{6, 3, MixerKind::Clique, 3, 22},
                      Config{8, 4, MixerKind::Clique, 2, 23},
                      Config{5, 2, MixerKind::Ring, 2, 24},
                      Config{7, 3, MixerKind::Ring, 4, 25},
                      Config{6, 2, MixerKind::Grover, 3, 26},
                      Config{8, 6, MixerKind::Ring, 1, 27}),
    config_name);

/// Feasibility closure: for constrained mixers, states that start in the
/// Dicke subspace stay there — checked by embedding the subspace evolution
/// into the full space and verifying mass never leaks.
class SubspaceClosure
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SubspaceClosure, MixingConservesHammingWeight) {
  const auto [n, k] = GetParam();
  StateSpace space = StateSpace::dicke(n, k);
  EigenMixer clique = EigenMixer::clique(space);
  Rng rng(static_cast<std::uint64_t>(n * 100 + k));
  // A random feasible state evolved many times keeps unit norm within the
  // subspace (no leakage is representable by construction; this guards the
  // index bookkeeping under repeated application).
  cvec psi(space.dim(), cplx{0.0, 0.0});
  psi[space.index_of(space.state(0))] = cplx{1.0, 0.0};
  cvec scratch;
  for (int step = 0; step < 10; ++step) {
    clique.apply_exp(psi, rng.uniform(-1.0, 1.0), scratch);
  }
  EXPECT_NEAR(linalg::norm(psi), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SubspaceClosure,
                         ::testing::Values(std::tuple{4, 2}, std::tuple{6, 3},
                                           std::tuple{8, 2}, std::tuple{8, 4},
                                           std::tuple{10, 5}));

}  // namespace
}  // namespace fastqaoa
