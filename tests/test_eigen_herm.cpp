// Unit tests for the complex Hermitian eigensolver (2N real embedding).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "linalg/dense.hpp"
#include "linalg/eigen_herm.hpp"

namespace fastqaoa {
namespace {

using linalg::cmat;
using linalg::eig_residual;
using linalg::eigh;
using linalg::HermEig;

void expect_unitary_columns(const cmat& v, double tol = 1e-9) {
  const index_t n = v.rows();
  for (index_t a = 0; a < n; ++a) {
    for (index_t b = a; b < n; ++b) {
      cplx d{0.0, 0.0};
      for (index_t r = 0; r < n; ++r) d += std::conj(v(r, a)) * v(r, b);
      EXPECT_NEAR(std::abs(d - (a == b ? cplx{1.0, 0.0} : cplx{0.0, 0.0})),
                  0.0, tol)
          << "columns " << a << "," << b;
    }
  }
}

TEST(EigHerm, PauliYKnownSpectrum) {
  // Y = [[0, -i], [i, 0]] has eigenvalues ±1.
  cmat y = {{cplx{0, 0}, cplx{0, -1}}, {cplx{0, 1}, cplx{0, 0}}};
  HermEig e = eigh(y);
  EXPECT_NEAR(e.eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], 1.0, 1e-12);
  EXPECT_LT(eig_residual(y, e), 1e-11);
  expect_unitary_columns(e.vectors);
}

TEST(EigHerm, RealSymmetricSpecialCase) {
  // A purely real Hermitian matrix must reproduce the real solver result.
  cmat a = {{cplx{2, 0}, cplx{1, 0}}, {cplx{1, 0}, cplx{2, 0}}};
  HermEig e = eigh(a);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-11);
  EXPECT_NEAR(e.eigenvalues[1], 3.0, 1e-11);
}

TEST(EigHerm, DegenerateIdentity) {
  const cmat eye = cmat::identity(6);
  HermEig e = eigh(eye);
  for (const double w : e.eigenvalues) EXPECT_NEAR(w, 1.0, 1e-11);
  expect_unitary_columns(e.vectors);
  EXPECT_LT(eig_residual(eye, e), 1e-10);
}

TEST(EigHerm, DegenerateBlockSpectrum) {
  // diag(2, 2, 5) with a complex rotation applied — eigenvalues {2, 2, 5}.
  Rng rng(3);
  cmat a(3, 3);
  a(0, 0) = cplx{2, 0};
  a(1, 1) = cplx{2, 0};
  a(2, 2) = cplx{5, 0};
  // Conjugate by a random unitary built from a Hermitian H: U = exp(iH) is
  // approximated here by a Cayley transform (I - iH)(I + iH)^{-1} computed
  // implicitly: instead, just add a Hermitian perturbation coupling the
  // degenerate block only, which keeps the spectrum {2, 2, 5}... simplest:
  // permute basis with a phase: |0> -> i|1>, |1> -> |0>.
  cmat u(3, 3);
  u(1, 0) = cplx{0, 1};
  u(0, 1) = cplx{1, 0};
  u(2, 2) = cplx{1, 0};
  const cmat rotated = linalg::matmul(linalg::matmul(u, a), linalg::adjoint(u));
  HermEig e = eigh(rotated);
  EXPECT_NEAR(e.eigenvalues[0], 2.0, 1e-10);
  EXPECT_NEAR(e.eigenvalues[1], 2.0, 1e-10);
  EXPECT_NEAR(e.eigenvalues[2], 5.0, 1e-10);
  EXPECT_LT(eig_residual(rotated, e), 1e-10);
  expect_unitary_columns(e.vectors);
}

class EigHermRandom : public ::testing::TestWithParam<int> {};

TEST_P(EigHermRandom, ResidualUnitarityAndOrdering) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 104729);
  const cmat h = linalg::hermitize(linalg::random_cmatrix(
      static_cast<index_t>(n), static_cast<index_t>(n), rng));
  HermEig e = eigh(h);
  EXPECT_EQ(e.eigenvalues.size(), static_cast<index_t>(n));
  EXPECT_TRUE(std::is_sorted(e.eigenvalues.begin(), e.eigenvalues.end()));
  EXPECT_LT(eig_residual(h, e), 1e-8 * std::max(1, n));
  expect_unitary_columns(e.vectors, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigHermRandom,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 40, 64));

TEST(EigHerm, TraceMatchesEigenvalueSum) {
  Rng rng(11);
  const cmat h = linalg::hermitize(linalg::random_cmatrix(15, 15, rng));
  HermEig e = eigh(h);
  double trace = 0.0;
  for (index_t i = 0; i < 15; ++i) trace += h(i, i).real();
  double sum = 0.0;
  for (const double w : e.eigenvalues) sum += w;
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(EigHerm, XYBlockMatrix) {
  // The XY-hopping generator on two modes: [[0, 2], [2, 0]] with complex
  // phases — eigenvalues ±2 regardless of the phase.
  const cplx phase = std::exp(cplx{0.0, 0.6});
  cmat h(2, 2);
  h(0, 1) = 2.0 * phase;
  h(1, 0) = 2.0 * std::conj(phase);
  HermEig e = eigh(h);
  EXPECT_NEAR(e.eigenvalues[0], -2.0, 1e-11);
  EXPECT_NEAR(e.eigenvalues[1], 2.0, 1e-11);
}

TEST(EigHerm, NonSquareThrows) {
  cmat h(2, 3);
  EXPECT_THROW(eigh(h), Error);
}

}  // namespace
}  // namespace fastqaoa
