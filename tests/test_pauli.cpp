// Unit tests for Pauli strings and Pauli sums: algebra, labels, basis
// actions, and lowering to mixers / diagonals / dense matrices.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "pauli/pauli_sum.hpp"
#include "problems/cost_functions.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

TEST(PauliString, SingleQubitConstructorsAndLabels) {
  EXPECT_EQ(PauliString::X(0).label(1), "X");
  EXPECT_EQ(PauliString::Z(0).label(1), "Z");
  EXPECT_EQ(PauliString::Y(0).label(1), "Y");
  EXPECT_EQ(PauliString().label(3), "III");
  EXPECT_EQ(PauliString::X(2).label(3), "XII");
}

TEST(PauliString, FromLabelRoundTrip) {
  for (const std::string label : {"XIZY", "IIII", "YYYY", "ZXZX"}) {
    EXPECT_EQ(PauliString::from_label(label).label(4), label);
  }
  EXPECT_THROW(PauliString::from_label("ABC"), Error);
}

TEST(PauliString, SingleQubitProducts) {
  const PauliString x = PauliString::X(0);
  const PauliString y = PauliString::Y(0);
  const PauliString z = PauliString::Z(0);
  // XY = iZ, YZ = iX, ZX = iY; squares are identity.
  EXPECT_EQ((x * y).label(1), "i*Z");
  EXPECT_EQ((y * z).label(1), "i*X");
  EXPECT_EQ((z * x).label(1), "i*Y");
  EXPECT_EQ((y * x).label(1), "-i*Z");
  EXPECT_TRUE((x * x).is_identity());
  EXPECT_TRUE((y * y).is_identity());
  EXPECT_EQ((y * y).phase(), (cplx{1.0, 0.0}));
}

TEST(PauliString, CommutationRules) {
  EXPECT_FALSE(PauliString::X(0).commutes_with(PauliString::Z(0)));
  EXPECT_FALSE(PauliString::X(0).commutes_with(PauliString::Y(0)));
  EXPECT_TRUE(PauliString::X(0).commutes_with(PauliString::X(0)));
  EXPECT_TRUE(PauliString::X(0).commutes_with(PauliString::Z(1)));
  // XX and ZZ on the same pair commute (two anticommutations cancel).
  const PauliString xx = PauliString::X(0) * PauliString::X(1);
  const PauliString zz = PauliString::Z(0) * PauliString::Z(1);
  EXPECT_TRUE(xx.commutes_with(zz));
}

TEST(PauliString, ProductMatchesMatrixProduct) {
  // Verify the symplectic product against dense 2-qubit matrices built via
  // apply() on each basis state.
  Rng rng(1);
  auto to_matrix = [](const PauliString& p) {
    linalg::cmat m(4, 4);
    for (state_t x = 0; x < 4; ++x) {
      const auto a = p.apply(x);
      m(static_cast<index_t>(a.result), static_cast<index_t>(x)) =
          a.amplitude;
    }
    return m;
  };
  const std::vector<PauliString> basis = {
      PauliString::X(0), PauliString::Y(0), PauliString::Z(0),
      PauliString::X(1), PauliString::Y(1), PauliString::Z(1),
      PauliString::from_label("XY"), PauliString::from_label("ZY")};
  for (const auto& a : basis) {
    for (const auto& b : basis) {
      const linalg::cmat direct = linalg::matmul(to_matrix(a), to_matrix(b));
      const linalg::cmat composed = to_matrix(a * b);
      EXPECT_LT(linalg::frobenius_diff(direct, composed), 1e-13)
          << a.label(2) << " * " << b.label(2);
    }
  }
}

TEST(PauliString, ApplyYGivesCorrectPhases) {
  // Y|0> = i|1>, Y|1> = -i|0>.
  const PauliString y = PauliString::Y(0);
  auto a0 = y.apply(0);
  EXPECT_EQ(a0.result, state_t{1});
  EXPECT_NEAR(std::abs(a0.amplitude - cplx{0.0, 1.0}), 0.0, 1e-15);
  auto a1 = y.apply(1);
  EXPECT_EQ(a1.result, state_t{0});
  EXPECT_NEAR(std::abs(a1.amplitude - cplx{0.0, -1.0}), 0.0, 1e-15);
}

TEST(PauliString, WeightAndPredicates) {
  const PauliString p = PauliString::from_label("XIZY");
  EXPECT_EQ(p.weight(), 3);
  EXPECT_FALSE(p.is_diagonal());
  EXPECT_FALSE(p.is_x_only());
  EXPECT_TRUE(PauliString::from_label("ZIZ").is_diagonal());
  EXPECT_TRUE(PauliString::from_label("XXI").is_x_only());
  EXPECT_TRUE(PauliString::Y(0).is_hermitian());
  EXPECT_TRUE(PauliString::from_label("XYZ").is_hermitian());
  EXPECT_FALSE(PauliString(1, 0, 1).is_hermitian());  // i*X
}

TEST(PauliSum, SimplifyCombinesLikeTerms) {
  PauliSum h(2);
  h.add(cplx{1.0, 0.0}, "XI");
  h.add(cplx{2.0, 0.0}, "XI");
  h.add(cplx{1.0, 0.0}, "ZZ");
  h.add(cplx{-1.0, 0.0}, "ZZ");
  h.simplify();
  ASSERT_EQ(h.num_terms(), 1u);
  EXPECT_NEAR(std::abs(h.terms()[0].coefficient - cplx{3.0, 0.0}), 0.0,
              1e-14);
}

TEST(PauliSum, HermiticityDetection) {
  PauliSum h(2);
  h.add(cplx{1.0, 0.0}, "XY");
  h.add(cplx{0.5, 0.0}, "ZI");
  EXPECT_TRUE(h.is_hermitian());
  PauliSum bad(2);
  bad.add(cplx{0.0, 1.0}, "XI");  // i*X is anti-Hermitian
  EXPECT_FALSE(bad.is_hermitian());
  // i(XZ) term: X*Z has |a&b| odd after composition on one qubit -> the
  // imaginary coefficient *makes* it Hermitian (it is Y up to sign).
  PauliSum y_like(1);
  y_like.add(cplx{0.0, 1.0}, PauliString::X(0) * PauliString::Z(0));
  EXPECT_TRUE(y_like.is_hermitian());
}

TEST(PauliSum, ApplyMatchesDenseMatrix) {
  Rng rng(2);
  PauliSum h(3);
  h.add(cplx{0.7, 0.0}, "XIZ");
  h.add(cplx{-1.2, 0.0}, "YYI");
  h.add(cplx{0.4, 0.0}, "ZZZ");
  h.add(cplx{0.3, 0.0}, "IXI");
  cvec psi = testutil::random_state(8, rng);
  cvec out;
  h.apply(psi, out);
  cvec expected = testutil::matvec(h.to_matrix(), psi);
  EXPECT_LT(testutil::max_diff(out, expected), 1e-13);
}

TEST(PauliSum, IsingDiagonalMatchesCostFunction) {
  Rng rng(3);
  Graph j = erdos_renyi(6, 0.5, rng);
  std::vector<double> fields(6);
  for (auto& f : fields) f = rng.uniform(-1.0, 1.0);
  PauliSum h = PauliSum::ising(j, fields);
  EXPECT_TRUE(h.is_diagonal());
  EXPECT_TRUE(h.is_hermitian());
  dvec diag = h.to_diagonal();
  for (state_t x = 0; x < 64; ++x) {
    EXPECT_NEAR(diag[x], ising_energy(j, fields, x), 1e-12) << "x=" << x;
  }
}

TEST(PauliSum, TransverseFieldLowersToXMixer) {
  PauliSum h = PauliSum::transverse_field(5);
  EXPECT_TRUE(h.is_x_only());
  XMixer from_sum = h.to_x_mixer();
  XMixer direct = XMixer::transverse_field(5);
  for (index_t z = 0; z < 32; ++z) {
    EXPECT_DOUBLE_EQ(from_sum.diagonal()[z], direct.diagonal()[z]);
  }
}

TEST(PauliSum, EigenMixerFromExoticHamiltonian) {
  // A mixer with X, Y and Z content lowers through the dense path and acts
  // as the exact exponential.
  Rng rng(4);
  PauliSum h(3);
  h.add(cplx{1.0, 0.0}, "XXI");
  h.add(cplx{0.8, 0.0}, "IYY");
  h.add(cplx{0.5, 0.0}, "ZIZ");
  ASSERT_TRUE(h.is_hermitian());
  EigenMixer mixer = h.to_eigen_mixer("exotic");
  cvec psi = testutil::random_state(8, rng);
  cvec expected = testutil::matvec(
      testutil::exp_minus_i_beta(linalg::hermitize(h.to_matrix()), 0.6), psi);
  cvec scratch;
  mixer.apply_exp(psi, 0.6, scratch);
  EXPECT_LT(testutil::max_diff(psi, expected), 1e-9);
}

TEST(PauliSum, SumAndScalarOperators) {
  PauliSum a(2);
  a.add(cplx{1.0, 0.0}, "XI");
  PauliSum b(2);
  b.add(cplx{2.0, 0.0}, "IZ");
  PauliSum c = (a + b) * cplx{2.0, 0.0};
  c.simplify();
  EXPECT_EQ(c.num_terms(), 2u);
  linalg::cmat m = c.to_matrix();
  // "XI" acts on the high qubit (label convention): 2X flips bit 1, and
  // "IZ" contributes +4 on states with bit 0 clear.
  EXPECT_NEAR(std::abs(m(2, 0) - cplx{2.0, 0.0}), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(m(0, 0) - cplx{4.0, 0.0}), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(m(1, 1) - cplx{-4.0, 0.0}), 0.0, 1e-14);
}

TEST(PauliSum, ProductExpandsAlgebra) {
  // (X + Z)^2 = 2 I (cross terms XZ + ZX cancel).
  PauliSum s(1);
  s.add(cplx{1.0, 0.0}, PauliString::X(0));
  s.add(cplx{1.0, 0.0}, PauliString::Z(0));
  PauliSum sq = s * s;
  sq.simplify();
  ASSERT_EQ(sq.num_terms(), 1u);
  EXPECT_TRUE(sq.terms()[0].string.is_identity());
  EXPECT_NEAR(std::abs(sq.terms()[0].coefficient - cplx{2.0, 0.0}), 0.0,
              1e-14);
}

TEST(PauliSum, Validation) {
  PauliSum h(2);
  EXPECT_THROW(h.add(cplx{1.0, 0.0}, PauliString::X(5)), Error);
  EXPECT_THROW(h.add(cplx{1.0, 0.0}, "XXX"), Error);
  PauliSum has_x(2);
  has_x.add(cplx{1.0, 0.0}, "XI");
  EXPECT_THROW(has_x.to_diagonal(), Error);
  PauliSum has_z(2);
  has_z.add(cplx{1.0, 0.0}, "ZI");
  EXPECT_THROW(has_z.to_x_mixer(), Error);
  PauliSum not_hermitian(2);
  not_hermitian.add(cplx{0.0, 1.0}, "XI");
  EXPECT_THROW(not_hermitian.to_eigen_mixer("bad"), Error);
}

}  // namespace
}  // namespace fastqaoa
