// Unit tests for X-type mixers: the Walsh–Hadamard diagonal frame must
// reproduce the exact matrix exponential of the Pauli-sum Hamiltonian.

#include <gtest/gtest.h>

#include <cmath>

#include "bits/bitops.hpp"
#include "bits/combinatorics.hpp"
#include "common/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "mixers/x_mixer.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

/// Dense matrix of sum_t w_t prod_{i in mask_t} X_i on the full basis.
linalg::cmat dense_x_hamiltonian(int n, const std::vector<PauliXTerm>& terms) {
  const index_t dim = index_t{1} << n;
  linalg::cmat h(dim, dim);
  for (const PauliXTerm& t : terms) {
    // prod X_i flips exactly the bits in the mask: <y|term|x> = w when
    // y == x ^ mask.
    for (index_t x = 0; x < dim; ++x) {
      h(x ^ t.mask, x) += t.weight;
    }
  }
  return h;
}

TEST(XMixer, DiagonalMatchesDefinition) {
  const int n = 5;
  std::vector<PauliXTerm> terms = {{0b00011, 1.5}, {0b10100, -0.5}};
  XMixer mixer(n, terms);
  ASSERT_EQ(mixer.diagonal().size(), 32u);
  for (state_t z = 0; z < 32; ++z) {
    const double expected =
        1.5 * z_sign(z, 0b00011) - 0.5 * z_sign(z, 0b10100);
    EXPECT_DOUBLE_EQ(mixer.diagonal()[z], expected);
  }
}

TEST(XMixer, TransverseFieldDiagonalIsNMinus2Weight) {
  // sum_i Z_i has diagonal n - 2*popcount(z).
  const int n = 6;
  XMixer mixer = XMixer::transverse_field(n);
  for (state_t z = 0; z < 64; ++z) {
    EXPECT_DOUBLE_EQ(mixer.diagonal()[z],
                     static_cast<double>(n - 2 * popcount(z)));
  }
}

TEST(XMixer, ApplyExpMatchesDenseExponential) {
  Rng rng(1);
  const int n = 4;
  std::vector<PauliXTerm> terms = {{0b0001, 1.0}, {0b0110, 0.7},
                                   {0b1111, -0.3}};
  XMixer mixer(n, terms);
  const linalg::cmat h = dense_x_hamiltonian(n, terms);

  for (const double beta : {0.0, 0.3, 1.2, -2.5}) {
    const linalg::cmat u = testutil::exp_minus_i_beta(h, beta);
    cvec psi = testutil::random_state(16, rng);
    cvec expected = testutil::matvec(u, psi);
    cvec scratch;
    mixer.apply_exp(psi, beta, scratch);
    EXPECT_LT(testutil::max_diff(psi, expected), 1e-10) << "beta=" << beta;
  }
}

TEST(XMixer, TransverseFieldMatchesProductOfRotations) {
  // e^{-i beta sum X_i} |0...0> has amplitude
  // prod over qubits of (cos beta or -i sin beta).
  const int n = 3;
  XMixer mixer = XMixer::transverse_field(n);
  const double beta = 0.8;
  cvec psi(8, cplx{0.0, 0.0});
  psi[0] = cplx{1.0, 0.0};
  cvec scratch;
  mixer.apply_exp(psi, beta, scratch);
  const cplx c{std::cos(beta), 0.0};
  const cplx s{0.0, -std::sin(beta)};
  for (state_t x = 0; x < 8; ++x) {
    cplx expected{1.0, 0.0};
    for (int q = 0; q < n; ++q) expected *= bit(x, q) ? s : c;
    EXPECT_NEAR(std::abs(psi[x] - expected), 0.0, 1e-12);
  }
}

TEST(XMixer, PreservesNorm) {
  Rng rng(2);
  XMixer mixer = XMixer::transverse_field(7);
  cvec psi = testutil::random_state(128, rng);
  cvec scratch;
  mixer.apply_exp(psi, 1.7, scratch);
  EXPECT_NEAR(linalg::norm(psi), 1.0, 1e-12);
}

TEST(XMixer, ExpOfZeroBetaIsIdentity) {
  Rng rng(3);
  XMixer mixer = XMixer::transverse_field(5);
  cvec psi = testutil::random_state(32, rng);
  cvec orig = psi;
  cvec scratch;
  mixer.apply_exp(psi, 0.0, scratch);
  EXPECT_LT(testutil::max_diff(psi, orig), 1e-12);
}

TEST(XMixer, InverseUndoesForward) {
  Rng rng(4);
  XMixer mixer = XMixer::transverse_field(6);
  cvec psi = testutil::random_state(64, rng);
  cvec orig = psi;
  cvec scratch;
  mixer.apply_exp(psi, 0.9, scratch);
  mixer.apply_exp(psi, -0.9, scratch);
  EXPECT_LT(testutil::max_diff(psi, orig), 1e-11);
}

TEST(XMixer, ApplyHamMatchesDenseHamiltonian) {
  Rng rng(5);
  const int n = 4;
  std::vector<PauliXTerm> terms = {{0b0011, 0.5}, {0b1000, 2.0}};
  XMixer mixer(n, terms);
  const linalg::cmat h = dense_x_hamiltonian(n, terms);
  cvec psi = testutil::random_state(16, rng);
  cvec out(psi.size()), scratch;
  mixer.apply_ham(psi, out, scratch);
  cvec expected = testutil::matvec(h, psi);
  EXPECT_LT(testutil::max_diff(out, expected), 1e-11);
}

TEST(XMixer, FromOrdersMatchesExplicitTerms) {
  // Krawtchouk-evaluated diagonal must equal brute-force term evaluation.
  const int n = 7;
  for (const auto& orders : std::vector<std::vector<int>>{
           {1}, {2}, {3}, {1, 2}, {1, 3}, {7}}) {
    XMixer fast = XMixer::from_orders(n, orders);
    std::vector<PauliXTerm> terms;
    for (int r : orders) {
      for_each_weight_k(n, r, [&](state_t m) { terms.push_back({m, 1.0}); });
    }
    XMixer direct(n, terms);
    for (state_t z = 0; z < (state_t{1} << n); ++z) {
      EXPECT_NEAR(fast.diagonal()[z], direct.diagonal()[z], 1e-9)
          << "orders[0]=" << orders[0] << " z=" << z;
    }
  }
}

TEST(XMixer, FromOrdersGroverLikeAllOrders) {
  // Order-1 mixer on 1 qubit is X itself: diagonal (1, -1).
  XMixer m = XMixer::from_orders(1, {1});
  EXPECT_DOUBLE_EQ(m.diagonal()[0], 1.0);
  EXPECT_DOUBLE_EQ(m.diagonal()[1], -1.0);
}

TEST(XMixer, ValidatesInput) {
  EXPECT_THROW(XMixer(3, {{0b11111, 1.0}}), Error);  // mask exceeds n
  EXPECT_THROW(XMixer::from_orders(4, {}), Error);
  EXPECT_THROW(XMixer::from_orders(4, {5}), Error);
  XMixer mixer = XMixer::transverse_field(4);
  cvec wrong(8);
  cvec scratch;
  EXPECT_THROW(mixer.apply_exp(wrong, 0.1, scratch), Error);
}

TEST(XMixer, InitialStateIsUniform) {
  XMixer mixer = XMixer::transverse_field(4);
  cvec psi;
  mixer.initial_state(psi);
  ASSERT_EQ(psi.size(), 16u);
  for (const auto& a : psi) {
    EXPECT_NEAR(std::abs(a - cplx{0.25, 0.0}), 0.0, 1e-14);
  }
}

}  // namespace
}  // namespace fastqaoa
