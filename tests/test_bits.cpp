// Unit tests for the bits module: bit primitives, binomial coefficients,
// Gosper iteration, combinadic ranking and the Dicke basis.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "bits/bitops.hpp"
#include "bits/combinatorics.hpp"

namespace fastqaoa {
namespace {

TEST(BitOps, PopcountAndParity) {
  EXPECT_EQ(popcount(0b0), 0);
  EXPECT_EQ(popcount(0b1011), 3);
  EXPECT_EQ(parity(0b1011), 1);
  EXPECT_EQ(parity(0b1010), 0);
  EXPECT_EQ(popcount(~state_t{0}), 64);
}

TEST(BitOps, ZSign) {
  // Z on qubit 0 applied to |...1> gives -1.
  EXPECT_DOUBLE_EQ(z_sign(0b1, 0b1), -1.0);
  EXPECT_DOUBLE_EQ(z_sign(0b0, 0b1), 1.0);
  // Z0 Z1 on |11> gives +1 (even overlap).
  EXPECT_DOUBLE_EQ(z_sign(0b11, 0b11), 1.0);
  EXPECT_DOUBLE_EQ(z_sign(0b01, 0b11), -1.0);
}

TEST(BitOps, BitAndFlip) {
  EXPECT_EQ(bit(0b101, 0), 1);
  EXPECT_EQ(bit(0b101, 1), 0);
  EXPECT_EQ(flip(0b101, 1), state_t{0b111});
  EXPECT_EQ(flip(0b101, 0), state_t{0b100});
}

TEST(BitOps, LowestKBits) {
  EXPECT_EQ(lowest_k_bits(0), state_t{0});
  EXPECT_EQ(lowest_k_bits(3), state_t{0b111});
  EXPECT_EQ(lowest_k_bits(64), ~state_t{0});
}

TEST(Gosper, EnumeratesAllWeightKStrings) {
  for (int n = 1; n <= 10; ++n) {
    for (int k = 0; k <= n; ++k) {
      std::vector<state_t> seen;
      for_each_weight_k(n, k, [&](state_t s) { seen.push_back(s); });
      EXPECT_EQ(seen.size(), binomial(n, k)) << "n=" << n << " k=" << k;
      state_t prev = 0;
      bool first = true;
      for (state_t s : seen) {
        EXPECT_EQ(popcount(s), k);
        EXPECT_LT(s, state_t{1} << n);
        if (!first) {
          EXPECT_GT(s, prev) << "must be strictly increasing";
        }
        prev = s;
        first = false;
      }
    }
  }
}

TEST(Binomial, KnownValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(12, 6), 924u);
  EXPECT_EQ(binomial(18, 9), 48620u);
  EXPECT_EQ(binomial(10, 11), 0u);
  EXPECT_EQ(binomial(10, -1), 0u);
  EXPECT_EQ(binomial(52, 26), 495918532948104ULL);
}

TEST(Binomial, OverflowThrows) {
  EXPECT_THROW(binomial(100, 50), Error);
}

TEST(BinomialTable, MatchesDirectComputation) {
  BinomialTable table(20);
  for (int n = 0; n <= 20; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_EQ(table(n, k), binomial(n, k)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(Combinadic, RankUnrankRoundTrip) {
  BinomialTable binom(14);
  for (int n = 4; n <= 14; n += 5) {
    for (int k = 1; k < n; k += 2) {
      index_t expected_rank = 0;
      for_each_weight_k(n, k, [&](state_t s) {
        EXPECT_EQ(rank_combination(s, binom), expected_rank);
        EXPECT_EQ(unrank_combination(expected_rank, n, k, binom), s);
        ++expected_rank;
      });
    }
  }
}

TEST(DickeBasis, SizeAndOrdering) {
  DickeBasis basis(12, 6);
  EXPECT_EQ(basis.size(), 924u);
  EXPECT_EQ(basis.n(), 12);
  EXPECT_EQ(basis.k(), 6);
  EXPECT_EQ(basis.state(0), state_t{0b111111});
  for (index_t i = 0; i < basis.size(); ++i) {
    EXPECT_EQ(basis.index_of(basis.state(i)), i);
  }
}

TEST(DickeBasis, RejectsWrongWeight) {
  DickeBasis basis(6, 3);
  EXPECT_THROW((void)basis.index_of(0b1111), Error);
  EXPECT_THROW((void)basis.index_of(state_t{1} << 10), Error);
}

class GosperParamTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GosperParamTest, MatchesBruteForceEnumeration) {
  const auto [n, k] = GetParam();
  std::set<state_t> brute;
  for (state_t s = 0; s < (state_t{1} << n); ++s) {
    if (popcount(s) == k) brute.insert(s);
  }
  std::set<state_t> gosper;
  for_each_weight_k(n, k, [&](state_t s) { gosper.insert(s); });
  EXPECT_EQ(brute, gosper);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GosperParamTest,
    ::testing::Values(std::pair{4, 2}, std::pair{8, 1}, std::pair{8, 4},
                      std::pair{10, 5}, std::pair{12, 6}, std::pair{13, 2},
                      std::pair{14, 7}, std::pair{15, 15}, std::pair{9, 0}));

}  // namespace
}  // namespace fastqaoa
