// Unit tests for the common module: RNG quality/determinism, memory
// tracking, timers and error checking.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "common/alloc.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "common/version.hpp"

namespace fastqaoa {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(77);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, BoundedCoversRangeWithoutBias) {
  Rng rng(5);
  std::vector<int> counts(7, 0);
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) {
    const auto v = rng.bounded(7);
    ASSERT_LT(v, 7u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 7.0, draws * 0.01);
  }
}

TEST(Rng, ForkedStreamsAreIndependentlySeeded) {
  Rng parent(42);
  Rng child1 = parent.fork();
  Rng child2 = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child1() == child2());
  EXPECT_LT(same, 2);
}

TEST(SplitMix, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), a);
  EXPECT_EQ(sm2.next(), b);
}

TEST(MemoryTracker, TracksVectorAllocations) {
  MemoryTracker::reset_peak();
  const std::size_t before = MemoryTracker::current_bytes();
  {
    cvec v(1024);
    EXPECT_GE(MemoryTracker::current_bytes(), before + 1024 * sizeof(cplx));
    EXPECT_GE(MemoryTracker::peak_bytes(), before + 1024 * sizeof(cplx));
  }
  EXPECT_EQ(MemoryTracker::current_bytes(), before);
}

TEST(MemoryTracker, PeakPersistsAfterFree) {
  MemoryTracker::reset_peak();
  const std::size_t base = MemoryTracker::peak_bytes();
  { dvec v(4096); }
  EXPECT_GE(MemoryTracker::peak_bytes(), base + 4096 * sizeof(double));
}

TEST(Alloc, AlignmentIs64Bytes) {
  cvec v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
  dvec d(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % 64, 0u);
}

TEST(Timer, AdvancesMonotonically) {
  WallTimer t;
  const double t0 = t.seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double t1 = t.seconds();
  EXPECT_GE(t1, t0);
  EXPECT_GT(t1, 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), t1);
}

TEST(Error, CheckThrowsWithContext) {
  try {
    FASTQAOA_CHECK(false, "contextual message");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("contextual message"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(FASTQAOA_CHECK(true, "never seen"));
}

TEST(Version, NonEmpty) { EXPECT_STRNE(version(), ""); }

}  // namespace
}  // namespace fastqaoa
