// Unit tests for the degeneracy-compressed Grover-QAOA fast path (§2.4):
// it must agree exactly with the full statevector simulation and reproduce
// Grover's algorithm when driven with threshold phases.

#include <gtest/gtest.h>

#include <cmath>

#include "anglefind/grover_objective.hpp"
#include "autodiff/adjoint.hpp"
#include "common/rng.hpp"
#include "core/grover_fast.hpp"
#include "core/qaoa.hpp"
#include "mixers/grover_mixer.hpp"
#include "problems/cost_functions.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

TEST(GroverFast, MatchesFullStatevectorOnMaxCut) {
  Rng rng(1);
  Graph g = erdos_renyi(8, 0.5, rng);
  StateSpace space = StateSpace::full(8);
  dvec table = tabulate(space, [&g](state_t x) { return maxcut(g, x); });

  // Full simulation with the rank-1 Grover mixer.
  GroverMixer mixer(256);
  Qaoa full(mixer, table, 3);
  std::vector<double> angles(6);
  for (auto& a : angles) a = rng.uniform(0.0, 2.0 * kPi);
  const double e_full = full.run_packed(angles);

  // Compressed simulation from the degeneracy histogram.
  GroverQaoa fast(degeneracy_table(table));
  const double e_fast = fast.run_packed(angles);
  EXPECT_NEAR(e_fast, e_full, 1e-10);
  EXPECT_NEAR(fast.ground_state_probability(),
              full.ground_state_probability(), 1e-10);
}

TEST(GroverFast, MatchesFullStatevectorOnDickeSubspace) {
  Rng rng(2);
  Graph g = erdos_renyi(9, 0.5, rng);
  StateSpace space = StateSpace::dicke(9, 4);
  dvec table =
      tabulate(space, [&g](state_t x) { return densest_subgraph(g, x); });
  GroverMixer mixer(space.dim());
  Qaoa full(mixer, table, 2);
  std::vector<double> angles = {0.3, 1.2, 0.8, 2.1};
  const double e_full = full.run_packed(angles);

  GroverQaoa fast(degeneracy_table_streaming_dicke(
      9, 4, [&g](state_t x) { return densest_subgraph(g, x); }));
  EXPECT_NEAR(fast.run_packed(angles), e_full, 1e-10);
}

TEST(GroverFast, ClassAmplitudesMatchExpandedState) {
  Rng rng(3);
  Graph g = erdos_renyi(6, 0.5, rng);
  StateSpace space = StateSpace::full(6);
  dvec table = tabulate(space, [&g](state_t x) { return maxcut(g, x); });
  DegeneracyTable hist = degeneracy_table(table);
  GroverQaoa fast(hist);
  std::vector<double> angles = {0.5, 0.9};
  fast.run_packed(angles);

  // Map each state to its class and expand.
  std::vector<std::size_t> class_of(table.size());
  for (index_t i = 0; i < table.size(); ++i) {
    class_of[i] = static_cast<std::size_t>(
        std::lower_bound(hist.values.begin(), hist.values.end(), table[i]) -
        hist.values.begin());
  }
  cvec expanded = fast.expand(class_of);

  GroverMixer mixer(64);
  Qaoa full(mixer, table, 1);
  full.run_packed(angles);
  EXPECT_LT(testutil::max_diff(expanded, full.state()), 1e-11);
}

TEST(GroverFast, GroverSearchSingleRoundKnownProbability) {
  // One Grover iteration via threshold-QAOA with beta = gamma = pi: success
  // probability sin^2(3 theta) with theta = asin(sqrt(M/N)).
  const double n_states = 1024.0;
  const double marked = 1.0;
  GroverQaoa qaoa = grover_search_qaoa(n_states, marked);
  std::vector<double> angles = {kPi, kPi};  // beta, gamma
  qaoa.run_packed(angles);
  const double theta = std::asin(std::sqrt(marked / n_states));
  const double expected = std::sin(3.0 * theta) * std::sin(3.0 * theta);
  EXPECT_NEAR(qaoa.ground_state_probability(), expected, 1e-10);
}

TEST(GroverFast, GroverSearchMultiRoundAmplification) {
  // p rounds at (pi, pi) give sin^2((2p+1) theta) — quadratic speedup.
  const double n_states = 4096.0;
  const double marked = 1.0;
  const double theta = std::asin(std::sqrt(marked / n_states));
  for (const int p : {1, 5, 20}) {
    GroverQaoa qaoa = grover_search_qaoa(n_states, marked);
    std::vector<double> angles(2 * static_cast<std::size_t>(p), kPi);
    qaoa.run_packed(angles);
    const double expected = std::pow(std::sin((2.0 * p + 1.0) * theta), 2);
    EXPECT_NEAR(qaoa.ground_state_probability(), expected, 1e-9)
        << "p=" << p;
  }
}

TEST(GroverFast, HammingWeightCostAtN100) {
  // n = 100: the full space has 2^100 states, far beyond any statevector —
  // but the compressed path handles it because there are only 101 classes.
  const int n = 100;
  std::vector<double> cost(static_cast<std::size_t>(n) + 1);
  for (int m = 0; m <= n; ++m) {
    cost[static_cast<std::size_t>(m)] = static_cast<double>(m);
  }
  GroverQaoa qaoa = grover_hamming_weight_qaoa(n, cost);
  EXPECT_EQ(qaoa.num_classes(), 101u);
  EXPECT_NEAR(qaoa.total_states() / std::pow(2.0, 100), 1.0, 1e-9);

  std::vector<double> zeros(4, 0.0);
  // Zero angles: uniform state, <C> = n/2 (mean Hamming weight).
  EXPECT_NEAR(qaoa.run_packed(zeros) / (n / 2.0), 1.0, 1e-9);

  // Nonzero angles change the expectation but keep it in [0, n].
  std::vector<double> angles = {0.4, 1.1, 0.9, 0.2};
  const double e = qaoa.run_packed(angles);
  EXPECT_GE(e, 0.0);
  EXPECT_LE(e, static_cast<double>(n));
}

TEST(GroverFast, PhaseValuesOverrideThresholdSemantics) {
  // Phase on the marked class only, measured objective untouched.
  GroverQaoa qaoa({0.0, 1.0}, {7.0, 1.0});
  qaoa.set_phase_values({0.0, 1.0});
  std::vector<double> angles = {kPi, kPi};
  qaoa.run_packed(angles);
  const double theta = std::asin(std::sqrt(1.0 / 8.0));
  EXPECT_NEAR(qaoa.ground_state_probability(),
              std::pow(std::sin(3.0 * theta), 2), 1e-10);
}

TEST(GroverFast, AdjointGradientMatchesFiniteDifferences) {
  Rng rng(31);
  Graph g = erdos_renyi(8, 0.5, rng);
  dvec table = tabulate(StateSpace::full(8),
                        [&g](state_t x) { return maxcut(g, x); });
  GroverQaoa qaoa(degeneracy_table(table));

  const int p = 3;
  std::vector<double> betas(p), gammas(p);
  for (auto& a : betas) a = rng.uniform(0.0, 2.0 * kPi);
  for (auto& a : gammas) a = rng.uniform(0.0, 2.0 * kPi);

  std::vector<double> gb(p), gg(p);
  const double value = qaoa.value_and_gradient(betas, gammas, gb, gg);
  EXPECT_NEAR(value, qaoa.run(betas, gammas), 1e-12);

  const double h = 1e-6;
  for (int i = 0; i < p; ++i) {
    auto bp = betas;
    bp[static_cast<std::size_t>(i)] += h;
    auto bm = betas;
    bm[static_cast<std::size_t>(i)] -= h;
    const double fd =
        (qaoa.run(bp, gammas) - qaoa.run(bm, gammas)) / (2.0 * h);
    EXPECT_NEAR(gb[static_cast<std::size_t>(i)], fd, 1e-5) << "beta " << i;

    auto gp = gammas;
    gp[static_cast<std::size_t>(i)] += h;
    auto gm = gammas;
    gm[static_cast<std::size_t>(i)] -= h;
    const double fd_g =
        (qaoa.run(betas, gp) - qaoa.run(betas, gm)) / (2.0 * h);
    EXPECT_NEAR(gg[static_cast<std::size_t>(i)], fd_g, 1e-5) << "gamma " << i;
  }
}

TEST(GroverFast, GradientAgreesWithFullSimulatorGradient) {
  // The compressed gradient must equal the full-space adjoint gradient.
  Rng rng(32);
  Graph g = erdos_renyi(7, 0.5, rng);
  dvec table = tabulate(StateSpace::full(7),
                        [&g](state_t x) { return maxcut(g, x); });
  GroverMixer mixer(128);
  Qaoa full(mixer, table, 2);
  AdjointDifferentiator adjoint(full);
  std::vector<double> betas = {0.6, 1.3};
  std::vector<double> gammas = {0.9, 0.4};
  std::vector<double> gb_full(2), gg_full(2);
  const double e_full =
      adjoint.value_and_gradient(betas, gammas, gb_full, gg_full);

  GroverQaoa fast(degeneracy_table(table));
  std::vector<double> gb_fast(2), gg_fast(2);
  const double e_fast =
      fast.value_and_gradient(betas, gammas, gb_fast, gg_fast);
  EXPECT_NEAR(e_full, e_fast, 1e-10);
  for (int i = 0; i < 2; ++i) {
    EXPECT_NEAR(gb_full[static_cast<std::size_t>(i)],
                gb_fast[static_cast<std::size_t>(i)], 1e-9);
    EXPECT_NEAR(gg_full[static_cast<std::size_t>(i)],
                gg_fast[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(GroverFast, CompressedAngleFindingBeyondStatevectorScale) {
  // Optimize Grover-mixer QAOA angles over a 2^24-state search space — a
  // 128 MiB statevector replaced by two compressed classes. (At the truly
  // astronomic scales the compressed path *simulates*, e.g. 2^100, the
  // success probability itself underflows any optimizer's tolerances, so
  // angle *optimization* is exercised where the objective is resolvable.)
  const double num_states = std::pow(2.0, 24);
  GroverQaoa engine = grover_search_qaoa(num_states, 4096.0);
  FindAnglesOptions opt;
  opt.hopping.hops = 6;
  opt.seed = 7;
  auto schedules = find_angles_compressed(engine, 3, opt);
  ASSERT_EQ(schedules.size(), 3u);
  const double theta = std::asin(std::sqrt(4096.0 / num_states));
  for (const AngleSchedule& s : schedules) {
    engine.run_packed(s.packed());
    const double optimal =
        std::pow(std::sin((2.0 * s.p + 1.0) * theta), 2);
    // Optimized angles recover at least 90% of the known optimum, and the
    // expectation equals the success probability for the 0/1 objective.
    EXPECT_GT(engine.ground_state_probability(), 0.9 * optimal) << s.p;
    EXPECT_NEAR(s.expectation, engine.ground_state_probability(), 1e-12);
  }
  // Monotone amplification across rounds.
  EXPECT_GT(schedules[2].expectation, schedules[0].expectation);
}

TEST(GroverFast, CompressedObjectiveGradientsFeedBfgs) {
  Rng rng(41);
  Graph g = erdos_renyi(8, 0.5, rng);
  dvec table = tabulate(StateSpace::full(8),
                        [&g](state_t x) { return maxcut(g, x); });
  GroverQaoa engine(degeneracy_table(table));
  GroverObjective objective(engine, Direction::Maximize);
  OptResult res =
      bfgs_minimize(objective.as_grad_objective(), {0.5, 0.5, 0.8, 0.8});
  // BFGS with compressed gradients improves on the uniform-state mean.
  EXPECT_GT(objective.to_expectation(res.f), objective_stats(table).mean);
}

TEST(GroverFast, Validation) {
  EXPECT_THROW(GroverQaoa({}, {}), Error);
  EXPECT_THROW(GroverQaoa({1.0}, {1.0, 2.0}), Error);
  EXPECT_THROW(GroverQaoa({1.0}, {0.0}), Error);
  GroverQaoa ok({0.0, 1.0}, {3.0, 1.0});
  EXPECT_THROW(ok.set_phase_values({1.0}), Error);
  std::vector<double> odd(3, 0.1);
  EXPECT_THROW(ok.run_packed(odd), Error);
  EXPECT_THROW(grover_search_qaoa(10.0, 10.0), Error);
  EXPECT_THROW(grover_hamming_weight_qaoa(4, {1.0}), Error);
}

}  // namespace
}  // namespace fastqaoa
