// Cross-validation fuzz tests: independent implementations of the same
// mathematical object must agree on random inputs. Three XY-mixer paths
// (dense eigendecomposition, matrix-free Chebyshev, fine-step Trotter),
// two X-mixer construction paths, two sampling determinism guarantees.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/trotter_mixer.hpp"
#include "bits/combinatorics.hpp"
#include "common/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "mixers/chebyshev_mixer.hpp"
#include "mixers/eigen_mixer.hpp"
#include "mixers/x_mixer.hpp"
#include "sampling/sampler.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

class XyMixerTriangle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XyMixerTriangle, ThreePathsAgreeOnRandomPairGraphs) {
  Rng rng(GetParam());
  const int n = 5 + static_cast<int>(rng.bounded(3));  // 5..7
  const int k = 2 + static_cast<int>(rng.bounded(
                        static_cast<std::uint64_t>(n - 3)));  // 2..n-2
  StateSpace space = StateSpace::dicke(n, k);
  // Random connected-ish pair graph with random weights.
  Graph pairs = erdos_renyi(n, 0.6, rng);
  if (pairs.num_edges() == 0) pairs.add_edge(0, 1);

  const double beta = rng.uniform(-1.5, 1.5);
  cvec reference = testutil::random_state(space.dim(), rng);
  cvec scratch;

  // Path 1: dense eigendecomposition (exact).
  EigenMixer dense = EigenMixer::xy_graph(space, pairs);
  cvec a = reference;
  dense.apply_exp(a, beta, scratch);

  // Path 2: matrix-free Chebyshev (exact to tolerance).
  ChebyshevMixer cheb(std::make_shared<SparseXYOperator>(space, pairs),
                      1e-12);
  cvec b = reference;
  cheb.apply_exp(b, beta, scratch);
  EXPECT_LT(testutil::max_diff(a, b), 1e-9) << "n=" << n << " k=" << k;

  // Path 3: Trotter with many steps (converges ~1/steps).
  baselines::TrotterXYMixer trotter(space, pairs, 256);
  cvec c = reference;
  trotter.apply_exp(c, beta, scratch);
  EXPECT_LT(testutil::max_diff(a, c), 2e-2) << "n=" << n << " k=" << k;

  // All three preserve the norm exactly.
  EXPECT_NEAR(linalg::norm(a), 1.0, 1e-9);
  EXPECT_NEAR(linalg::norm(b), 1.0, 1e-9);
  EXPECT_NEAR(linalg::norm(c), 1.0, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, XyMixerTriangle,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

class XMixerConstruction : public ::testing::TestWithParam<int> {};

TEST_P(XMixerConstruction, OrderMixersMatchExplicitTermEnumeration) {
  // from_orders (Krawtchouk analytic diagonal) vs the direct term-list
  // constructor, applied — not just the diagonals but the action.
  const int order = GetParam();
  const int n = 6;
  XMixer fast = XMixer::from_orders(n, {order});
  std::vector<PauliXTerm> terms;
  for_each_weight_k(n, order,
                    [&terms](state_t m) { terms.push_back({m, 1.0}); });
  XMixer direct(n, terms);
  Rng rng(static_cast<std::uint64_t>(order) * 17);
  cvec a = testutil::random_state(64, rng);
  cvec b = a;
  cvec scratch;
  fast.apply_exp(a, 0.45, scratch);
  direct.apply_exp(b, 0.45, scratch);
  EXPECT_LT(testutil::max_diff(a, b), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Orders, XMixerConstruction,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(SamplerDeterminism, SameSeedSameDraws) {
  Rng state_rng(1);
  cvec psi = testutil::random_state(64, state_rng);
  MeasurementSampler sampler(psi);
  Rng a(99), b(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(sampler.sample(a), sampler.sample(b));
  }
}

TEST(SamplerDeterminism, CountsMatchSingleDrawsUnderSameStream) {
  Rng state_rng(2);
  cvec psi = testutil::random_state(16, state_rng);
  MeasurementSampler sampler(psi);
  Rng a(7), b(7);
  auto counts = sampler.sample_counts(500, a);
  std::vector<std::uint64_t> manual(16, 0);
  for (int i = 0; i < 500; ++i) ++manual[sampler.sample(b)];
  EXPECT_EQ(counts, manual);
}

}  // namespace
}  // namespace fastqaoa
