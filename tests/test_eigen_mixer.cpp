// Unit tests for eigendecomposition-based mixers (Clique, Ring, custom XY
// and generic Hermitian mixers) on Dicke subspaces.

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "mixers/eigen_mixer.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

linalg::cmat to_complex(const linalg::dmat& m) {
  linalg::cmat c(m.rows(), m.cols());
  for (index_t r = 0; r < m.rows(); ++r)
    for (index_t col = 0; col < m.cols(); ++col)
      c(r, col) = cplx{m(r, col), 0.0};
  return c;
}

TEST(XyHamiltonian, TwoQubitSingleExcitation) {
  // n=2, k=1: basis {|01>, |10>}; X0X1 + Y0Y1 = 2*swap = [[0,2],[2,0]].
  StateSpace space = StateSpace::dicke(2, 1);
  linalg::dmat h = EigenMixer::xy_hamiltonian(space, complete_graph(2));
  EXPECT_DOUBLE_EQ(h(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(h(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(h(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(h(1, 1), 0.0);
}

TEST(XyHamiltonian, IsSymmetricWithRowSumsForClique) {
  // Clique mixer on Dicke(n,k): every state connects to k(n-k) partners
  // with matrix element 2, so every row sums to 2k(n-k).
  StateSpace space = StateSpace::dicke(6, 2);
  linalg::dmat h = EigenMixer::xy_hamiltonian(space, complete_graph(6));
  const index_t dim = space.dim();
  for (index_t r = 0; r < dim; ++r) {
    double row_sum = 0.0;
    for (index_t c = 0; c < dim; ++c) {
      EXPECT_DOUBLE_EQ(h(r, c), h(c, r));
      row_sum += h(r, c);
    }
    EXPECT_DOUBLE_EQ(row_sum, 2.0 * 2 * (6 - 2));
  }
}

TEST(EigenMixer, CliqueMatchesDenseExponential) {
  Rng rng(1);
  StateSpace space = StateSpace::dicke(5, 2);
  const linalg::dmat h =
      EigenMixer::xy_hamiltonian(space, complete_graph(5));
  EigenMixer mixer = EigenMixer::clique(space);
  EXPECT_TRUE(mixer.is_real());
  EXPECT_EQ(mixer.dim(), 10u);
  EXPECT_EQ(mixer.name(), "clique");

  for (const double beta : {0.0, 0.35, -1.1}) {
    const linalg::cmat u = testutil::exp_minus_i_beta(h, beta);
    cvec psi = testutil::random_state(10, rng);
    cvec expected = testutil::matvec(u, psi);
    cvec scratch;
    mixer.apply_exp(psi, beta, scratch);
    EXPECT_LT(testutil::max_diff(psi, expected), 1e-10) << "beta=" << beta;
  }
}

TEST(EigenMixer, RingMatchesDenseExponential) {
  Rng rng(2);
  StateSpace space = StateSpace::dicke(6, 3);
  const linalg::dmat h = EigenMixer::xy_hamiltonian(space, ring_graph(6));
  EigenMixer mixer = EigenMixer::ring(space);
  const double beta = 0.6;
  const linalg::cmat u = testutil::exp_minus_i_beta(h, beta);
  cvec psi = testutil::random_state(space.dim(), rng);
  cvec expected = testutil::matvec(u, psi);
  cvec scratch;
  mixer.apply_exp(psi, beta, scratch);
  EXPECT_LT(testutil::max_diff(psi, expected), 1e-10);
}

TEST(EigenMixer, PreservesNormAndInverse) {
  Rng rng(3);
  StateSpace space = StateSpace::dicke(7, 3);
  EigenMixer mixer = EigenMixer::clique(space);
  cvec psi = testutil::random_state(space.dim(), rng);
  cvec orig = psi;
  cvec scratch;
  mixer.apply_exp(psi, 1.4, scratch);
  EXPECT_NEAR(linalg::norm(psi), 1.0, 1e-10);
  mixer.apply_exp(psi, -1.4, scratch);
  EXPECT_LT(testutil::max_diff(psi, orig), 1e-10);
}

TEST(EigenMixer, ApplyHamMatchesMatrix) {
  Rng rng(4);
  StateSpace space = StateSpace::dicke(5, 2);
  const linalg::dmat h = EigenMixer::xy_hamiltonian(space, ring_graph(5));
  EigenMixer mixer = EigenMixer::ring(space);
  cvec psi = testutil::random_state(space.dim(), rng);
  cvec out(space.dim()), scratch;
  mixer.apply_ham(psi, out, scratch);
  cvec expected = testutil::matvec(to_complex(h), psi);
  EXPECT_LT(testutil::max_diff(out, expected), 1e-10);
}

TEST(EigenMixer, CustomXyGraphWeights) {
  StateSpace space = StateSpace::dicke(3, 1);
  Graph pairs(3);
  pairs.add_edge(0, 1, 2.0);
  pairs.add_edge(1, 2, 0.5);
  linalg::dmat h = EigenMixer::xy_hamiltonian(space, pairs);
  // Basis {|001>=idx0, |010>=idx1, |100>=idx2}: 0<->1 element 4, 1<->2
  // element 1, 0<->2 absent.
  EXPECT_DOUBLE_EQ(h(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(h(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(h(0, 2), 0.0);
}

TEST(EigenMixer, FromRealHamiltonian) {
  Rng rng(5);
  linalg::dmat h = linalg::symmetrize(linalg::random_matrix(8, 8, rng));
  EigenMixer mixer = EigenMixer::from_hamiltonian(h, "custom");
  EXPECT_TRUE(mixer.is_real());
  cvec psi = testutil::random_state(8, rng);
  cvec expected = testutil::matvec(testutil::exp_minus_i_beta(h, 0.8), psi);
  cvec scratch;
  mixer.apply_exp(psi, 0.8, scratch);
  EXPECT_LT(testutil::max_diff(psi, expected), 1e-9);
}

TEST(EigenMixer, FromComplexHamiltonian) {
  Rng rng(6);
  linalg::cmat h = linalg::hermitize(linalg::random_cmatrix(6, 6, rng));
  EigenMixer mixer = EigenMixer::from_hamiltonian(h, "custom-herm");
  EXPECT_FALSE(mixer.is_real());
  cvec psi = testutil::random_state(6, rng);
  cvec expected = testutil::matvec(testutil::exp_minus_i_beta(h, -0.45), psi);
  cvec scratch;
  mixer.apply_exp(psi, -0.45, scratch);
  EXPECT_LT(testutil::max_diff(psi, expected), 1e-9);
  // apply_ham agrees with the dense matrix too.
  cvec out(psi.size());
  mixer.apply_ham(psi, out, scratch);
  cvec hexp = testutil::matvec(h, psi);
  EXPECT_LT(testutil::max_diff(out, hexp), 1e-9);
}

TEST(EigenMixer, DickePlusStateIsCliqueEigenvector) {
  // The uniform Dicke state is the top eigenvector of the Clique mixer, so
  // mixing only multiplies it by a phase.
  StateSpace space = StateSpace::dicke(6, 3);
  EigenMixer mixer = EigenMixer::clique(space);
  cvec psi = testutil::uniform_state(space.dim());
  cvec scratch;
  mixer.apply_exp(psi, 0.5, scratch);
  // All amplitudes still equal (global phase only).
  for (index_t i = 1; i < psi.size(); ++i) {
    EXPECT_NEAR(std::abs(psi[i] - psi[0]), 0.0, 1e-10);
  }
  EXPECT_NEAR(std::abs(psi[0]),
              1.0 / std::sqrt(static_cast<double>(space.dim())), 1e-10);
}

TEST(EigenMixer, CliqueTopEigenvalueIsAnalytic) {
  // The uniform Dicke state is the top eigenvector of the Clique mixer
  // with eigenvalue 2k(n-k) (each state couples to k(n-k) partners with
  // element 2 and the row sums are constant).
  for (const auto& [n, k] : std::vector<std::pair<int, int>>{
           {5, 2}, {6, 3}, {8, 4}, {9, 3}}) {
    StateSpace space = StateSpace::dicke(n, k);
    EigenMixer mixer = EigenMixer::clique(space);
    const dvec& vals = mixer.real_eig().eigenvalues;
    EXPECT_NEAR(vals.back(), 2.0 * k * (n - k), 1e-8)
        << "n=" << n << " k=" << k;
    // And the corresponding eigenvector is the uniform superposition.
    const double amp = 1.0 / std::sqrt(static_cast<double>(space.dim()));
    const auto& v = mixer.real_eig().vectors;
    const double sign = v(0, space.dim() - 1) >= 0 ? 1.0 : -1.0;
    for (index_t i = 0; i < space.dim(); ++i) {
      EXPECT_NEAR(sign * v(i, space.dim() - 1), amp, 1e-7);
    }
  }
}

TEST(EigenMixer, RepeatedApplicationIsDeterministic) {
  StateSpace space = StateSpace::dicke(6, 3);
  EigenMixer mixer = EigenMixer::clique(space);
  Rng rng(12);
  cvec psi1 = testutil::random_state(space.dim(), rng);
  cvec psi2 = psi1;
  cvec scratch1, scratch2;
  for (int i = 0; i < 5; ++i) {
    mixer.apply_exp(psi1, 0.37, scratch1);
    mixer.apply_exp(psi2, 0.37, scratch2);
  }
  EXPECT_EQ(testutil::max_diff(psi1, psi2), 0.0);
}

TEST(EigenMixer, AccessorsThrowOnWrongPath) {
  StateSpace space = StateSpace::dicke(4, 2);
  EigenMixer real_mixer = EigenMixer::clique(space);
  EXPECT_THROW((void)real_mixer.herm_eig(), Error);
  Rng rng(7);
  EigenMixer herm_mixer = EigenMixer::from_hamiltonian(
      linalg::hermitize(linalg::random_cmatrix(4, 4, rng)), "h");
  EXPECT_THROW((void)herm_mixer.real_eig(), Error);
}

TEST(EigenMixer, MismatchedPairGraphThrows) {
  StateSpace space = StateSpace::dicke(5, 2);
  EXPECT_THROW(EigenMixer::xy_hamiltonian(space, complete_graph(4)), Error);
}

}  // namespace
}  // namespace fastqaoa
