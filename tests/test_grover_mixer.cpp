// Unit tests for the rank-1 Grover mixer e^{-i beta |psi0><psi0|}.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "mixers/grover_mixer.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

/// Dense |psi0><psi0| projector for the uniform state.
linalg::cmat dense_grover_hamiltonian(index_t dim) {
  linalg::cmat h(dim, dim);
  const double inv = 1.0 / static_cast<double>(dim);
  for (index_t r = 0; r < dim; ++r)
    for (index_t c = 0; c < dim; ++c) h(r, c) = cplx{inv, 0.0};
  return h;
}

TEST(GroverMixer, MatchesDenseProjectorExponential) {
  Rng rng(1);
  const index_t dim = 20;  // non-power-of-two: Dicke-style subspace size
  GroverMixer mixer(dim);
  const linalg::cmat h = dense_grover_hamiltonian(dim);
  for (const double beta : {0.0, 0.4, kPi, -1.3}) {
    const linalg::cmat u = testutil::exp_minus_i_beta(h, beta);
    cvec psi = testutil::random_state(dim, rng);
    cvec expected = testutil::matvec(u, psi);
    cvec scratch;
    mixer.apply_exp(psi, beta, scratch);
    EXPECT_LT(testutil::max_diff(psi, expected), 1e-11) << "beta=" << beta;
  }
}

TEST(GroverMixer, UniformStateGetsGlobalPhase) {
  // |psi0> is the eigenvector with eigenvalue 1: e^{-i beta}|psi0>.
  const index_t dim = 32;
  GroverMixer mixer(dim);
  cvec psi = testutil::uniform_state(dim);
  cvec scratch;
  const double beta = 0.9;
  mixer.apply_exp(psi, beta, scratch);
  const cplx phase{std::cos(beta), -std::sin(beta)};
  const double amp = 1.0 / std::sqrt(static_cast<double>(dim));
  for (const auto& a : psi) {
    EXPECT_NEAR(std::abs(a - phase * amp), 0.0, 1e-13);
  }
}

TEST(GroverMixer, OrthogonalStatesUntouched) {
  // A state orthogonal to |psi0> (zero sum) is an eigenvector with
  // eigenvalue 0 — no change at all.
  const index_t dim = 8;
  GroverMixer mixer(dim);
  cvec psi(dim, cplx{0.0, 0.0});
  psi[0] = cplx{1.0 / std::sqrt(2.0), 0.0};
  psi[1] = cplx{-1.0 / std::sqrt(2.0), 0.0};
  cvec orig = psi;
  cvec scratch;
  mixer.apply_exp(psi, 1.234, scratch);
  EXPECT_LT(testutil::max_diff(psi, orig), 1e-13);
}

TEST(GroverMixer, PreservesNormAndInverse) {
  Rng rng(2);
  GroverMixer mixer(50);
  cvec psi = testutil::random_state(50, rng);
  cvec orig = psi;
  cvec scratch;
  mixer.apply_exp(psi, 0.77, scratch);
  EXPECT_NEAR(linalg::norm(psi), 1.0, 1e-12);
  mixer.apply_exp(psi, -0.77, scratch);
  EXPECT_LT(testutil::max_diff(psi, orig), 1e-12);
}

TEST(GroverMixer, TwoPiBetaIsIdentity) {
  // Eigenvalues are 0 and 1, so beta = 2 pi gives the identity.
  Rng rng(3);
  GroverMixer mixer(16);
  cvec psi = testutil::random_state(16, rng);
  cvec orig = psi;
  cvec scratch;
  mixer.apply_exp(psi, 2.0 * kPi, scratch);
  EXPECT_LT(testutil::max_diff(psi, orig), 1e-12);
}

TEST(GroverMixer, ApplyHamIsProjection) {
  Rng rng(4);
  const index_t dim = 12;
  GroverMixer mixer(dim);
  cvec psi = testutil::random_state(dim, rng);
  cvec out(dim), scratch;
  mixer.apply_ham(psi, out, scratch);
  const linalg::cmat h = dense_grover_hamiltonian(dim);
  cvec expected = testutil::matvec(h, psi);
  EXPECT_LT(testutil::max_diff(out, expected), 1e-13);
  // Projector: H(H psi) = H psi.
  cvec out2(dim);
  mixer.apply_ham(out, out2, scratch);
  EXPECT_LT(testutil::max_diff(out, out2), 1e-13);
}

TEST(GroverMixer, FairSampling) {
  // Starting uniform and applying phase+mixer keeps equal-value classes at
  // equal amplitude: here all states have equal cost so the state stays
  // uniform up to a phase.
  GroverMixer mixer(10);
  cvec psi = testutil::uniform_state(10);
  cvec scratch;
  mixer.apply_exp(psi, 0.3, scratch);
  for (index_t i = 1; i < psi.size(); ++i) {
    EXPECT_NEAR(std::abs(psi[i] - psi[0]), 0.0, 1e-13);
  }
}

TEST(GroverMixer, Validation) {
  EXPECT_THROW(GroverMixer(0), Error);
  GroverMixer m(4);
  cvec wrong(5);
  cvec scratch;
  EXPECT_THROW(m.apply_exp(wrong, 0.1, scratch), Error);
}

}  // namespace
}  // namespace fastqaoa
