// Tests for the ensemble-study module (stats, run_ensemble, median-angle
// transfer) and the multi-angle helper utilities.

#include <gtest/gtest.h>

#include <cmath>

#include "bits/bitops.hpp"
#include "core/multi_angle.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"
#include "study/ensemble.hpp"

namespace fastqaoa {
namespace {

TEST(Stats, SampleStatsKnownValues) {
  SampleStats s = sample_stats({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_EQ(s.count, 4u);
  EXPECT_THROW(sample_stats({}), Error);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_THROW(median({}), Error);
}

InstanceFactory maxcut_factory(int n) {
  return [n](Rng& rng) {
    Graph g = erdos_renyi(n, 0.5, rng);
    return tabulate(StateSpace::full(n),
                    [&g](state_t x) { return maxcut(g, x); });
  };
}

TEST(Ensemble, RunProducesPerInstanceAndAggregateResults) {
  const int n = 6;
  XMixer mixer = XMixer::transverse_field(n);
  EnsembleConfig config;
  config.instances = 4;
  config.max_rounds = 2;
  config.angle_options.hopping.hops = 3;
  EnsembleResult result = run_ensemble(mixer, maxcut_factory(n), config);

  ASSERT_EQ(result.schedules.size(), 4u);
  ASSERT_EQ(result.ratios.size(), 4u);
  ASSERT_EQ(result.per_round.size(), 2u);
  for (const auto& inst : result.ratios) {
    ASSERT_EQ(inst.size(), 2u);
    for (const double r : inst) {
      EXPECT_GT(r, 0.4);
      EXPECT_LE(r, 1.0 + 1e-12);
    }
  }
  // Aggregates consistent with per-instance data.
  EXPECT_GE(result.per_round[1].mean, result.per_round[0].mean - 0.05);
  EXPECT_LE(result.per_round[0].min, result.per_round[0].mean);
  EXPECT_GE(result.per_round[0].max, result.per_round[0].mean);
  EXPECT_EQ(result.per_round[0].count, 4u);
}

TEST(Ensemble, ReproduciblePerSeed) {
  const int n = 5;
  XMixer mixer = XMixer::transverse_field(n);
  EnsembleConfig config;
  config.instances = 3;
  config.max_rounds = 1;
  config.seed = 77;
  config.angle_options.hopping.hops = 2;
  EnsembleResult a = run_ensemble(mixer, maxcut_factory(n), config);
  EnsembleResult b = run_ensemble(mixer, maxcut_factory(n), config);
  EXPECT_EQ(a.ratios, b.ratios);
}

TEST(Ensemble, DimensionMismatchThrows) {
  XMixer mixer = XMixer::transverse_field(4);
  EnsembleConfig config;
  config.instances = 1;
  EXPECT_THROW(run_ensemble(mixer, maxcut_factory(6), config), Error);
}

TEST(Ensemble, MedianTransferRatiosBelowDonors) {
  const int n = 6;
  XMixer mixer = XMixer::transverse_field(n);
  EnsembleConfig config;
  config.instances = 5;
  config.angle_options.hopping.local.max_iterations = 100;
  MedianTransferResult result =
      median_angle_transfer(mixer, maxcut_factory(n), 1, 10, config);
  ASSERT_EQ(result.median_packed.size(), 2u);
  // Transferred angles cannot beat per-instance optimization on average.
  EXPECT_LE(result.transfer_ratios.mean, result.donor_ratios.mean + 1e-9);
  EXPECT_GT(result.donor_ratios.mean, 0.6);
}

TEST(MultiAngle, PerQubitMixersActIndependently) {
  auto mixers = per_qubit_x_mixers(3);
  ASSERT_EQ(mixers.size(), 3u);
  // Mixer q is X on qubit q only: diagonal (+1 where bit q clear, -1 set).
  for (int q = 0; q < 3; ++q) {
    for (state_t z = 0; z < 8; ++z) {
      EXPECT_DOUBLE_EQ(mixers[static_cast<std::size_t>(q)].diagonal()[z],
                       bit(z, q) ? -1.0 : 1.0);
    }
  }
}

TEST(MultiAngle, RepeatedLayersMatchSingleMixerWhenAnglesEqual) {
  // ma-QAOA with all per-qubit betas equal must reduce to the standard
  // transverse-field QAOA (the per-qubit X terms commute).
  Rng rng(5);
  const int n = 5;
  Graph g = erdos_renyi(n, 0.5, rng);
  dvec table = tabulate(StateSpace::full(n),
                        [&g](state_t x) { return maxcut(g, x); });

  auto mixers = per_qubit_x_mixers(n);
  auto layers = repeated_layers(mixers, 2);
  Qaoa multi(layers, table);
  EXPECT_EQ(multi.num_betas(), 2 * n);

  XMixer tf = XMixer::transverse_field(n);
  Qaoa single(tf, table, 2);

  const double beta1 = 0.4;
  const double beta2 = 0.9;
  std::vector<double> gammas = {0.7, 0.3};
  std::vector<double> single_betas = {beta1, beta2};
  std::vector<double> multi_betas(static_cast<std::size_t>(2 * n));
  for (int q = 0; q < n; ++q) {
    multi_betas[static_cast<std::size_t>(q)] = beta1;
    multi_betas[static_cast<std::size_t>(n + q)] = beta2;
  }
  EXPECT_NEAR(multi.run(multi_betas, gammas),
              single.run(single_betas, gammas), 1e-10);
}

TEST(MultiAngle, DistinctAnglesChangeTheState) {
  Rng rng(6);
  const int n = 4;
  Graph g = erdos_renyi(n, 0.6, rng);
  dvec table = tabulate(StateSpace::full(n),
                        [&g](state_t x) { return maxcut(g, x); });
  auto mixers = per_qubit_x_mixers(n);
  auto layers = repeated_layers(mixers, 1);
  Qaoa engine(layers, table);
  std::vector<double> gammas = {0.8};
  std::vector<double> uniform_betas(4, 0.5);
  std::vector<double> varied_betas = {0.1, 0.9, 0.4, 1.3};
  const double e_uniform = engine.run(uniform_betas, gammas);
  const double e_varied = engine.run(varied_betas, gammas);
  EXPECT_GT(std::abs(e_uniform - e_varied), 1e-6);
}

TEST(MultiAngle, Validation) {
  EXPECT_THROW(per_qubit_x_mixers(0), Error);
  auto mixers = per_qubit_x_mixers(2);
  EXPECT_THROW(repeated_layers(mixers, 0), Error);
  EXPECT_THROW(repeated_layers({}, 2), Error);
}

}  // namespace
}  // namespace fastqaoa
