// Concurrency tests for the QaoaPlan / EvalWorkspace split: one immutable
// plan shared across many threads must produce bit-identical results, and
// the parallel outer loops (random restarts, basinhopping chains, ensemble
// instances) must be invariant to the thread count.
//
// All tests pin the OpenMP default team to 1 thread (in every worker
// thread too — the ICV is per-thread) so the per-state inner kernels reduce
// in a fixed order; only the outer loops under test run with >1 threads,
// via explicit num_threads clauses or std::thread.

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/threading.hpp"
#include "core/plan.hpp"
#include "core/qaoa.hpp"
#include "autodiff/adjoint.hpp"
#include "mixers/chebyshev_mixer.hpp"
#include "mixers/grover_mixer.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"
#include "study/ensemble.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

constexpr int kThreads = 6;
constexpr int kEvalsPerThread = 20;

dvec maxcut_table(const Graph& g) {
  return tabulate(StateSpace::full(g.num_vertices()),
                  [&g](state_t x) { return maxcut(g, x); });
}

std::vector<double> random_angles(int count, Rng& rng) {
  std::vector<double> a(static_cast<std::size_t>(count));
  for (auto& x : a) x = rng.uniform(0.0, 2.0 * kPi);
  return a;
}

/// Evaluate `plan` at fixed packed angles from kThreads std::threads, each
/// with a private workspace, and require every result to be bit-identical
/// to the serial reference.
void expect_concurrent_bit_identical(const QaoaPlan& plan,
                                     const std::vector<double>& packed) {
  set_num_threads(1);
  EvalWorkspace ref_ws;
  const double ref = evaluate_packed(plan, ref_ws, packed);
  const cvec ref_state = ref_ws.psi.to_vec();

  std::vector<std::vector<double>> results(kThreads);
  std::vector<cvec> final_states(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      set_num_threads(1);  // fresh native thread: pin its OpenMP ICV too
      EvalWorkspace ws;
      ws.reserve(plan);
      for (int e = 0; e < kEvalsPerThread; ++e) {
        results[static_cast<std::size_t>(t)].push_back(
            evaluate_packed(plan, ws, packed));
      }
      final_states[static_cast<std::size_t>(t)] = ws.psi.to_vec();
    });
  }
  for (auto& w : workers) w.join();

  for (int t = 0; t < kThreads; ++t) {
    for (double e : results[static_cast<std::size_t>(t)]) {
      EXPECT_EQ(e, ref) << "thread " << t;
    }
    const cvec& state = final_states[static_cast<std::size_t>(t)];
    ASSERT_EQ(state.size(), ref_state.size());
    for (index_t i = 0; i < plan.dim(); ++i) {
      EXPECT_EQ(state[i].real(), ref_state[i].real()) << "thread " << t;
      EXPECT_EQ(state[i].imag(), ref_state[i].imag()) << "thread " << t;
    }
  }
}

TEST(SharedPlan, ConcurrentXMixerEvaluationBitIdentical) {
  Rng rng(11);
  Graph g = erdos_renyi(8, 0.5, rng);
  XMixer mixer = XMixer::transverse_field(8);
  QaoaPlan plan(mixer, maxcut_table(g), 3);
  expect_concurrent_bit_identical(plan, random_angles(6, rng));
}

TEST(SharedPlan, ConcurrentGroverMixerEvaluationBitIdentical) {
  Rng rng(12);
  Graph g = erdos_renyi(7, 0.5, rng);
  GroverMixer mixer(static_cast<index_t>(1) << 7);
  QaoaPlan plan(mixer, maxcut_table(g), 2);
  expect_concurrent_bit_identical(plan, random_angles(4, rng));
}

// The Chebyshev mixer used to keep mutable recurrence buffers — the one
// mixer that violated the thread-compatibility contract. Its state now
// lives entirely in the caller's scratch, so a shared instance must be
// safe under real concurrency.
TEST(SharedPlan, ConcurrentChebyshevMixerEvaluationBitIdentical) {
  Rng rng(13);
  StateSpace space = StateSpace::dicke(8, 4);
  ChebyshevMixer mixer = ChebyshevMixer::clique(space, 1e-12);
  Graph g = erdos_renyi(8, 0.5, rng);
  dvec table =
      tabulate(space, [&g](state_t x) { return densest_subgraph(g, x); });
  QaoaPlan plan(mixer, std::move(table), 2);
  expect_concurrent_bit_identical(plan, random_angles(4, rng));
}

TEST(SharedPlan, ConcurrentAdjointGradientBitIdentical) {
  Rng rng(14);
  Graph g = erdos_renyi(7, 0.5, rng);
  XMixer mixer = XMixer::transverse_field(7);
  QaoaPlan plan(mixer, maxcut_table(g), 3);
  const std::vector<double> betas = random_angles(3, rng);
  const std::vector<double> gammas = random_angles(3, rng);

  set_num_threads(1);
  EvalWorkspace ref_ws;
  std::vector<double> ref_gb(3), ref_gg(3);
  const double ref =
      adjoint_value_and_gradient(plan, ref_ws, betas, gammas, ref_gb, ref_gg);

  std::vector<double> values(kThreads);
  std::vector<std::vector<double>> grads_b(kThreads), grads_g(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      set_num_threads(1);
      EvalWorkspace ws;
      std::vector<double> gb(3), gg(3);
      double v = 0.0;
      for (int e = 0; e < kEvalsPerThread; ++e) {
        v = adjoint_value_and_gradient(plan, ws, betas, gammas, gb, gg);
      }
      values[static_cast<std::size_t>(t)] = v;
      grads_b[static_cast<std::size_t>(t)] = gb;
      grads_g[static_cast<std::size_t>(t)] = gg;
    });
  }
  for (auto& w : workers) w.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(values[static_cast<std::size_t>(t)], ref);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(grads_b[static_cast<std::size_t>(t)][static_cast<std::size_t>(
                    i)],
                ref_gb[static_cast<std::size_t>(i)]);
      EXPECT_EQ(grads_g[static_cast<std::size_t>(t)][static_cast<std::size_t>(
                    i)],
                ref_gg[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(ParallelStrategies, RandomRestartsThreadCountInvariant) {
  Rng rng(21);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(6);
  FindAnglesOptions opt;
  opt.seed = 7;

  set_num_threads(1);
  const AngleSchedule serial = find_angles_random(mixer, table, 2, 6, opt);
  set_num_threads(4);
  const AngleSchedule parallel = find_angles_random(mixer, table, 2, 6, opt);
  set_num_threads(1);

  EXPECT_EQ(serial.expectation, parallel.expectation);
  EXPECT_EQ(serial.betas, parallel.betas);
  EXPECT_EQ(serial.gammas, parallel.gammas);
}

TEST(ParallelStrategies, BasinhoppingChainsThreadCountInvariant) {
  Rng rng(22);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(6);
  FindAnglesOptions opt;
  opt.seed = 9;
  opt.hopping.hops = 3;
  opt.parallel_starts = 4;

  set_num_threads(1);
  const std::vector<AngleSchedule> serial = find_angles(mixer, table, 2, opt);
  set_num_threads(4);
  const std::vector<AngleSchedule> parallel =
      find_angles(mixer, table, 2, opt);
  set_num_threads(1);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    EXPECT_EQ(serial[p].expectation, parallel[p].expectation);
    EXPECT_EQ(serial[p].betas, parallel[p].betas);
    EXPECT_EQ(serial[p].gammas, parallel[p].gammas);
  }
}

TEST(ParallelStrategies, GridSearchThreadCountInvariant) {
  Rng rng(23);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(6);
  FindAnglesOptions opt;

  set_num_threads(1);
  const AngleSchedule serial =
      find_angles_grid(mixer, table, 1, 8, opt, /*polish=*/false);
  set_num_threads(4);
  const AngleSchedule parallel =
      find_angles_grid(mixer, table, 1, 8, opt, /*polish=*/false);
  set_num_threads(1);

  EXPECT_EQ(serial.expectation, parallel.expectation);
  EXPECT_EQ(serial.betas, parallel.betas);
  EXPECT_EQ(serial.gammas, parallel.gammas);
}

TEST(Ensemble, DeterministicAcrossThreadCounts) {
  set_num_threads(1);  // keep the inner kernels serial at both team sizes
  XMixer mixer = XMixer::transverse_field(6);
  InstanceFactory factory = [](Rng& rng) {
    Graph g = erdos_renyi(6, 0.5, rng);
    return tabulate(StateSpace::full(6),
                    [&g](state_t x) { return maxcut(g, x); });
  };

  EnsembleConfig config;
  config.instances = 4;
  config.max_rounds = 2;
  config.seed = 99;
  config.angle_options.hopping.hops = 2;

  config.threads = 1;
  const EnsembleResult serial = run_ensemble(mixer, factory, config);
  config.threads = 8;
  const EnsembleResult parallel = run_ensemble(mixer, factory, config);

  ASSERT_EQ(serial.ratios.size(), parallel.ratios.size());
  for (std::size_t i = 0; i < serial.ratios.size(); ++i) {
    ASSERT_EQ(serial.ratios[i].size(), parallel.ratios[i].size());
    for (std::size_t p = 0; p < serial.ratios[i].size(); ++p) {
      EXPECT_EQ(serial.ratios[i][p], parallel.ratios[i][p]);
    }
  }
  ASSERT_EQ(serial.per_round.size(), parallel.per_round.size());
  for (std::size_t p = 0; p < serial.per_round.size(); ++p) {
    EXPECT_EQ(serial.per_round[p].mean, parallel.per_round[p].mean);
  }
}

TEST(Ensemble, MedianTransferDeterministicAcrossThreadCounts) {
  set_num_threads(1);
  XMixer mixer = XMixer::transverse_field(6);
  InstanceFactory factory = [](Rng& rng) {
    Graph g = erdos_renyi(6, 0.5, rng);
    return tabulate(StateSpace::full(6),
                    [&g](state_t x) { return maxcut(g, x); });
  };

  EnsembleConfig config;
  config.instances = 3;
  config.seed = 7;

  config.threads = 1;
  const MedianTransferResult serial =
      median_angle_transfer(mixer, factory, 1, 4, config);
  config.threads = 8;
  const MedianTransferResult parallel =
      median_angle_transfer(mixer, factory, 1, 4, config);

  EXPECT_EQ(serial.median_packed, parallel.median_packed);
  EXPECT_EQ(serial.donor_ratios.mean, parallel.donor_ratios.mean);
  EXPECT_EQ(serial.transfer_ratios.mean, parallel.transfer_ratios.mean);
}

}  // namespace
}  // namespace fastqaoa
