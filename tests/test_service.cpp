// Tests for the src/service/ job-service layer: the JSON codec, plan-cache
// keying and eviction, the worker pool's determinism and backpressure, the
// protocol dispatcher, and the daemon end to end.
//
// Naming is load-bearing for CI: ServiceConcurrency.* and PlanCache.* run
// under ThreadSanitizer (pure std::thread concurrency, no fork); the
// DaemonE2E.* tests fork() a real daemon and are excluded from the TSan
// filter. gtest_discover_tests runs each TEST in its own process, so every
// fork happens before this process enters an OpenMP region.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "anglefind/strategies.hpp"
#include "autodiff/adjoint.hpp"
#include "common/error.hpp"
#include "core/plan.hpp"
#include "io/serialize.hpp"
#include "obs/prometheus.hpp"
#include "service/client.hpp"
#include "service/job.hpp"
#include "service/json.hpp"
#include "service/net.hpp"
#include "service/plan_cache.hpp"
#include "service/progress.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "service/workload.hpp"

namespace fastqaoa::service {
namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("fastqaoa_service_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------------

TEST(ServiceJson, RoundTripsScalarsExactly) {
  const Json parsed = Json::parse(
      R"({"a":1,"b":-2.5,"c":true,"d":null,"e":"x\n\"y\"","f":[1,2,3]})");
  EXPECT_EQ(parsed.at("a").as_int64(), 1);
  EXPECT_DOUBLE_EQ(parsed.at("b").as_double(), -2.5);
  EXPECT_TRUE(parsed.at("c").as_bool());
  EXPECT_TRUE(parsed.at("d").is_null());
  EXPECT_EQ(parsed.at("e").as_string(), "x\n\"y\"");
  EXPECT_EQ(parsed.at("f").size(), 3u);

  // dump → parse is lossless, including doubles with no short decimal form.
  const double awkward = 0.1 + 0.2;
  Json obj = Json::object();
  obj.set("v", Json(awkward));
  obj.set("big", Json(static_cast<std::uint64_t>(1234567890123456789ULL)));
  const Json back = Json::parse(obj.dump());
  EXPECT_EQ(back.at("v").as_double(), awkward);  // bit-identical
  EXPECT_EQ(back.at("big").as_uint64(), 1234567890123456789ULL);
}

TEST(ServiceJson, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("tru"), Error);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), Error);
  EXPECT_THROW(Json::parse("[1 2]"), Error);
  EXPECT_THROW(Json::parse(""), Error);
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += '[';
  EXPECT_THROW(Json::parse(deep), Error);  // depth guard
}

TEST(ServiceJson, UnicodeEscapes) {
  const Json j = Json::parse(R"("ABé")");
  EXPECT_EQ(j.as_string(), "AB\xc3\xa9");
}

// ---------------------------------------------------------------------------
// Plan fingerprinting and the cache
// ---------------------------------------------------------------------------

PlanKeyMaterial material_for(const ProblemSpec& spec, int p,
                             std::span<const double> obj) {
  PlanKeyMaterial m;
  m.mixer_kind = spec.mixer;
  m.n = spec.n;
  m.k = spec.effective_k();
  m.rounds = p;
  m.obj_vals = obj;
  return m;
}

/// Build-or-fetch through the cache the same way Service::execute does.
PlanHandle cache_plan(PlanCache& cache, const ProblemSpec& spec, int p,
                      int* builds = nullptr) {
  const StateSpace space = problem_space(spec);
  dvec obj = build_objective(spec, space);
  return cache.get_or_build(material_for(spec, p, obj), [&]() -> CachedPlan {
    if (builds != nullptr) ++*builds;
    CachedPlan entry;
    entry.mixer = build_mixer(spec, space);
    entry.plan =
        std::make_shared<const QaoaPlan>(*entry.mixer, std::move(obj), p);
    return entry;
  });
}

TEST(PlanCache, FingerprintSeparatesEveryKeyField) {
  const dvec obj = {1.0, 2.0, 3.0, 4.0};
  const dvec obj2 = {1.0, 2.0, 3.0, 5.0};
  const dvec phase = {0.5, 0.5, 0.5, 0.5};
  const cvec psi0 = {cplx{0.5, 0.0}, cplx{0.5, 0.0}, cplx{0.5, 0.0},
                     cplx{0.5, 0.0}};

  PlanKeyMaterial base;
  base.mixer_kind = "tf";
  base.n = 2;
  base.k = -1;
  base.rounds = 1;
  base.obj_vals = obj;
  const std::uint64_t fp = plan_fingerprint(base);

  // Identical material (even via a different allocation) → same key.
  const dvec obj_copy = obj;
  PlanKeyMaterial same = base;
  same.obj_vals = obj_copy;
  EXPECT_EQ(plan_fingerprint(same), fp);

  PlanKeyMaterial m = base;
  m.mixer_kind = "grover";
  EXPECT_NE(plan_fingerprint(m), fp);
  m = base;
  m.n = 3;
  EXPECT_NE(plan_fingerprint(m), fp);
  m = base;
  m.k = 1;
  EXPECT_NE(plan_fingerprint(m), fp);
  m = base;
  m.rounds = 2;
  EXPECT_NE(plan_fingerprint(m), fp);
  m = base;
  m.obj_vals = obj2;
  EXPECT_NE(plan_fingerprint(m), fp);
  m = base;
  m.phase_values = phase;
  EXPECT_NE(plan_fingerprint(m), fp);
  m = base;
  m.initial_state = psi0;
  EXPECT_NE(plan_fingerprint(m), fp);

  // A phase table equal to the objective still keys differently from "no
  // phase table" — threshold-QAOA plans must not collide with plain ones.
  m = base;
  m.phase_values = obj;
  EXPECT_NE(plan_fingerprint(m), fp);
}

TEST(PlanCache, EqualTablesShareOneEntry) {
  PlanCache cache;
  ProblemSpec spec;  // maxcut/tf n=8 seed=42
  int builds = 0;
  const PlanHandle a = cache_plan(cache, spec, 2, &builds);
  const PlanHandle b = cache_plan(cache, spec, 2, &builds);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->plan.get(), b->plan.get());
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(PlanCache, DistinctSpecsDoNotCollide) {
  PlanCache cache;
  int builds = 0;
  ProblemSpec spec;
  cache_plan(cache, spec, 2, &builds);
  cache_plan(cache, spec, 3, &builds);  // different p
  ProblemSpec grover = spec;
  grover.mixer = "grover";
  cache_plan(cache, grover, 2, &builds);  // different mixer kind
  ProblemSpec other = spec;
  other.instance_seed = 43;
  cache_plan(cache, other, 2, &builds);  // different table contents
  EXPECT_EQ(builds, 4);
  EXPECT_EQ(cache.stats().entries, 4u);
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(PlanCache, EvictsLruUnderByteBudget) {
  // Measure one entry's tracked footprint first, then budget for two.
  std::size_t entry_bytes = 0;
  {
    PlanCache probe;
    ProblemSpec spec;
    cache_plan(probe, spec, 1);
    entry_bytes = probe.stats().bytes;
  }
  ASSERT_GT(entry_bytes, 0u);

  PlanCache cache(PlanCache::Config{entry_bytes * 2 + entry_bytes / 2});
  ProblemSpec spec;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ProblemSpec s = spec;
    s.instance_seed = seed;
    cache_plan(cache, s, 1);  // handle dropped immediately → evictable
  }
  const PlanCache::Stats stats = cache.stats();
  EXPECT_GE(stats.evictions, 2u);
  EXPECT_LE(stats.entries, 2u);
  EXPECT_LE(stats.bytes, entry_bytes * 2 + entry_bytes / 2);

  // The oldest entry is gone: asking for it again rebuilds.
  int builds = 0;
  ProblemSpec first = spec;
  first.instance_seed = 1;
  cache_plan(cache, first, 1, &builds);
  EXPECT_EQ(builds, 1);
}

TEST(PlanCache, NeverEvictsPinnedEntries) {
  PlanCache cache(PlanCache::Config{1});  // everything is over budget
  ProblemSpec spec;
  const PlanHandle pinned = cache_plan(cache, spec, 1);  // held → live job

  for (std::uint64_t seed = 2; seed <= 4; ++seed) {
    ProblemSpec s = spec;
    s.instance_seed = seed;
    cache_plan(cache, s, 1);
  }
  // The pinned entry survived every eviction pass: refetching is a pure
  // hit, not a rebuild.
  int builds = 0;
  const PlanHandle again = cache_plan(cache, spec, 1, &builds);
  EXPECT_EQ(builds, 0);
  EXPECT_EQ(again.get(), pinned.get());
  EXPECT_GE(cache.stats().evictions, 1u);
}

/// Build-or-fetch charged to a tenant partition, as Service::execute does
/// for configured tenants.
PlanHandle cache_plan_for(PlanCache& cache, const std::string& partition,
                          const ProblemSpec& spec, int p,
                          int* builds = nullptr) {
  const StateSpace space = problem_space(spec);
  dvec obj = build_objective(spec, space);
  return cache.get_or_build(
      material_for(spec, p, obj), partition, [&]() -> CachedPlan {
        if (builds != nullptr) ++*builds;
        CachedPlan entry;
        entry.mixer = build_mixer(spec, space);
        entry.plan =
            std::make_shared<const QaoaPlan>(*entry.mixer, std::move(obj), p);
        return entry;
      });
}

TEST(PlanCache, PartitionBudgetsIsolateTenantChurn) {
  // Measure one entry's tracked footprint first.
  std::size_t entry_bytes = 0;
  {
    PlanCache probe;
    ProblemSpec spec;
    cache_plan(probe, spec, 1);
    entry_bytes = probe.stats().bytes;
  }
  ASSERT_GT(entry_bytes, 0u);

  PlanCache cache;  // no global budget: only partitions constrain
  cache.set_partition_budget("acme", entry_bytes + entry_bytes / 2);
  cache.set_partition_budget("widgets", entry_bytes + entry_bytes / 2);

  ProblemSpec spec;
  cache_plan_for(cache, "acme", spec, 1);  // acme's one resident plan

  // widgets churns through many distinct plans; its one-entry budget
  // evicts its own LRU entries but must never touch acme's partition.
  for (std::uint64_t seed = 2; seed <= 6; ++seed) {
    ProblemSpec s = spec;
    s.instance_seed = seed;
    cache_plan_for(cache, "widgets", s, 1);
  }

  const PlanCache::Stats stats = cache.stats();
  const auto acme = stats.partitions.find("acme");
  const auto widgets = stats.partitions.find("widgets");
  ASSERT_NE(acme, stats.partitions.end());
  ASSERT_NE(widgets, stats.partitions.end());
  EXPECT_EQ(acme->second.entries, 1u);
  EXPECT_EQ(acme->second.evictions, 0u);
  EXPECT_GE(widgets->second.evictions, 3u);
  EXPECT_LE(widgets->second.entries, 1u);

  // acme's plan survived the churn: refetching is a hit, not a rebuild.
  int builds = 0;
  cache_plan_for(cache, "acme", spec, 1, &builds);
  EXPECT_EQ(builds, 0);

  // Content hits stay cross-partition: widgets asking for acme's plan is
  // served from acme's partition without a second build or double charge.
  builds = 0;
  cache_plan_for(cache, "widgets", spec, 1, &builds);
  EXPECT_EQ(builds, 0);
  EXPECT_EQ(cache.stats().partitions.at("acme").entries, 1u);
}

// ---------------------------------------------------------------------------
// Service: determinism, caching, backpressure, cancellation
// ---------------------------------------------------------------------------

JobSpec evaluate_spec(int p = 2) {
  JobSpec spec;
  spec.kind = JobKind::Evaluate;
  spec.p = p;
  spec.betas.assign(static_cast<std::size_t>(p), 0.17);
  spec.gammas.assign(static_cast<std::size_t>(p), 0.41);
  return spec;
}

/// The same computation Service::execute runs, performed directly against
/// the library — the reference for bit-identical comparisons.
double direct_evaluate(const JobSpec& spec) {
  const StateSpace space = problem_space(spec.problem);
  dvec obj = build_objective(spec.problem, space);
  const std::unique_ptr<const Mixer> mixer = build_mixer(spec.problem, space);
  const QaoaPlan plan(*mixer, std::move(obj), spec.p);
  EvalWorkspace ws;
  return evaluate(plan, ws, spec.betas, spec.gammas);
}

TEST(ServiceEvaluate, BitIdenticalToDirectCallAndCached) {
  const JobSpec spec = evaluate_spec();
  const double expected = direct_evaluate(spec);

  ServiceConfig config;
  config.workers = 1;
  Service service(config);
  constexpr int kJobs = 5;
  for (int i = 0; i < kJobs; ++i) {
    Service::SubmitOutcome outcome = service.submit(spec);
    ASSERT_TRUE(outcome.accepted());
    Service::wait(*outcome.job);
    EXPECT_EQ(outcome.job->snapshot_state(), JobState::Done);
    EXPECT_EQ(outcome.job->result.expectation, expected);  // exact
    EXPECT_EQ(outcome.job->result.cache_hit, i > 0);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.plan_cache.misses, 1u);
  EXPECT_EQ(stats.plan_cache.hits, static_cast<std::uint64_t>(kJobs - 1));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kJobs));
}

TEST(ServiceEvaluate, RejectsInvalidSpecsWithThrow) {
  Service service;
  JobSpec bad = evaluate_spec();
  bad.betas.pop_back();  // size != p
  EXPECT_THROW(service.submit(bad), Error);
  JobSpec bad_problem = evaluate_spec();
  bad_problem.problem.problem = "nonsense";
  EXPECT_THROW(service.submit(bad_problem), Error);
  EXPECT_EQ(service.stats().submitted, 0u);
}

std::vector<JobSpec> mixed_batch() {
  std::vector<JobSpec> batch;
  for (std::uint64_t seed : {7ULL, 8ULL}) {
    JobSpec ev = evaluate_spec();
    ev.problem.instance_seed = seed;
    batch.push_back(ev);

    JobSpec grad = evaluate_spec();
    grad.kind = JobKind::Gradient;
    grad.problem.instance_seed = seed;
    batch.push_back(grad);

    JobSpec sample = evaluate_spec();
    sample.kind = JobKind::Sample;
    sample.problem.instance_seed = seed;
    sample.shots = 256;
    sample.opt_seed = 99 + seed;
    batch.push_back(sample);

    JobSpec fa;
    fa.kind = JobKind::FindAngles;
    fa.problem.n = 6;
    fa.problem.instance_seed = seed;
    fa.p = 2;
    fa.hops = 3;
    batch.push_back(fa);

    JobSpec sweep = evaluate_spec();
    sweep.kind = JobKind::BatchEvaluate;
    sweep.problem.instance_seed = seed;
    sweep.lanes = 3;
    sweep.betas.clear();
    sweep.gammas.clear();
    for (int lane = 0; lane < sweep.lanes; ++lane) {
      for (int r = 0; r < sweep.p; ++r) {
        sweep.betas.push_back(0.1 + 0.2 * lane);
        sweep.gammas.push_back(0.3 + 0.1 * lane);
      }
    }
    batch.push_back(sweep);
  }
  return batch;
}

std::vector<JobResultData> run_batch(int workers) {
  ServiceConfig config;
  config.workers = workers;
  Service service(config);
  std::vector<std::shared_ptr<Job>> jobs;
  for (const JobSpec& spec : mixed_batch()) {
    Service::SubmitOutcome outcome = service.submit(spec);
    EXPECT_TRUE(outcome.accepted());
    jobs.push_back(outcome.job);
  }
  std::vector<JobResultData> results;
  for (const auto& job : jobs) {
    Service::wait(*job);
    EXPECT_EQ(job->snapshot_state(), JobState::Done);
    results.push_back(job->result);
  }
  return results;
}

TEST(ServiceBatchEvaluate, LanesMatchIndividualJobsAndStatsCount) {
  // One batch_evaluate job must report, per lane, the exact double an
  // individual evaluate job computes for the same angles — and the stats
  // verb's batch counters must reflect the sweep (worker-count invariant:
  // they are pure functions of the submitted specs).
  for (const int workers : {1, 4}) {
    ServiceConfig config;
    config.workers = workers;
    Service service(config);

    JobSpec sweep = evaluate_spec();
    sweep.kind = JobKind::BatchEvaluate;
    sweep.lanes = 4;
    sweep.betas.clear();
    sweep.gammas.clear();
    for (int lane = 0; lane < sweep.lanes; ++lane) {
      for (int r = 0; r < sweep.p; ++r) {
        sweep.betas.push_back(0.05 + 0.15 * lane);
        sweep.gammas.push_back(0.25 + 0.1 * lane);
      }
    }
    Service::SubmitOutcome outcome = service.submit(sweep);
    ASSERT_TRUE(outcome.accepted());
    Service::wait(*outcome.job);
    ASSERT_EQ(outcome.job->snapshot_state(), JobState::Done);
    const JobResultData& result = outcome.job->result;
    ASSERT_EQ(result.expectations.size(), 4u);

    const auto sp = static_cast<std::size_t>(sweep.p);
    for (int lane = 0; lane < sweep.lanes; ++lane) {
      JobSpec single = evaluate_spec();
      const auto offset = static_cast<std::size_t>(lane) * sp;
      single.betas.assign(sweep.betas.begin() + offset,
                          sweep.betas.begin() + offset + sp);
      single.gammas.assign(sweep.gammas.begin() + offset,
                           sweep.gammas.begin() + offset + sp);
      Service::SubmitOutcome one = service.submit(single);
      ASSERT_TRUE(one.accepted());
      Service::wait(*one.job);
      EXPECT_EQ(one.job->result.expectation,
                result.expectations[static_cast<std::size_t>(lane)])
          << "lane " << lane << " workers " << workers;
    }

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.batch_jobs, 1u) << "workers " << workers;
    EXPECT_EQ(stats.batched_evals, 4u) << "workers " << workers;
  }
}

TEST(ServiceConcurrency, ResultsAreWorkerCountInvariant) {
  const std::vector<JobResultData> one = run_batch(1);
  const std::vector<JobResultData> four = run_batch(4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].expectation, four[i].expectation) << "job " << i;
    EXPECT_EQ(one[i].expectations, four[i].expectations) << "job " << i;
    EXPECT_EQ(one[i].grad_betas, four[i].grad_betas) << "job " << i;
    EXPECT_EQ(one[i].grad_gammas, four[i].grad_gammas) << "job " << i;
    EXPECT_EQ(one[i].shot_estimate, four[i].shot_estimate) << "job " << i;
    EXPECT_EQ(one[i].shot_stderr, four[i].shot_stderr) << "job " << i;
    ASSERT_EQ(one[i].schedules.size(), four[i].schedules.size());
    for (std::size_t r = 0; r < one[i].schedules.size(); ++r) {
      EXPECT_EQ(one[i].schedules[r].expectation,
                four[i].schedules[r].expectation);
      EXPECT_EQ(one[i].schedules[r].betas, four[i].schedules[r].betas);
      EXPECT_EQ(one[i].schedules[r].gammas, four[i].schedules[r].gammas);
    }
  }
}

JobSpec slow_find_angles(std::uint64_t seed = 1) {
  JobSpec spec;
  spec.kind = JobKind::FindAngles;
  spec.problem.n = 12;
  spec.problem.instance_seed = seed;
  spec.p = 8;
  spec.hops = 40;
  return spec;
}

void wait_until_running(const Job& job) {
  while (job.snapshot_state() == JobState::Queued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(ServiceConcurrency, OverloadedPastHighWaterMark) {
  ServiceConfig config;
  config.workers = 1;
  config.queue_high_water = 1;
  Service service(config);

  Service::SubmitOutcome running = service.submit(slow_find_angles(1));
  ASSERT_TRUE(running.accepted());
  wait_until_running(*running.job);  // worker occupied, queue empty

  Service::SubmitOutcome queued = service.submit(slow_find_angles(2));
  ASSERT_TRUE(queued.accepted());

  Service::SubmitOutcome rejected = service.submit(slow_find_angles(3));
  EXPECT_FALSE(rejected.accepted());
  EXPECT_EQ(rejected.error_code, "overloaded");
  EXPECT_EQ(rejected.queue_depth, 1u);
  EXPECT_EQ(service.stats().rejected, 1u);

  // Cancel both so teardown is quick; the running job stops cooperatively.
  EXPECT_TRUE(service.cancel(running.job->id));
  EXPECT_TRUE(service.cancel(queued.job->id));
  Service::wait(*running.job);
  Service::wait(*queued.job);
  EXPECT_EQ(queued.job->snapshot_state(), JobState::Cancelled);
  EXPECT_EQ(running.job->snapshot_state(), JobState::Cancelled);
}

TEST(ServiceConcurrency, CancelRunningJobStopsCooperatively) {
  ServiceConfig config;
  config.workers = 1;
  Service service(config);
  Service::SubmitOutcome outcome = service.submit(slow_find_angles());
  ASSERT_TRUE(outcome.accepted());
  wait_until_running(*outcome.job);
  ASSERT_TRUE(service.cancel(outcome.job->id));
  Service::wait(*outcome.job);
  EXPECT_EQ(outcome.job->snapshot_state(), JobState::Cancelled);
  EXPECT_EQ(outcome.job->result.stop, runtime::StopReason::Cancelled);
  EXPECT_EQ(service.stats().cancelled, 1u);
  // Cancelling a terminal job is a no-op.
  EXPECT_FALSE(service.cancel(outcome.job->id));
}

TEST(ServiceConcurrency, DrainRejectsNewWorkAndDeliversInFlight) {
  ServiceConfig config;
  config.workers = 2;
  Service service(config);
  Service::SubmitOutcome a = service.submit(slow_find_angles(1));
  Service::SubmitOutcome b = service.submit(evaluate_spec());
  ASSERT_TRUE(a.accepted());
  ASSERT_TRUE(b.accepted());

  service.begin_drain();
  Service::SubmitOutcome late = service.submit(evaluate_spec());
  EXPECT_FALSE(late.accepted());
  EXPECT_EQ(late.error_code, "draining");

  service.shutdown();
  // Every admitted job reached a terminal state with its result delivered.
  EXPECT_TRUE(a.job->terminal());
  EXPECT_TRUE(b.job->terminal());
  EXPECT_TRUE(service.draining());
}

TEST(ServiceConcurrency, TenantQuotaRejectsWithRetryAfterHint) {
  ServiceConfig config;
  config.workers = 1;
  TenantConfig capped;  // concurrency quota: one job in flight at a time
  capped.name = "capped";
  capped.key = "k-capped";
  capped.max_inflight = 1;
  TenantConfig drip;  // rate quota: one admission per 10 s after the burst
  drip.name = "drip";
  drip.key = "k-drip";
  drip.rate_per_sec = 0.1;
  drip.burst = 1.0;
  config.tenants = {capped, drip};
  Service service(config);

  JobSpec first = slow_find_angles(1);
  first.tenant = "capped";
  Service::SubmitOutcome held = service.submit(first);
  ASSERT_TRUE(held.accepted());

  // Inflight quota: rejected with a positive backoff hint while the first
  // job is still queued or running.
  JobSpec second = slow_find_angles(2);
  second.tenant = "capped";
  const Service::SubmitOutcome capped_out = service.submit(second);
  EXPECT_FALSE(capped_out.accepted());
  EXPECT_EQ(capped_out.error_code, "over_quota");
  EXPECT_GT(capped_out.retry_after_ms, 0);

  // Rate quota: the burst token admits one job, the next must wait for the
  // ~10 s refill — the hint reflects that horizon.
  JobSpec pour = evaluate_spec();
  pour.tenant = "drip";
  ASSERT_TRUE(service.submit(pour).accepted());
  JobSpec extra = slow_find_angles(3);
  extra.tenant = "drip";
  const Service::SubmitOutcome dripped = service.submit(extra);
  EXPECT_FALSE(dripped.accepted());
  EXPECT_EQ(dripped.error_code, "over_quota");
  EXPECT_GT(dripped.retry_after_ms, 1000);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.over_quota, 2u);
  for (const ServiceStats::TenantStats& t : stats.tenants) {
    if (t.name == "capped" || t.name == "drip") {
      EXPECT_EQ(t.over_quota, 1u) << t.name;
    }
  }

  service.cancel(held.job->id);
  Service::wait(*held.job);
}

// ---------------------------------------------------------------------------
// Protocol dispatch (no socket)
// ---------------------------------------------------------------------------

TEST(ServiceProtocol, JobSpecJsonRoundTrip) {
  JobSpec spec;
  spec.kind = JobKind::FindAngles;
  spec.problem.problem = "ksat";
  spec.problem.mixer = "tf";
  spec.problem.n = 7;
  spec.problem.density = 4.25;
  spec.problem.instance_seed = 77;
  spec.p = 3;
  spec.minimize = true;
  spec.hops = 5;
  spec.starts = 2;
  spec.opt_seed = 1234;
  spec.checkpoint = "/tmp/x.ckpt";
  spec.deadline_seconds = 1.5;
  spec.max_evaluations = 9000;

  const JobSpec back = job_spec_from_json(job_spec_to_json(spec));
  EXPECT_EQ(back.kind, spec.kind);
  EXPECT_EQ(back.problem.problem, spec.problem.problem);
  EXPECT_EQ(back.problem.n, spec.problem.n);
  EXPECT_EQ(back.problem.density, spec.problem.density);
  EXPECT_EQ(back.problem.instance_seed, spec.problem.instance_seed);
  EXPECT_EQ(back.p, spec.p);
  EXPECT_EQ(back.minimize, spec.minimize);
  EXPECT_EQ(back.hops, spec.hops);
  EXPECT_EQ(back.starts, spec.starts);
  EXPECT_EQ(back.opt_seed, spec.opt_seed);
  EXPECT_EQ(back.checkpoint, spec.checkpoint);
  EXPECT_EQ(back.deadline_seconds, spec.deadline_seconds);
  EXPECT_EQ(back.max_evaluations, spec.max_evaluations);
}

TEST(ServiceProtocol, DispatchesVerbsAndRejectsGarbage) {
  ServiceConfig config;
  config.workers = 1;
  Service service(config);

  const Json pong = Json::parse(handle_request_line(service, R"({"op":"ping"})"));
  EXPECT_TRUE(pong.at("ok").as_bool());
  EXPECT_TRUE(pong.at("pong").as_bool());

  const Json bad = Json::parse(handle_request_line(service, "not json"));
  EXPECT_FALSE(bad.at("ok").as_bool());
  EXPECT_EQ(bad.at("error").at("code").as_string(), "bad_request");

  const Json unknown =
      Json::parse(handle_request_line(service, R"({"op":"frobnicate"})"));
  EXPECT_FALSE(unknown.at("ok").as_bool());

  const Json no_job = Json::parse(
      handle_request_line(service, R"({"op":"status","id":12345})"));
  EXPECT_EQ(no_job.at("error").at("code").as_string(), "unknown_job");

  // A full evaluate round trip through the dispatcher matches the library.
  const JobSpec spec = evaluate_spec();
  const double expected = direct_evaluate(spec);
  const Json response =
      handle_request(service, job_spec_to_json(spec));
  ASSERT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("state").as_string(), "done");
  EXPECT_EQ(response.at("result").at("expectation").as_double(), expected);

  const Json stats =
      Json::parse(handle_request_line(service, R"({"op":"stats"})"));
  EXPECT_EQ(stats.at("stats").at("plan_cache").at("misses").as_uint64(), 1u);
}

TEST(ServiceProtocol, BatchEvaluateWireRoundTrip) {
  ServiceConfig config;
  config.workers = 1;
  Service service(config);

  // Nested per-lane angle arrays -> one job -> per-lane expectations, each
  // matching the equivalent single evaluate request bit for bit.
  const Json response = Json::parse(handle_request_line(
      service,
      R"({"op":"batch_evaluate","problem":"maxcut","mixer":"tf","n":6,)"
      R"("p":1,"betas":[[0.1],[0.2],[0.3]],"gammas":[[0.5],[0.6],[0.7]]})"));
  ASSERT_TRUE(response.at("ok").as_bool()) << response.dump();
  ASSERT_EQ(response.at("state").as_string(), "done");
  const Json& expectations = response.at("result").at("expectations");
  ASSERT_EQ(expectations.size(), 3u);
  EXPECT_EQ(response.at("result").at("lanes").as_int64(), 3);

  const double betas[] = {0.1, 0.2, 0.3};
  const double gammas[] = {0.5, 0.6, 0.7};
  for (std::size_t lane = 0; lane < 3; ++lane) {
    JobSpec single;
    single.kind = JobKind::Evaluate;
    single.problem.n = 6;
    single.p = 1;
    single.betas = {betas[lane]};
    single.gammas = {gammas[lane]};
    EXPECT_EQ(expectations.as_array()[lane].as_double(),
              direct_evaluate(single))
        << "lane " << lane;
  }

  // Spec JSON round trip preserves the lane structure.
  JobSpec sweep;
  sweep.kind = JobKind::BatchEvaluate;
  sweep.problem.n = 6;
  sweep.p = 1;
  sweep.lanes = 3;
  sweep.betas = {0.1, 0.2, 0.3};
  sweep.gammas = {0.5, 0.6, 0.7};
  const JobSpec back = job_spec_from_json(job_spec_to_json(sweep));
  EXPECT_EQ(back.kind, JobKind::BatchEvaluate);
  EXPECT_EQ(back.lanes, sweep.lanes);
  EXPECT_EQ(back.betas, sweep.betas);
  EXPECT_EQ(back.gammas, sweep.gammas);

  // Ragged lanes are a bad_request, not a crash.
  const Json ragged = Json::parse(handle_request_line(
      service,
      R"({"op":"batch_evaluate","problem":"maxcut","mixer":"tf","n":6,)"
      R"("p":1,"betas":[[0.1],[0.2,0.3]],"gammas":[[0.5],[0.6]]})"));
  EXPECT_FALSE(ragged.at("ok").as_bool());

  // The stats verb reports the sweep.
  const Json stats =
      Json::parse(handle_request_line(service, R"({"op":"stats"})"));
  EXPECT_EQ(stats.at("stats").at("batch_jobs").as_uint64(), 1u);
  EXPECT_EQ(stats.at("stats").at("batched_evals").as_uint64(), 3u);
  EXPECT_EQ(stats.at("stats").at("mean_batch_width").as_double(), 3.0);
}

// ---------------------------------------------------------------------------
// Progress channel: bounded fan-out with drop-oldest backpressure
// ---------------------------------------------------------------------------

TEST(ServiceProgress, DropsOldestWhenTheQueueOverflowsAndCounts) {
  std::atomic<std::uint64_t> service_drops{0};
  ProgressChannel channel;
  channel.configure(2, &service_drops);
  ProgressChannel::Subscription sub = channel.subscribe();

  for (int i = 0; i < 5; ++i) channel.publish("ev" + std::to_string(i));
  channel.close("final");

  // Cap 2: ev0..ev2 were dropped oldest-first; ev3, ev4 survive, then the
  // terminal line, then exhaustion.
  std::string line;
  ASSERT_TRUE(sub.next(line));
  EXPECT_EQ(line, "ev3");
  ASSERT_TRUE(sub.next(line));
  EXPECT_EQ(line, "ev4");
  ASSERT_TRUE(sub.next(line));
  EXPECT_EQ(line, "final");
  EXPECT_FALSE(sub.next(line));
  EXPECT_EQ(sub.dropped(), 3u);
  EXPECT_EQ(channel.dropped(), 3u);
  EXPECT_EQ(service_drops.load(), 3u);
}

TEST(ServiceProgress, LateSubscriberGetsExactlyTheTerminalEvent) {
  ProgressChannel channel;
  channel.publish("lost");  // nobody is listening yet
  channel.close("terminal");
  channel.close("second close is ignored");
  EXPECT_TRUE(channel.closed());

  ProgressChannel::Subscription late = channel.subscribe();
  std::string line;
  ASSERT_TRUE(late.next(line));
  EXPECT_EQ(line, "terminal");
  EXPECT_FALSE(late.next(line));
  EXPECT_EQ(late.dropped(), 0u);
}

TEST(ServiceProgress, ConcurrentPublisherAndConsumerDeliverInOrder) {
  ProgressChannel channel;
  channel.configure(1024, nullptr);
  ProgressChannel::Subscription sub = channel.subscribe();

  constexpr int kEvents = 200;
  std::thread publisher([&channel] {
    for (int i = 0; i < kEvents; ++i) {
      channel.publish(std::to_string(i));
    }
    channel.close("done");
  });

  std::vector<std::string> received;
  std::string line;
  while (sub.next(line)) received.push_back(line);
  publisher.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kEvents) + 1);
  for (int i = 0; i < kEvents; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], std::to_string(i));
  }
  EXPECT_EQ(received.back(), "done");
  EXPECT_EQ(channel.dropped(), 0u);
}

TEST(ServiceProgress, ThrottledWaitReturnsOnceTheChannelCloses) {
  ProgressChannel channel;
  ProgressChannel::Subscription sub = channel.subscribe();
  std::thread closer([&channel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    channel.close("bye");
  });
  const auto start = std::chrono::steady_clock::now();
  sub.wait_closed_for(10'000);  // must be cut short by close()
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  closer.join();
  EXPECT_LT(waited, 5.0);
  std::string line;
  ASSERT_TRUE(sub.next(line));
  EXPECT_EQ(line, "bye");
}

// ---------------------------------------------------------------------------
// Streaming subscribe + metrics verbs (in-process, no socket)
// ---------------------------------------------------------------------------

JobSpec find_angles_spec(int p, int hops, int n = 6) {
  JobSpec spec;
  spec.kind = JobKind::FindAngles;
  spec.problem.n = n;
  spec.p = p;
  spec.hops = hops;
  return spec;
}

TEST(ServiceProtocol, SubscribeStreamsEveryRoundAndTheTerminalEvent) {
  ServiceConfig config;
  config.workers = 1;
  Service service(config);

  // Occupy the single worker so the watched job is still *queued* when the
  // subscription attaches — every round event is then guaranteed to land
  // in the subscriber's queue, not just the tail of them.
  Service::SubmitOutcome blocker =
      service.submit(find_angles_spec(2, 3, 8));
  ASSERT_TRUE(blocker.accepted());

  constexpr int kRounds = 3;
  Service::SubmitOutcome outcome =
      service.submit(find_angles_spec(kRounds, 2));
  ASSERT_TRUE(outcome.accepted());

  Json req = Json::object();
  req.set("op", Json("subscribe"));
  req.set("id", Json(outcome.job->id));
  std::vector<std::string> lines;
  handle_subscribe(service, req, [&lines](const std::string& line) {
    lines.push_back(line);
    return true;
  });
  Service::wait(*outcome.job);
  EXPECT_EQ(outcome.job->snapshot_state(), JobState::Done);

  // ack + one event per round + the terminal event.
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kRounds) + 2);
  const Json ack = Json::parse(lines.front());
  EXPECT_TRUE(ack.at("ok").as_bool());
  EXPECT_TRUE(ack.at("subscribed").as_bool());
  EXPECT_EQ(ack.at("id").as_uint64(), outcome.job->id);

  for (int round = 1; round <= kRounds; ++round) {
    const Json ev = Json::parse(lines[static_cast<std::size_t>(round)]);
    EXPECT_EQ(ev.at("event").as_string(), "round");
    EXPECT_EQ(ev.at("id").as_uint64(), outcome.job->id);
    EXPECT_EQ(ev.at("p").as_int64(), round);
    EXPECT_GE(ev.at("round_seconds").as_double(), 0.0);
    EXPECT_GE(ev.at("elapsed_seconds").as_double(),
              ev.at("round_seconds").as_double());
    EXPECT_GT(ev.at("evals").as_uint64(), 0u);
  }

  const Json done = Json::parse(lines.back());
  EXPECT_EQ(done.at("event").as_string(), "done");
  EXPECT_EQ(done.at("state").as_string(), "done");
  EXPECT_NE(done.find("stop_reason"), nullptr);
  EXPECT_EQ(done.at("dropped_events").as_uint64(), 0u);
}

TEST(ServiceProtocol, StalledSubscriberDropsEventsButTheJobCompletes) {
  ServiceConfig config;
  config.workers = 1;
  config.subscriber_queue_cap = 1;  // every backlog beyond 1 event drops
  Service service(config);

  Service::SubmitOutcome outcome = service.submit(find_angles_spec(6, 3));
  ASSERT_TRUE(outcome.accepted());

  // throttle_ms makes handle_subscribe sleep (interruptibly) before each
  // next(): with a queue bound of 1 the worker outruns the watcher and the
  // channel must drop intermediate rounds rather than stall the job.
  Json req = Json::object();
  req.set("op", Json("subscribe"));
  req.set("id", Json(outcome.job->id));
  req.set("throttle_ms", Json(10'000));
  std::vector<std::string> lines;
  handle_subscribe(service, req, [&lines](const std::string& line) {
    lines.push_back(line);
    return true;
  });

  Service::wait(*outcome.job);
  EXPECT_EQ(outcome.job->snapshot_state(), JobState::Done);

  const Json done = Json::parse(lines.back());
  ASSERT_EQ(done.at("event").as_string(), "done");
  EXPECT_GT(done.at("dropped_events").as_uint64(), 0u);
  EXPECT_GT(service.stats().subscribe_dropped, 0u);
}

TEST(ServiceProtocol, SubscribeErrorsOnUnknownJobsAndNonStreamingDispatch) {
  Service service;
  Json req = Json::object();
  req.set("op", Json("subscribe"));
  req.set("id", Json(std::uint64_t{12345}));
  std::vector<std::string> lines;
  handle_subscribe(service, req, [&lines](const std::string& line) {
    lines.push_back(line);
    return true;
  });
  ASSERT_EQ(lines.size(), 1u);
  const Json err = Json::parse(lines.front());
  EXPECT_FALSE(err.at("ok").as_bool());
  EXPECT_EQ(err.at("error").at("code").as_string(), "unknown_job");

  // The one-line dispatcher refuses to fake a stream.
  const Json via_request = Json::parse(handle_request_line(
      service, R"({"op":"subscribe","id":1})"));
  EXPECT_FALSE(via_request.at("ok").as_bool());
  EXPECT_TRUE(is_subscribe_line(R"({"op":"subscribe","id":1})"));
  EXPECT_FALSE(is_subscribe_line(R"({"op":"stats"})"));
  EXPECT_FALSE(is_subscribe_line("not json"));
}

TEST(ServiceProtocol, MetricsVerbRendersValidatedPrometheusText) {
  ServiceConfig config;
  config.workers = 2;
  Service service(config);
  // Put real traffic through so engine histograms exist in profiling
  // builds and service counters are nonzero either way.
  for (int i = 0; i < 3; ++i) {
    Service::SubmitOutcome outcome = service.submit(evaluate_spec());
    ASSERT_TRUE(outcome.accepted());
    Service::wait(*outcome.job);
  }

  const Json response =
      Json::parse(handle_request_line(service, R"({"op":"metrics"})"));
  ASSERT_TRUE(response.at("ok").as_bool()) << response.dump();
  EXPECT_EQ(response.at("format").as_string(), "prometheus");
  const std::string& text = response.at("text").as_string();

  std::string error;
  EXPECT_TRUE(obs::validate_prometheus_text(text, &error)) << error;
  EXPECT_NE(text.find("fastqaoa_service_jobs_submitted_total"),
            std::string::npos);
  EXPECT_NE(text.find("fastqaoa_service_queue_depth"), std::string::npos);
  EXPECT_NE(text.find("kernel_backend=\""), std::string::npos);
  EXPECT_NE(text.find("fastqaoa_service_subscribe_dropped_events_total"),
            std::string::npos);

  // The same text under concurrent load still validates — the snapshot is
  // taken under the merge lock, so a half-updated exposition is impossible.
  std::atomic<bool> stop{false};
  std::thread load([&service, &stop] {
    while (!stop.load()) {
      Service::SubmitOutcome outcome = service.submit(evaluate_spec());
      if (outcome.accepted()) Service::wait(*outcome.job);
    }
  });
  for (int i = 0; i < 20; ++i) {
    const Json mid =
        Json::parse(handle_request_line(service, R"({"op":"metrics"})"));
    ASSERT_TRUE(mid.at("ok").as_bool());
    EXPECT_TRUE(
        obs::validate_prometheus_text(mid.at("text").as_string(), &error))
        << error;
  }
  stop.store(true);
  load.join();
}

// ---------------------------------------------------------------------------
// Daemon end to end (fork; excluded from the TSan filter)
// ---------------------------------------------------------------------------

pid_t fork_daemon(const DaemonOptions& options) {
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    const int rc = run_daemon(options);
    std::_Exit(rc);
  }
  return pid;
}

Client connect_with_retry(const std::string& socket_path) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    try {
      return Client::connect_unix(socket_path);
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  throw Error("daemon did not come up at " + socket_path);
}

int wait_for_exit(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status)) << "daemon did not exit cleanly";
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(DaemonE2E, SequentialRequestsShareOnePlanAndMatchDirectCalls) {
  TempDir tmp;
  DaemonOptions options;
  options.socket_path = tmp.path("qaoa.sock");
  options.metrics_path = tmp.path("metrics.json");
  options.verbose = false;
  options.service.workers = 2;
  const pid_t pid = fork_daemon(options);

  const JobSpec spec = evaluate_spec();
  const double expected = direct_evaluate(spec);

  {
    Client client = connect_with_retry(options.socket_path);
    constexpr int kJobs = 5;
    for (int i = 0; i < kJobs; ++i) {
      const Json response = client.request(job_spec_to_json(spec));
      ASSERT_TRUE(response.at("ok").as_bool()) << response.dump();
      EXPECT_EQ(response.at("state").as_string(), "done");
      // %.17g doubles survive the wire bit-identically.
      EXPECT_EQ(response.at("result").at("expectation").as_double(),
                expected);
      EXPECT_EQ(response.at("result").at("cache_hit").as_bool(), i > 0);
    }
    Json stats_req = Json::object();
    stats_req.set("op", Json("stats"));
    const Json stats = client.request(stats_req);
    const Json& cache = stats.at("stats").at("plan_cache");
    EXPECT_EQ(cache.at("misses").as_uint64(), 1u);
    EXPECT_EQ(cache.at("hits").as_uint64(),
              static_cast<std::uint64_t>(kJobs - 1));
  }

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  EXPECT_EQ(wait_for_exit(pid), 0);

  // The drain flushed a valid metrics document.
  const Json metrics = Json::parse([&] {
    std::ifstream in(options.metrics_path);
    EXPECT_TRUE(in.good());
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }());
  EXPECT_NE(metrics.find("service"), nullptr);
  EXPECT_NE(metrics.find("engine"), nullptr);
  EXPECT_EQ(metrics.at("service").at("completed").as_uint64(), 5u);
}

TEST(DaemonE2E, SubscribeStreamsRoundsOverTheSocketUntilDone) {
  TempDir tmp;
  DaemonOptions options;
  options.socket_path = tmp.path("qaoa.sock");
  options.prometheus_path = tmp.path("metrics.prom");
  options.metrics_interval_seconds = 0.2;
  options.verbose = false;
  options.service.workers = 1;
  const pid_t pid = fork_daemon(options);

  Client client = connect_with_retry(options.socket_path);

  // Hold the single worker so the watched job is still queued when the
  // subscribe line goes out (same trick as the in-process test).
  {
    Json blocker = job_spec_to_json(find_angles_spec(2, 3, 8));
    blocker.set("async", Json(true));
    ASSERT_TRUE(client.request(blocker).at("ok").as_bool());
  }

  constexpr int kRounds = 3;
  Json submit = job_spec_to_json(find_angles_spec(kRounds, 2));
  submit.set("async", Json(true));
  const Json accepted = client.request(submit);
  ASSERT_TRUE(accepted.at("ok").as_bool()) << accepted.dump();
  const std::uint64_t id = accepted.at("id").as_uint64();

  // The same connection switches into streaming mode for the subscribe,
  // then back to request/response once the stream ends.
  Json sub = Json::object();
  sub.set("op", Json("subscribe"));
  sub.set("id", Json(id));
  client.send(sub);

  std::string line;
  ASSERT_TRUE(client.read_line(line));
  const Json ack = Json::parse(line);
  ASSERT_TRUE(ack.at("ok").as_bool()) << line;
  EXPECT_TRUE(ack.at("subscribed").as_bool());

  int rounds = 0;
  bool done_seen = false;
  while (client.read_line(line)) {
    const Json ev = Json::parse(line);
    if (ev.at("event").as_string() == "round") {
      ++rounds;
      EXPECT_EQ(ev.at("p").as_int64(), rounds);
      EXPECT_EQ(ev.at("id").as_uint64(), id);
    } else if (ev.at("event").as_string() == "done") {
      done_seen = true;
      EXPECT_EQ(ev.at("state").as_string(), "done");
      EXPECT_NE(ev.find("stop_reason"), nullptr);
      EXPECT_EQ(ev.at("dropped_events").as_uint64(), 0u);
      break;
    }
  }
  EXPECT_EQ(rounds, kRounds);
  EXPECT_TRUE(done_seen);

  // The connection still answers plain requests after the stream.
  Json ping = Json::object();
  ping.set("op", Json("ping"));
  EXPECT_TRUE(client.request(ping).at("ok").as_bool());

  // A second subscribe to the (now finished) job degrades gracefully to
  // just the latched terminal event.
  client.send(sub);
  ASSERT_TRUE(client.read_line(line));  // ack
  ASSERT_TRUE(client.read_line(line));  // terminal
  EXPECT_EQ(Json::parse(line).at("event").as_string(), "done");

  client.close();
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  EXPECT_EQ(wait_for_exit(pid), 0);

  // The daemon kept (and finally flushed) a validating Prometheus file.
  std::ifstream in(options.prometheus_path);
  ASSERT_TRUE(in.good());
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  std::string error;
  EXPECT_TRUE(obs::validate_prometheus_text(text, &error)) << error;
  EXPECT_NE(text.find("fastqaoa_service_jobs_completed_total"),
            std::string::npos);
}

TEST(DaemonE2E, StalledSubscriberDropsEventsWithoutBlockingTheJob) {
  TempDir tmp;
  DaemonOptions options;
  options.socket_path = tmp.path("qaoa.sock");
  options.verbose = false;
  options.service.workers = 1;
  options.service.subscriber_queue_cap = 1;
  const pid_t pid = fork_daemon(options);

  Client watcher = connect_with_retry(options.socket_path);

  Json submit = job_spec_to_json(find_angles_spec(6, 3));
  submit.set("async", Json(true));
  const Json accepted = watcher.request(submit);
  ASSERT_TRUE(accepted.at("ok").as_bool()) << accepted.dump();
  const std::uint64_t id = accepted.at("id").as_uint64();

  // throttle_ms parks the server-side watcher until the job finishes; with
  // a queue bound of 1 the intermediate rounds must be dropped, counted,
  // and the job must complete on schedule regardless.
  Json sub = Json::object();
  sub.set("op", Json("subscribe"));
  sub.set("id", Json(id));
  sub.set("throttle_ms", Json(10'000));
  watcher.send(sub);

  std::string line;
  ASSERT_TRUE(watcher.read_line(line));  // ack
  ASSERT_TRUE(Json::parse(line).at("ok").as_bool()) << line;

  std::uint64_t dropped = 0;
  bool done_seen = false;
  while (watcher.read_line(line)) {
    const Json ev = Json::parse(line);
    if (ev.at("event").as_string() == "done") {
      done_seen = true;
      dropped = ev.at("dropped_events").as_uint64();
      break;
    }
  }
  ASSERT_TRUE(done_seen);
  EXPECT_GT(dropped, 0u);

  // A second connection sees the service-wide drop counter in stats.
  Client prober = Client::connect_unix(options.socket_path);
  Json stats_req = Json::object();
  stats_req.set("op", Json("stats"));
  const Json stats = prober.request(stats_req);
  EXPECT_EQ(stats.at("stats").at("subscribe_dropped").as_uint64(), dropped);
  EXPECT_EQ(stats.at("stats").at("completed").as_uint64(), 1u);

  watcher.close();
  prober.close();
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  EXPECT_EQ(wait_for_exit(pid), 0);
}

TEST(DaemonE2E, SigtermDrainsInFlightFindAnglesWithResumableCheckpoint) {
  TempDir tmp;
  DaemonOptions options;
  options.socket_path = tmp.path("qaoa.sock");
  options.verbose = false;
  options.service.workers = 1;
  const pid_t pid = fork_daemon(options);

  // Slow enough that SIGTERM very likely lands mid-search, but cheap enough
  // that the two full local runs below stay in CI budget.
  JobSpec spec;
  spec.kind = JobKind::FindAngles;
  spec.problem.n = 10;
  spec.p = 4;
  spec.hops = 10;
  spec.checkpoint = tmp.path("job.ckpt");

  {
    Client client = connect_with_retry(options.socket_path);
    Json req = job_spec_to_json(spec);
    req.set("async", Json(true));
    const Json accepted = client.request(req);
    ASSERT_TRUE(accepted.at("ok").as_bool()) << accepted.dump();
  }

  // Wait until at least one round has been checkpointed, then interrupt the
  // daemon mid-search.
  for (int i = 0; i < 2400 && !std::filesystem::exists(spec.checkpoint);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  ASSERT_TRUE(std::filesystem::exists(spec.checkpoint));
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  EXPECT_EQ(wait_for_exit(pid), 0);

  // The checkpoint is resumable: it carries the fingerprint of this exact
  // run, and resuming completes the search bit-identically to a run that
  // was never interrupted.
  const StateSpace space = problem_space(spec.problem);
  dvec obj = build_objective(spec.problem, space);
  const std::unique_ptr<const Mixer> mixer = build_mixer(spec.problem, space);
  const CheckpointFingerprint fingerprint{
      static_cast<std::uint64_t>(obj.size()), Direction::Maximize,
      spec.opt_seed, mixer->name()};
  const std::vector<AngleSchedule> saved =
      load_checkpoint(spec.checkpoint, fingerprint);
  ASSERT_FALSE(saved.empty());

  FindAnglesOptions opt;
  opt.seed = spec.opt_seed;
  opt.hopping.hops = spec.hops;
  opt.checkpoint_file = spec.checkpoint;
  const std::vector<AngleSchedule> resumed =
      find_angles(*mixer, obj, spec.p, opt);

  FindAnglesOptions fresh_opt = opt;
  fresh_opt.checkpoint_file.clear();
  const std::vector<AngleSchedule> fresh =
      find_angles(*mixer, obj, spec.p, fresh_opt);

  ASSERT_EQ(resumed.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(resumed[i].expectation, fresh[i].expectation) << "round " << i;
    EXPECT_EQ(resumed[i].betas, fresh[i].betas) << "round " << i;
    EXPECT_EQ(resumed[i].gammas, fresh[i].gammas) << "round " << i;
  }
}

// ---------------------------------------------------------------------------
// Daemon front end: timeouts, oversize lines, slow clients, tenants
// ---------------------------------------------------------------------------

/// Frontend counter snapshot via a fresh stats request.
std::uint64_t frontend_counter(const std::string& socket_path,
                               const char* field,
                               const char* key = nullptr) {
  Client client = connect_with_retry(socket_path);
  Json req = Json::object();
  req.set("op", Json("stats"));
  if (key != nullptr) req.set("key", Json(key));
  const Json stats = client.request(req).at("stats");
  return stats.at("frontend").at(field).as_uint64();
}

TEST(DaemonE2E, OversizedRequestLineIsRejectedNotBuffered) {
  TempDir tmp;
  DaemonOptions options;
  options.socket_path = tmp.path("qaoa.sock");
  options.verbose = false;
  options.max_line_bytes = 4096;
  const pid_t pid = fork_daemon(options);

  {
    Client client = connect_with_retry(options.socket_path);
    // A ~48 KB request line (small enough to land in the kernel's socket
    // buffers in one send, so writing it cannot race the daemon's close):
    // the daemon must reject it rather than serve or buffer it.
    Json req = Json::object();
    req.set("op", Json("ping"));
    req.set("padding", Json(std::string(48u << 10, 'x')));
    client.send(req);
    std::string line;
    ASSERT_TRUE(client.read_line(line));
    const Json rejection = Json::parse(line);
    EXPECT_FALSE(rejection.at("ok").as_bool());
    EXPECT_EQ(rejection.at("error").at("code").as_string(), "bad_request");
    EXPECT_FALSE(client.read_line(line));  // connection closed behind it
  }

  EXPECT_EQ(frontend_counter(options.socket_path, "evicted_oversize"), 1u);
  // A well-formed client on a fresh connection is unaffected.
  Client ok_client = connect_with_retry(options.socket_path);
  Json ping = Json::object();
  ping.set("op", Json("ping"));
  EXPECT_TRUE(ok_client.request(ping).at("ok").as_bool());

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  EXPECT_EQ(wait_for_exit(pid), 0);
}

TEST(DaemonE2E, IdleConnectionEvictedAfterTimeout) {
  TempDir tmp;
  DaemonOptions options;
  options.socket_path = tmp.path("qaoa.sock");
  options.verbose = false;
  options.idle_timeout_seconds = 0.5;
  const pid_t pid = fork_daemon(options);

  Client idle = connect_with_retry(options.socket_path);
  Json ping = Json::object();
  ping.set("op", Json("ping"));
  ASSERT_TRUE(idle.request(ping).at("ok").as_bool());

  // Go quiet: the daemon must hang up on us with a structured error once
  // the idle timeout elapses (the blocking read returns it, then EOF).
  const auto before = std::chrono::steady_clock::now();
  std::string line;
  ASSERT_TRUE(idle.read_line(line));
  const Json goodbye = Json::parse(line);
  EXPECT_FALSE(goodbye.at("ok").as_bool());
  EXPECT_EQ(goodbye.at("error").at("code").as_string(), "idle_timeout");
  EXPECT_FALSE(idle.read_line(line));
  const auto waited = std::chrono::steady_clock::now() - before;
  EXPECT_GE(waited, std::chrono::milliseconds(400));
  EXPECT_LT(waited, std::chrono::seconds(30));

  EXPECT_EQ(frontend_counter(options.socket_path, "evicted_idle"), 1u);
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  EXPECT_EQ(wait_for_exit(pid), 0);
}

TEST(DaemonE2E, SlowClientEvictedWithinWriteTimeoutOthersUnaffected) {
  TempDir tmp;
  DaemonOptions options;
  options.socket_path = tmp.path("qaoa.sock");
  options.verbose = false;
  options.service.workers = 2;
  options.write_timeout_seconds = 0.5;
  options.sndbuf_bytes = 8 * 1024;  // so an ~80 KB response cannot drain
  const pid_t pid = fork_daemon(options);
  connect_with_retry(options.socket_path);  // wait for the listener

  // Raw fd so nothing reads the response: a big batch_evaluate answer
  // jams the shrunken SO_SNDBUF and the daemon's write stalls.
  const int fd = connect_unix(options.socket_path);
  std::string betas = "[";
  std::string gammas = "[";
  for (int lane = 0; lane < 4000; ++lane) {
    if (lane > 0) {
      betas += ',';
      gammas += ',';
    }
    betas += "[0.3]";
    gammas += "[0.6]";
  }
  betas += ']';
  gammas += ']';
  write_all(fd,
            "{\"op\":\"batch_evaluate\",\"problem\":\"maxcut\","
            "\"mixer\":\"tf\",\"n\":8,\"p\":1,\"seed\":9,\"betas\":" +
                betas + ",\"gammas\":" + gammas + "}\n");

  // While the slow client stalls, a normal client stays fully served.
  Client brisk = connect_with_retry(options.socket_path);
  const auto stall_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  std::uint64_t evicted = 0;
  while (std::chrono::steady_clock::now() < stall_deadline) {
    Json req = Json::object();
    req.set("op", Json("stats"));
    const Json stats = brisk.request(req).at("stats");
    evicted = stats.at("frontend").at("evicted_slow").as_uint64();
    if (evicted > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(evicted, 1u) << "slow client not evicted within write timeout";

  // The evicted connection drains to EOF (or a reset) promptly.
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char sink[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, sink, sizeof(sink), 0);
    if (n <= 0) {
      EXPECT_NE(n, -1) << "kernel receive timeout: connection still open";
      break;
    }
  }
  close_fd(fd);

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  EXPECT_EQ(wait_for_exit(pid), 0);
}

TEST(DaemonE2E, TenantsRequireKeysAndEnforceQuotasOverTheWire) {
  TempDir tmp;
  DaemonOptions options;
  options.socket_path = tmp.path("qaoa.sock");
  options.verbose = false;
  options.service.workers = 1;
  TenantConfig paying;
  paying.name = "paying";
  paying.key = "k-paying";
  paying.weight = 2.0;
  TenantConfig capped;
  capped.name = "capped";
  capped.key = "k-capped";
  capped.max_inflight = 1;
  options.service.tenants = {paying, capped};
  const pid_t pid = fork_daemon(options);

  Client client = connect_with_retry(options.socket_path);

  // Job verbs without a key are refused once tenants are configured.
  Json bare = job_spec_to_json(evaluate_spec());
  const Json denied = client.request(bare);
  EXPECT_FALSE(denied.at("ok").as_bool());
  EXPECT_EQ(denied.at("error").at("code").as_string(), "unauthorized");

  // A wrong key is an auth failure, not a crash.
  Json wrong = job_spec_to_json(evaluate_spec());
  wrong.set("key", Json("k-nope"));
  EXPECT_EQ(client.request(wrong).at("error").at("code").as_string(),
            "unauthorized");

  // The right key works, and `auth` upgrades the whole connection.
  Json auth = Json::object();
  auth.set("op", Json("auth"));
  auth.set("key", Json("k-paying"));
  const Json authed = client.request(auth);
  ASSERT_TRUE(authed.at("ok").as_bool()) << authed.dump();
  EXPECT_EQ(authed.at("tenant").as_string(), "paying");
  const Json served = client.request(job_spec_to_json(evaluate_spec()));
  ASSERT_TRUE(served.at("ok").as_bool()) << served.dump();

  // Quota rejection over the wire carries the structured code and a
  // positive retry_after_ms hint.
  Client capped_client = connect_with_retry(options.socket_path);
  Json slow = job_spec_to_json(slow_find_angles(1));
  slow.set("key", Json("k-capped"));
  slow.set("async", Json(true));
  ASSERT_TRUE(capped_client.request(slow).at("ok").as_bool());
  Json second = job_spec_to_json(slow_find_angles(2));
  second.set("key", Json("k-capped"));
  const Json rejected = capped_client.request(second);
  EXPECT_FALSE(rejected.at("ok").as_bool());
  const Json& err = rejected.at("error");
  EXPECT_EQ(err.at("code").as_string(), "over_quota");
  EXPECT_GT(err.at("retry_after_ms").as_int64(), 0);

  EXPECT_GE(frontend_counter(options.socket_path, "auth_failures",
                             "k-paying"),
            2u);
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  EXPECT_EQ(wait_for_exit(pid), 0);
}

// ---------------------------------------------------------------------------
// MPS engine jobs: routing, cache-key separation, invariance, protocol
// ---------------------------------------------------------------------------

JobSpec mps_evaluate_spec(int p = 2) {
  JobSpec spec = evaluate_spec(p);
  spec.problem.problem = "wmaxcut";
  spec.problem.n = 10;
  spec.problem.degree = 3;
  spec.problem.engine = "mps";
  spec.problem.max_bond = 32;
  spec.problem.fidelity_budget = 0.0;
  spec.problem.trunc_tol = 1e-14;
  return spec;
}

/// Service::execute_mps performed directly against the library.
double direct_mps_evaluate(const JobSpec& spec) {
  const mps::MpsPlan plan(build_mps_hamiltonian(spec.problem),
                          mps_options(spec.problem));
  mps::MpsWorkspace ws;
  return mps::evaluate(plan, ws, spec.betas, spec.gammas);
}

TEST(ServiceMps, EvaluateMatchesDirectCallAndExactEngine) {
  const JobSpec spec = mps_evaluate_spec();
  const double expected = direct_mps_evaluate(spec);

  ServiceConfig config;
  config.workers = 1;
  Service service(config);
  Service::SubmitOutcome mps_out = service.submit(spec);
  ASSERT_TRUE(mps_out.accepted());
  Service::wait(*mps_out.job);
  ASSERT_EQ(mps_out.job->snapshot_state(), JobState::Done)
      << mps_out.job->error;
  EXPECT_EQ(mps_out.job->result.expectation, expected);  // bit-identical
  EXPECT_TRUE(mps_out.job->result.mps);
  EXPECT_EQ(mps_out.job->result.discarded_weight, 0.0);  // chi=32 at n=10
  EXPECT_GE(mps_out.job->result.max_bond_reached, 1u);

  // The same instance through the exact engine agrees physically...
  JobSpec exact = spec;
  exact.problem.engine = "exact";
  Service::SubmitOutcome exact_out = service.submit(exact);
  ASSERT_TRUE(exact_out.accepted());
  Service::wait(*exact_out.job);
  ASSERT_EQ(exact_out.job->snapshot_state(), JobState::Done);
  EXPECT_FALSE(exact_out.job->result.mps);
  EXPECT_NEAR(exact_out.job->result.expectation, expected, 1e-8);
  // ...but never shares a cache entry: engine is part of the key.
  EXPECT_EQ(service.stats().plan_cache.entries, 2u);
  EXPECT_EQ(service.stats().plan_cache.misses, 2u);
}

TEST(ServiceMps, TruncationKnobsSeparateCacheEntries) {
  ServiceConfig config;
  config.workers = 1;
  Service service(config);
  JobSpec spec = mps_evaluate_spec();
  std::size_t expected_entries = 0;
  const auto submit_and_wait = [&service](const JobSpec& s) {
    Service::SubmitOutcome out = service.submit(s);
    ASSERT_TRUE(out.accepted());
    Service::wait(*out.job);
    ASSERT_EQ(out.job->snapshot_state(), JobState::Done);
  };
  submit_and_wait(spec);
  ++expected_entries;
  EXPECT_EQ(service.stats().plan_cache.entries, expected_entries);

  // Re-submitting the identical spec hits the cache.
  submit_and_wait(spec);
  EXPECT_EQ(service.stats().plan_cache.entries, expected_entries);
  EXPECT_EQ(service.stats().plan_cache.hits, 1u);

  // Every truncation knob is part of result identity => a fresh entry.
  JobSpec other = spec;
  other.problem.max_bond = 16;
  submit_and_wait(other);
  ++expected_entries;
  other = spec;
  other.problem.fidelity_budget = 1e-3;
  submit_and_wait(other);
  ++expected_entries;
  other = spec;
  other.problem.trunc_tol = 1e-10;
  submit_and_wait(other);
  ++expected_entries;
  EXPECT_EQ(service.stats().plan_cache.entries, expected_entries);
}

TEST(ServiceMps, RejectsUnsupportedKindsAndBadSpecs) {
  Service service;
  for (const JobKind kind :
       {JobKind::Gradient, JobKind::Sample, JobKind::BatchEvaluate}) {
    JobSpec bad = mps_evaluate_spec();
    bad.kind = kind;
    if (kind == JobKind::BatchEvaluate) bad.lanes = 1;
    EXPECT_THROW(service.submit(bad), Error) << to_string(kind);
  }
  JobSpec bad_engine = mps_evaluate_spec();
  bad_engine.problem.engine = "bogus";
  EXPECT_THROW(service.submit(bad_engine), Error);
  JobSpec bad_problem = mps_evaluate_spec();
  bad_problem.problem.problem = "ksat";
  EXPECT_THROW(service.submit(bad_problem), Error);
  JobSpec bad_mixer = mps_evaluate_spec();
  bad_mixer.problem.mixer = "grover";
  EXPECT_THROW(service.submit(bad_mixer), Error);
  // The exact engine keeps its statevector bound; mps relaxes it.
  JobSpec large = evaluate_spec();
  large.problem.n = 40;
  EXPECT_THROW(service.submit(large), Error);
  EXPECT_EQ(service.stats().submitted, 0u);
}

std::vector<JobResultData> run_mps_batch(int workers) {
  ServiceConfig config;
  config.workers = workers;
  Service service(config);
  std::vector<std::shared_ptr<Job>> jobs;
  for (std::uint64_t seed : {11ULL, 12ULL}) {
    JobSpec ev = mps_evaluate_spec();
    ev.problem.n = 8;
    ev.problem.instance_seed = seed;
    ev.problem.max_bond = 8;  // saturate so truncation stats are non-trivial
    Service::SubmitOutcome out = service.submit(ev);
    EXPECT_TRUE(out.accepted());
    jobs.push_back(out.job);

    JobSpec fa;
    fa.kind = JobKind::FindAngles;
    fa.problem = ev.problem;
    fa.p = 1;
    fa.hops = 1;
    fa.opt_seed = 5 + seed;
    // Deterministic early stop: evaluation counts are schedule-independent
    // (one chain, one worker per job), so the budget trips at the same
    // point on any pool size.
    fa.max_evaluations = 80;
    out = service.submit(fa);
    EXPECT_TRUE(out.accepted());
    jobs.push_back(out.job);
  }
  std::vector<JobResultData> results;
  for (const auto& job : jobs) {
    Service::wait(*job);
    EXPECT_EQ(job->snapshot_state(), JobState::Done);
    results.push_back(job->result);
  }
  return results;
}

TEST(ServiceMps, ResultsAreWorkerCountInvariant) {
  const std::vector<JobResultData> one = run_mps_batch(1);
  const std::vector<JobResultData> four = run_mps_batch(4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].expectation, four[i].expectation) << "job " << i;
    EXPECT_EQ(one[i].discarded_weight, four[i].discarded_weight)
        << "job " << i;
    EXPECT_EQ(one[i].truncations, four[i].truncations) << "job " << i;
    EXPECT_EQ(one[i].max_bond_reached, four[i].max_bond_reached)
        << "job " << i;
    ASSERT_EQ(one[i].schedules.size(), four[i].schedules.size());
    for (std::size_t r = 0; r < one[i].schedules.size(); ++r) {
      EXPECT_EQ(one[i].schedules[r].expectation,
                four[i].schedules[r].expectation);
      EXPECT_EQ(one[i].schedules[r].betas, four[i].schedules[r].betas);
      EXPECT_EQ(one[i].schedules[r].gammas, four[i].schedules[r].gammas);
    }
  }
}

TEST(ServiceMps, ProtocolCarriesEngineFieldsBothWays) {
  JobSpec spec = mps_evaluate_spec();
  spec.problem.max_bond = 16;
  spec.problem.fidelity_budget = 1e-3;
  const Json wire = job_spec_to_json(spec);
  EXPECT_EQ(wire.at("engine").as_string(), "mps");
  const JobSpec parsed = job_spec_from_json(wire);
  EXPECT_EQ(parsed.problem.engine, "mps");
  EXPECT_EQ(parsed.problem.degree, spec.problem.degree);
  EXPECT_EQ(parsed.problem.max_bond, 16);
  EXPECT_EQ(parsed.problem.fidelity_budget, 1e-3);
  EXPECT_EQ(parsed.problem.trunc_tol, spec.problem.trunc_tol);

  Service service;
  Json req = job_spec_to_json(spec);
  const Json resp = handle_request(service, req);
  ASSERT_TRUE(resp.at("ok").as_bool());
  const Json& result = resp.at("result");
  EXPECT_EQ(result.at("engine").as_string(), "mps");
  // chi=16 saturates at n=10 p=2; the soft-truncation budget bounds the
  // reported fidelity proxy.
  const double discarded = result.at("discarded_weight").as_double();
  EXPECT_GT(discarded, 0.0);
  EXPECT_LE(discarded, spec.problem.fidelity_budget);
  EXPECT_GT(result.at("truncations").as_uint64(), 0u);
  EXPECT_GE(result.at("max_bond_reached").as_uint64(), 1u);
  EXPECT_EQ(result.at("expectation").as_double(), direct_mps_evaluate(spec));

  // Unknown engine comes back as a structured bad_request, not a hang.
  req.set("engine", Json("bogus"));
  const Json err = handle_request(service, req);
  EXPECT_FALSE(err.at("ok").as_bool());
  EXPECT_EQ(err.at("error").at("code").as_string(), "bad_request");
}

}  // namespace
}  // namespace fastqaoa::service
