// Tests for state-analysis observables (reduced density matrices,
// entanglement entropy, participation ratio, fidelity) and the Lanczos
// extremal-eigenvalue solver.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/entanglement.hpp"
#include "common/rng.hpp"
#include "core/qaoa.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/vector_ops.hpp"
#include "mixers/eigen_mixer.hpp"
#include "mixers/sparse_xy.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

TEST(ReducedDensity, ProductStateIsPure) {
  // |+>|0>: tracing out either qubit leaves a pure reduced state.
  cvec psi(4, cplx{0.0, 0.0});
  psi[0b00] = cplx{1.0 / std::sqrt(2.0), 0.0};
  psi[0b01] = cplx{1.0 / std::sqrt(2.0), 0.0};  // qubit0 = |+>, qubit1 = |0>
  linalg::cmat rho0 = reduced_density_matrix(psi, 2, {0});
  EXPECT_NEAR(std::abs(rho0(0, 0) - cplx{0.5, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(rho0(0, 1) - cplx{0.5, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(von_neumann_entropy(rho0), 0.0, 1e-10);
  linalg::cmat rho1 = reduced_density_matrix(psi, 2, {1});
  EXPECT_NEAR(std::abs(rho1(0, 0) - cplx{1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(von_neumann_entropy(rho1), 0.0, 1e-10);
}

TEST(ReducedDensity, BellStateIsMaximallyEntangled) {
  cvec psi(4, cplx{0.0, 0.0});
  psi[0b00] = cplx{1.0 / std::sqrt(2.0), 0.0};
  psi[0b11] = cplx{1.0 / std::sqrt(2.0), 0.0};
  EXPECT_NEAR(entanglement_entropy(psi, 2, {0}), std::log(2.0), 1e-10);
  EXPECT_NEAR(entanglement_entropy(psi, 2, {1}), std::log(2.0), 1e-10);
  // Reduced state is I/2.
  linalg::cmat rho = reduced_density_matrix(psi, 2, {0});
  EXPECT_NEAR(std::abs(rho(0, 0) - cplx{0.5, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(rho(0, 1)), 0.0, 1e-12);
}

TEST(ReducedDensity, TraceIsOneAndHermitian) {
  Rng rng(1);
  cvec psi = testutil::random_state(32, rng);
  linalg::cmat rho = reduced_density_matrix(psi, 5, {1, 3});
  EXPECT_EQ(rho.rows(), 4u);
  cplx trace{0.0, 0.0};
  for (index_t i = 0; i < 4; ++i) trace += rho(i, i);
  EXPECT_NEAR(std::abs(trace - cplx{1.0, 0.0}), 0.0, 1e-12);
  EXPECT_LT(linalg::frobenius_diff(rho, linalg::adjoint(rho)), 1e-12);
}

TEST(ReducedDensity, ComplementSubsystemsHaveEqualEntropy) {
  // Pure-state property: S(A) == S(complement of A).
  Rng rng(2);
  cvec psi = testutil::random_state(64, rng);
  const double sa = entanglement_entropy(psi, 6, {0, 2, 5});
  const double sb = entanglement_entropy(psi, 6, {1, 3, 4});
  EXPECT_NEAR(sa, sb, 1e-9);
}

TEST(ReducedDensity, GhzHalfChainEntropyIsLog2) {
  const int n = 6;
  cvec psi(64, cplx{0.0, 0.0});
  psi[0] = cplx{1.0 / std::sqrt(2.0), 0.0};
  psi[63] = cplx{1.0 / std::sqrt(2.0), 0.0};
  EXPECT_NEAR(entanglement_entropy(psi, n, {0, 1, 2}), std::log(2.0), 1e-10);
}

TEST(ReducedDensity, Validation) {
  cvec psi(8, cplx{0.0, 0.0});
  psi[0] = cplx{1.0, 0.0};
  EXPECT_THROW(reduced_density_matrix(psi, 3, {}), Error);
  EXPECT_THROW(reduced_density_matrix(psi, 3, {3}), Error);
  EXPECT_THROW(reduced_density_matrix(psi, 3, {0, 0}), Error);
  cvec wrong(6);
  EXPECT_THROW(reduced_density_matrix(wrong, 3, {0}), Error);
}

TEST(Participation, BasisUniformAndIntermediate) {
  cvec basis(16, cplx{0.0, 0.0});
  basis[3] = cplx{1.0, 0.0};
  EXPECT_NEAR(participation_ratio(basis), 1.0, 1e-12);
  EXPECT_NEAR(participation_ratio(testutil::uniform_state(16)), 16.0, 1e-9);
  // Two equal amplitudes -> PR = 2.
  cvec two(8, cplx{0.0, 0.0});
  two[1] = cplx{1.0 / std::sqrt(2.0), 0.0};
  two[5] = cplx{0.0, 1.0 / std::sqrt(2.0)};
  EXPECT_NEAR(participation_ratio(two), 2.0, 1e-12);
}

TEST(Fidelity, SelfAndOrthogonal) {
  Rng rng(3);
  cvec a = testutil::random_state(16, rng);
  EXPECT_NEAR(state_fidelity(a, a), 1.0, 1e-12);
  cvec e0(4, cplx{0.0, 0.0});
  cvec e1(4, cplx{0.0, 0.0});
  e0[0] = cplx{1.0, 0.0};
  e1[1] = cplx{1.0, 0.0};
  EXPECT_NEAR(state_fidelity(e0, e1), 0.0, 1e-14);
  // Global phase invariant.
  cvec b = a;
  linalg::scale(b, std::exp(cplx{0.0, 1.234}));
  EXPECT_NEAR(state_fidelity(a, b), 1.0, 1e-12);
}

TEST(Analysis, QaoaEntanglementGrowsFromZero) {
  // The uniform product start has zero entanglement; a generic QAOA round
  // builds some.
  Rng rng(4);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = tabulate(StateSpace::full(6),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(6);
  Qaoa engine(mixer, table, 1);
  std::vector<double> zeros = {0.0, 0.0};
  engine.run_packed(zeros);
  EXPECT_NEAR(entanglement_entropy(engine.state(), 6, {0, 1, 2}), 0.0,
              1e-10);
  std::vector<double> angles = {0.4, 0.8};
  engine.run_packed(angles);
  EXPECT_GT(entanglement_entropy(engine.state(), 6, {0, 1, 2}), 0.05);
}

TEST(Lanczos, MatchesDenseSolverOnRandomSymmetric) {
  Rng rng(5);
  const index_t dim = 60;
  const linalg::dmat a =
      linalg::symmetrize(linalg::random_matrix(dim, dim, rng));
  const dvec exact = linalg::eigvalsh(a);
  linalg::LanczosResult res = linalg::lanczos_extremal(
      [&a](const cvec& in, cvec& out) {
        out.assign(in.size(), cplx{0.0, 0.0});
        for (index_t r = 0; r < a.rows(); ++r) {
          for (index_t c = 0; c < a.cols(); ++c) out[r] += a(r, c) * in[c];
        }
      },
      dim, rng);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.min_eigenvalue, exact.front(), 1e-7);
  EXPECT_NEAR(res.max_eigenvalue, exact.back(), 1e-7);
}

TEST(Lanczos, ExactOnSmallInvariantSubspace) {
  // Diagonal operator: Krylov space closes quickly.
  Rng rng(6);
  const index_t dim = 16;
  dvec diag(dim, 0.0);
  for (index_t i = 0; i < dim; ++i) diag[i] = static_cast<double>(i);
  linalg::LanczosResult res = linalg::lanczos_extremal(
      [&diag](const cvec& in, cvec& out) {
        out.resize(in.size());
        for (index_t i = 0; i < in.size(); ++i) out[i] = diag[i] * in[i];
      },
      dim, rng);
  EXPECT_NEAR(res.min_eigenvalue, 0.0, 1e-8);
  EXPECT_NEAR(res.max_eigenvalue, 15.0, 1e-8);
}

TEST(Lanczos, SparseXYSpectralRadiusBelowGershgorin) {
  StateSpace space = StateSpace::dicke(8, 4);
  SparseXYOperator op(space, ring_graph(8));
  Rng rng(7);
  linalg::LanczosResult res = linalg::lanczos_extremal(
      [&op](const cvec& in, cvec& out) { op.apply(in, out); }, op.dim(),
      rng);
  const double radius =
      std::max(std::abs(res.min_eigenvalue), std::abs(res.max_eigenvalue));
  // Ring mixers are much sparser than their Gershgorin bound suggests.
  EXPECT_LT(radius, op.spectral_bound());
  // Cross-check against the dense spectrum.
  const dvec exact = linalg::eigvalsh(
      EigenMixer::xy_hamiltonian(space, ring_graph(8)));
  EXPECT_NEAR(res.max_eigenvalue, exact.back(), 1e-6);
  EXPECT_NEAR(res.min_eigenvalue, exact.front(), 1e-6);
}

}  // namespace
}  // namespace fastqaoa
