// Unit tests for the graph substrate and its random ensembles.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "graphs/graph.hpp"

namespace fastqaoa {
namespace {

TEST(Graph, AddEdgeAndAdjacency) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 1, 2.5);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(3), 0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.5);
  // Edges normalized with u < v.
  EXPECT_EQ(g.edges()[1].u, 1);
  EXPECT_EQ(g.edges()[1].v, 2);
}

TEST(Graph, RejectsSelfLoopsAndDuplicates) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 1), Error);
  EXPECT_THROW(g.add_edge(1, 0), Error);
  EXPECT_THROW(g.add_edge(0, 5), Error);
}

TEST(Graph, EdgeListConstructor) {
  Graph g(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.0);
}

TEST(ErdosRenyi, ProbabilityZeroAndOne) {
  Rng rng(1);
  Graph empty = erdos_renyi(10, 0.0, rng);
  EXPECT_EQ(empty.num_edges(), 0);
  Graph full = erdos_renyi(10, 1.0, rng);
  EXPECT_EQ(full.num_edges(), 45);
}

TEST(ErdosRenyi, EdgeDensityNearP) {
  Rng rng(2);
  int total = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    total += erdos_renyi(14, 0.5, rng).num_edges();
  }
  const double mean = static_cast<double>(total) / trials;
  const double expected = 0.5 * 14 * 13 / 2.0;  // 45.5
  EXPECT_NEAR(mean, expected, 3.0);
}

TEST(ErdosRenyi, DeterministicPerSeed) {
  Rng a(7), b(7);
  Graph g1 = erdos_renyi(12, 0.5, a);
  Graph g2 = erdos_renyi(12, 0.5, b);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  for (int i = 0; i < g1.num_edges(); ++i) {
    EXPECT_EQ(g1.edges()[static_cast<std::size_t>(i)],
              g2.edges()[static_cast<std::size_t>(i)]);
  }
}

TEST(RandomRegular, AllDegreesEqual) {
  Rng rng(3);
  for (const int d : {2, 3, 4}) {
    Graph g = random_regular(12, d, rng);
    for (int v = 0; v < 12; ++v) {
      EXPECT_EQ(g.degree(v), d) << "vertex " << v << " degree " << d;
    }
  }
}

TEST(RandomRegular, ParityConstraintEnforced) {
  Rng rng(4);
  EXPECT_THROW(random_regular(5, 3, rng), Error);  // n*d odd
  EXPECT_THROW(random_regular(4, 4, rng), Error);  // d >= n
}

TEST(NamedGraphs, CompleteRingStarPath) {
  Graph k5 = complete_graph(5);
  EXPECT_EQ(k5.num_edges(), 10);
  Graph c6 = ring_graph(6);
  EXPECT_EQ(c6.num_edges(), 6);
  for (int v = 0; v < 6; ++v) EXPECT_EQ(c6.degree(v), 2);
  Graph s5 = star_graph(5);
  EXPECT_EQ(s5.num_edges(), 4);
  EXPECT_EQ(s5.degree(0), 4);
  Graph p4 = path_graph(4);
  EXPECT_EQ(p4.num_edges(), 3);
  EXPECT_EQ(p4.degree(0), 1);
  EXPECT_EQ(p4.degree(1), 2);
}

TEST(NamedGraphs, RingNeedsThreeVertices) {
  EXPECT_THROW(ring_graph(2), Error);
}

}  // namespace
}  // namespace fastqaoa
