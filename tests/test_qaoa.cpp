// Unit and integration tests for the core QAOA statevector engine.

#include <gtest/gtest.h>

#include <cmath>

#include "bits/bitops.hpp"
#include "common/rng.hpp"
#include "core/qaoa.hpp"
#include "linalg/vector_ops.hpp"
#include "mixers/eigen_mixer.hpp"
#include "mixers/grover_mixer.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

dvec maxcut_table(const Graph& g) {
  return tabulate(StateSpace::full(g.num_vertices()),
                  [&g](state_t x) { return maxcut(g, x); });
}

TEST(Qaoa, ZeroAnglesLeaveUniformState) {
  Rng rng(1);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(6);
  Qaoa engine(mixer, table, 2);
  std::vector<double> zeros(4, 0.0);
  const double e = engine.run_packed(zeros);
  // <C> of the uniform state is the mean cost.
  EXPECT_NEAR(e, objective_stats(table).mean, 1e-10);
  for (const auto& amp : engine.state()) {
    EXPECT_NEAR(std::abs(amp), 1.0 / 8.0, 1e-12);
  }
}

TEST(Qaoa, NormPreservedAcrossRounds) {
  Rng rng(2);
  Graph g = erdos_renyi(8, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(8);
  Qaoa engine(mixer, table, 5);
  std::vector<double> angles(10);
  for (auto& a : angles) a = rng.uniform(0.0, 2.0 * kPi);
  engine.run_packed(angles);
  EXPECT_NEAR(linalg::norm(engine.state()), 1.0, 1e-11);
}

TEST(Qaoa, SingleRoundMatchesHandRolledEvolution) {
  Rng rng(3);
  Graph g = erdos_renyi(5, 0.6, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(5);

  const double beta = 0.3;
  const double gamma = 0.8;
  // Hand-rolled: uniform -> phase -> mixer.
  cvec psi = testutil::uniform_state(32);
  linalg::apply_diag_phase(psi, table, gamma);
  cvec scratch;
  mixer.apply_exp(psi, beta, scratch);
  const double expected = linalg::diag_expectation(table, psi);

  Qaoa engine(mixer, table, 1);
  const double e = engine.run({&beta, 1}, {&gamma, 1});
  EXPECT_NEAR(e, expected, 1e-12);
  EXPECT_LT(testutil::max_diff(engine.state(), psi), 1e-12);
}

TEST(Qaoa, MaxCutP1AnalyticSingleEdge) {
  // For a single edge (n=2) with mixer e^{-i beta (X0+X1)}, <C> has the
  // closed form 1/2 (1 + sin(4 beta) sin(gamma)) [Farhi et al., adapted to
  // the Hamiltonian-angle convention: RX angle = 2 beta].
  Graph g(2, {{0, 1}});
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(2);
  Qaoa engine(mixer, table, 1);
  for (const double beta : {0.1, 0.7, 1.9}) {
    for (const double gamma : {0.2, 1.0, 2.4}) {
      const double e = engine.run({&beta, 1}, {&gamma, 1});
      const double analytic =
          0.5 * (1.0 + std::sin(4.0 * beta) * std::sin(gamma));
      EXPECT_NEAR(e, analytic, 1e-12) << "beta=" << beta << " gamma=" << gamma;
    }
  }
}

TEST(Qaoa, OptimalP1SingleEdgeReachesCutOne) {
  // beta = pi/8, gamma = pi/2 solves the single-edge MaxCut exactly.
  Graph g(2, {{0, 1}});
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(2);
  Qaoa engine(mixer, table, 1);
  const double beta = kPi / 8.0;
  const double gamma = kPi / 2.0;
  EXPECT_NEAR(engine.run({&beta, 1}, {&gamma, 1}), 1.0, 1e-12);
  EXPECT_NEAR(engine.ground_state_probability(), 1.0, 1e-12);
}

TEST(Qaoa, GroundStateProbabilityAndAmplitudes) {
  Graph g(2, {{0, 1}});
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(2);
  Qaoa engine(mixer, table, 1);
  std::vector<double> zeros(2, 0.0);
  engine.run_packed(zeros);
  // Uniform over 4 states; maximizers are |01> and |10>.
  EXPECT_NEAR(engine.ground_state_probability(), 0.5, 1e-12);
  EXPECT_NEAR(engine.ground_state_probability(Direction::Minimize), 0.5,
              1e-12);
  EXPECT_NEAR(engine.probability_of_value(1.0), 0.5, 1e-12);
  EXPECT_NEAR(std::abs(engine.amplitude(0)), 0.5, 1e-12);
  EXPECT_THROW((void)engine.amplitude(100), Error);
}

TEST(Qaoa, CustomInitialStateWarmStart) {
  Graph g(2, {{0, 1}});
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(2);
  Qaoa engine(mixer, table, 1);
  // Start in the solution state |01>; zero angles must keep it there.
  cvec warm(4, cplx{0.0, 0.0});
  warm[1] = cplx{1.0, 0.0};
  engine.set_initial_state(warm);
  std::vector<double> zeros(2, 0.0);
  EXPECT_NEAR(engine.run_packed(zeros), 1.0, 1e-12);
  EXPECT_NEAR(engine.ground_state_probability(), 1.0, 1e-12);
}

TEST(Qaoa, InitialStateValidation) {
  dvec table(4, 0.0);
  table[0] = 1.0;
  XMixer mixer = XMixer::transverse_field(2);
  Qaoa engine(mixer, table, 1);
  cvec bad_dim(3, cplx{1.0, 0.0});
  EXPECT_THROW(engine.set_initial_state(bad_dim), Error);
  cvec not_normalized(4, cplx{1.0, 0.0});
  EXPECT_THROW(engine.set_initial_state(not_normalized), Error);
}

TEST(Qaoa, PhaseValuesDecoupledFromObjective) {
  // Threshold phase separator: phases from the indicator, measurement from
  // the true cost. With gamma = pi the indicator flips marked states'
  // sign, which must change <C> relative to gamma = 0 at beta != 0.
  Graph g(3, {{0, 1}, {1, 2}});
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(3);
  Qaoa engine(mixer, table, 1);
  engine.set_phase_values(threshold_indicator(table, 1.5));
  const double beta = 0.4;
  double gamma = 0.0;
  const double e0 = engine.run({&beta, 1}, {&gamma, 1});
  gamma = kPi;
  const double e1 = engine.run({&beta, 1}, {&gamma, 1});
  EXPECT_GT(std::abs(e1 - e0), 1e-3);
  // And the expectation is still measured against the *true* objective:
  // it never exceeds the best cut.
  EXPECT_LE(e1, objective_stats(table).max_value + 1e-12);
}

TEST(Qaoa, PerRoundMixerSchedule) {
  Rng rng(4);
  Graph g = erdos_renyi(5, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer tf = XMixer::transverse_field(5);
  GroverMixer grover(32);
  Qaoa engine({&tf, &grover}, table);
  EXPECT_EQ(engine.rounds(), 2);
  EXPECT_EQ(engine.num_betas(), 2);
  std::vector<double> betas = {0.3, 0.5};
  std::vector<double> gammas = {0.7, 0.2};
  const double e = engine.run(betas, gammas);

  // Hand-rolled cross-check.
  cvec psi = testutil::uniform_state(32);
  cvec scratch;
  linalg::apply_diag_phase(psi, table, 0.7);
  tf.apply_exp(psi, 0.3, scratch);
  linalg::apply_diag_phase(psi, table, 0.2);
  grover.apply_exp(psi, 0.5, scratch);
  EXPECT_NEAR(e, linalg::diag_expectation(table, psi), 1e-12);
}

TEST(Qaoa, MultiAngleLayers) {
  // Two mixers inside one round, each with its own beta (multi-angle QAOA).
  Rng rng(5);
  Graph g = erdos_renyi(4, 0.6, rng);
  dvec table = maxcut_table(g);
  XMixer x1(4, {{0b0001, 1.0}, {0b0010, 1.0}});
  XMixer x2(4, {{0b0100, 1.0}, {0b1000, 1.0}});
  std::vector<MixerLayer> layers = {MixerLayer{{&x1, &x2}}};
  Qaoa engine(layers, table);
  EXPECT_EQ(engine.rounds(), 1);
  EXPECT_EQ(engine.num_betas(), 2);
  std::vector<double> betas = {0.4, 0.9};
  std::vector<double> gammas = {0.6};
  const double e = engine.run(betas, gammas);

  cvec psi = testutil::uniform_state(16);
  cvec scratch;
  linalg::apply_diag_phase(psi, table, 0.6);
  x1.apply_exp(psi, 0.4, scratch);
  x2.apply_exp(psi, 0.9, scratch);
  EXPECT_NEAR(e, linalg::diag_expectation(table, psi), 1e-12);
  // Packed interface rejects multi-angle layouts.
  std::vector<double> packed = {0.4, 0.9, 0.6};
  EXPECT_THROW(engine.run_packed(packed), Error);
}

TEST(Qaoa, ConstrainedProblemOnDickeSubspace) {
  // Densest-2-subgraph on a triangle-plus-pendant graph with the Clique
  // mixer; best pair is any triangle edge (value 1).
  Graph g(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  StateSpace space = StateSpace::dicke(4, 2);
  dvec table =
      tabulate(space, [&g](state_t x) { return densest_subgraph(g, x); });
  EigenMixer mixer = EigenMixer::clique(space);
  Qaoa engine(mixer, table, 2);
  Rng rng(6);
  std::vector<double> angles(4);
  for (auto& a : angles) a = rng.uniform(0.0, 2.0 * kPi);
  const double e = engine.run_packed(angles);
  EXPECT_NEAR(linalg::norm(engine.state()), 1.0, 1e-10);
  EXPECT_LE(e, 1.0 + 1e-10);
  EXPECT_GE(e, 0.0);
}

TEST(Qaoa, ExpectationOfSecondaryObservable) {
  Rng rng(8);
  Graph g = erdos_renyi(5, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(5);
  Qaoa engine(mixer, table, 2);
  std::vector<double> angles = {0.3, 0.7, 0.5, 0.9};
  const double e = engine.run_packed(angles);
  // Measuring the objective itself through expectation_of must agree.
  EXPECT_NEAR(engine.expectation_of(table), e, 1e-12);
  // A constant observable returns that constant (norm check in disguise).
  dvec ones(table.size(), 1.0);
  EXPECT_NEAR(engine.expectation_of(ones), 1.0, 1e-12);
  // Hamming-weight observable stays within [0, n].
  dvec weight(table.size(), 0.0);
  for (index_t i = 0; i < weight.size(); ++i) {
    weight[i] = static_cast<double>(popcount(static_cast<state_t>(i)));
  }
  const double w = engine.expectation_of(weight);
  EXPECT_GE(w, 0.0);
  EXPECT_LE(w, 5.0);
  dvec wrong(3, 0.0);
  EXPECT_THROW((void)engine.expectation_of(wrong), Error);
}

TEST(Qaoa, MixerDimensionMismatchThrows) {
  dvec table(8, 0.0);
  XMixer mixer = XMixer::transverse_field(2);  // dim 4 != 8
  EXPECT_THROW(Qaoa(mixer, table, 1), Error);
}

TEST(Qaoa, AngleCountValidation) {
  dvec table(4, 1.0);
  table[0] = 0.0;
  XMixer mixer = XMixer::transverse_field(2);
  Qaoa engine(mixer, table, 2);
  std::vector<double> three(3, 0.1);
  EXPECT_THROW(engine.run_packed(three), Error);
  std::vector<double> b(1, 0.1), g(2, 0.1);
  EXPECT_THROW(engine.run(b, g), Error);
}

TEST(SimulateFreeFunction, MatchesEngineAndFillsSummary) {
  Rng rng(7);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(6);
  std::vector<double> angles(6);
  for (auto& a : angles) a = rng.uniform(0.0, 2.0 * kPi);

  SimResult result = simulate(angles, mixer, table);
  Qaoa engine(mixer, table, 3);
  const double e = engine.run_packed(angles);
  EXPECT_NEAR(result.exp_value, e, 1e-12);
  EXPECT_EQ(result.statevector.size(), 64u);
  EXPECT_DOUBLE_EQ(result.best_value, objective_stats(table).max_value);
  EXPECT_NEAR(result.ground_state_prob, engine.ground_state_probability(),
              1e-12);
}

TEST(SimulateFreeFunction, WithInitialState) {
  Graph g(2, {{0, 1}});
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(2);
  cvec warm(4, cplx{0.0, 0.0});
  warm[2] = cplx{1.0, 0.0};
  std::vector<double> zeros(2, 0.0);
  SimResult result = simulate(zeros, mixer, table, warm);
  EXPECT_NEAR(result.exp_value, 1.0, 1e-12);
  EXPECT_NEAR(result.ground_state_prob, 1.0, 1e-12);
}

}  // namespace
}  // namespace fastqaoa
