// Unit tests for CNF formulas and random k-SAT generation.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sat/cnf.hpp"

namespace fastqaoa {
namespace {

TEST(Cnf, CountSatisfiedKnownFormula) {
  // (x0 or x1) and (!x0 or x2) and (!x1 or !x2)
  CnfFormula f(3);
  f.add_clause({{0, false}, {1, false}});
  f.add_clause({{0, true}, {2, false}});
  f.add_clause({{1, true}, {2, true}});
  EXPECT_EQ(f.num_clauses(), 3);

  EXPECT_EQ(f.count_satisfied(0b000), 2);  // clause 1 fails
  EXPECT_EQ(f.count_satisfied(0b001), 2);  // x0=1: clause 2 fails
  EXPECT_EQ(f.count_satisfied(0b101), 3);  // x0=1, x2=1: all pass
  EXPECT_TRUE(f.satisfied(0b101));
  EXPECT_FALSE(f.satisfied(0b111));  // clause 3 fails
}

TEST(Cnf, NegatedLiteralSemantics) {
  CnfFormula f(1);
  f.add_clause({{0, true}});  // (!x0)
  EXPECT_TRUE(f.satisfied(0b0));
  EXPECT_FALSE(f.satisfied(0b1));
}

TEST(Cnf, ValidatesClauses) {
  CnfFormula f(2);
  EXPECT_THROW(f.add_clause({}), Error);
  EXPECT_THROW(f.add_clause({{5, false}}), Error);
  EXPECT_THROW(f.add_clause({{0, false}, {0, true}}), Error);
}

TEST(RandomKsat, ShapeAndDistinctVariables) {
  Rng rng(1);
  CnfFormula f = random_ksat(10, 3, 40, rng);
  EXPECT_EQ(f.num_variables(), 10);
  EXPECT_EQ(f.num_clauses(), 40);
  for (const Clause& c : f.clauses()) {
    ASSERT_EQ(c.size(), 3u);
    EXPECT_NE(c[0].variable, c[1].variable);
    EXPECT_NE(c[0].variable, c[2].variable);
    EXPECT_NE(c[1].variable, c[2].variable);
    for (const Literal& lit : c) {
      EXPECT_GE(lit.variable, 0);
      EXPECT_LT(lit.variable, 10);
    }
  }
}

TEST(RandomKsat, DensityHelper) {
  Rng rng(2);
  CnfFormula f = random_ksat_density(12, 3, 6.0, rng);
  EXPECT_EQ(f.num_clauses(), 72);
  EXPECT_NEAR(f.clause_density(), 6.0, 1e-12);
}

TEST(RandomKsat, PolarityBalance) {
  Rng rng(3);
  CnfFormula f = random_ksat(20, 3, 2000, rng);
  int negated = 0;
  int total = 0;
  for (const Clause& c : f.clauses()) {
    for (const Literal& lit : c) {
      negated += lit.negated;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(negated) / total, 0.5, 0.03);
}

TEST(RandomKsat, SatisfiedCountUpperBound) {
  Rng rng(4);
  CnfFormula f = random_ksat(8, 3, 48, rng);
  for (state_t x = 0; x < (state_t{1} << 8); ++x) {
    const int sat = f.count_satisfied(x);
    EXPECT_GE(sat, 0);
    EXPECT_LE(sat, 48);
  }
}

TEST(RandomKsat, RejectsBadParameters) {
  Rng rng(5);
  EXPECT_THROW(random_ksat(3, 4, 10, rng), Error);
  EXPECT_THROW(random_ksat(3, 0, 10, rng), Error);
}

}  // namespace
}  // namespace fastqaoa
