// Tests for binary serialization: mixers and cost tables round-trip through
// disk; the load_or_build helper implements the paper's Listing 2 caching.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/rng.hpp"
#include "core/grover_fast.hpp"
#include "io/serialize.hpp"
#include "linalg/vector_ops.hpp"
#include "problems/cost_functions.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

class TempDir {
 public:
  TempDir() {
    // gtest_discover_tests runs every TEST in its own process, so a bare
    // counter restarts at 0 each time and concurrent ctest jobs would
    // collide on (and remove_all!) the same directory — key by pid too.
    dir_ = std::filesystem::temp_directory_path() /
           ("fastqaoa_io_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

TEST(Serialize, RealMixerRoundTrip) {
  TempDir tmp;
  StateSpace space = StateSpace::dicke(6, 3);
  EigenMixer original = EigenMixer::clique(space);
  const std::string path = tmp.path("clique.mix");
  io::save_mixer(path, original);
  EigenMixer loaded = io::load_mixer(path);

  EXPECT_TRUE(loaded.is_real());
  EXPECT_EQ(loaded.name(), "clique");
  EXPECT_EQ(loaded.dim(), original.dim());
  // Behavioural equality: identical action on a random state.
  Rng rng(1);
  cvec psi1 = testutil::random_state(space.dim(), rng);
  cvec psi2 = psi1;
  cvec scratch;
  original.apply_exp(psi1, 0.83, scratch);
  loaded.apply_exp(psi2, 0.83, scratch);
  EXPECT_LT(testutil::max_diff(psi1, psi2), 1e-14);
}

TEST(Serialize, ComplexMixerRoundTrip) {
  TempDir tmp;
  Rng rng(2);
  EigenMixer original = EigenMixer::from_hamiltonian(
      linalg::hermitize(linalg::random_cmatrix(7, 7, rng)), "herm7");
  const std::string path = tmp.path("herm.mix");
  io::save_mixer(path, original);
  EigenMixer loaded = io::load_mixer(path);
  EXPECT_FALSE(loaded.is_real());
  EXPECT_EQ(loaded.name(), "herm7");

  cvec psi1 = testutil::random_state(7, rng);
  cvec psi2 = psi1;
  cvec scratch;
  original.apply_exp(psi1, -1.2, scratch);
  loaded.apply_exp(psi2, -1.2, scratch);
  EXPECT_LT(testutil::max_diff(psi1, psi2), 1e-14);
}

TEST(Serialize, LoadOrBuildCachesExpensiveDecomposition) {
  TempDir tmp;
  const std::string path = tmp.path("cache.mix");
  int builds = 0;
  auto build = [&builds] {
    ++builds;
    return EigenMixer::clique(StateSpace::dicke(5, 2));
  };
  EXPECT_FALSE(std::filesystem::exists(path));
  EigenMixer first = io::load_or_build_mixer(path, build);
  EXPECT_EQ(builds, 1);
  EXPECT_TRUE(std::filesystem::exists(path));
  EigenMixer second = io::load_or_build_mixer(path, build);
  EXPECT_EQ(builds, 1) << "second call must load, not rebuild";
  EXPECT_EQ(second.dim(), first.dim());
}

TEST(Serialize, TableRoundTrip) {
  TempDir tmp;
  Rng rng(3);
  Graph g = erdos_renyi(8, 0.5, rng);
  dvec table = tabulate(StateSpace::full(8),
                        [&g](state_t x) { return maxcut(g, x); });
  const std::string path = tmp.path("table.bin");
  io::save_table(path, table);
  dvec loaded = io::load_table(path);
  ASSERT_EQ(loaded.size(), table.size());
  for (index_t i = 0; i < table.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i], table[i]);
  }
}

TEST(Serialize, DegeneracyRoundTrip) {
  TempDir tmp;
  Rng rng(4);
  Graph g = erdos_renyi(9, 0.5, rng);
  DegeneracyTable table = degeneracy_table_streaming(
      9, [&g](state_t x) { return maxcut(g, x); });
  const std::string path = tmp.path("hist.bin");
  io::save_degeneracy(path, table);
  DegeneracyTable loaded = io::load_degeneracy(path);
  ASSERT_EQ(loaded.values.size(), table.values.size());
  EXPECT_EQ(loaded.total, table.total);
  for (std::size_t i = 0; i < table.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.values[i], table.values[i]);
    EXPECT_EQ(loaded.counts[i], table.counts[i]);
  }
  // The reloaded histogram drives a Grover simulation identically.
  GroverQaoa a(table);
  GroverQaoa b(loaded);
  std::vector<double> angles = {0.4, 0.9, 1.2, 0.3};
  EXPECT_DOUBLE_EQ(a.run_packed(angles), b.run_packed(angles));
}

TEST(Serialize, DegeneracyRejectsWrongTag) {
  TempDir tmp;
  dvec table(8, 1.0);
  const std::string path = tmp.path("table.bin");
  io::save_table(path, table);
  EXPECT_THROW(io::load_degeneracy(path), Error);
}

TEST(Serialize, RejectsWrongPayloadType) {
  TempDir tmp;
  dvec table(16, 1.5);
  const std::string path = tmp.path("table.bin");
  io::save_table(path, table);
  EXPECT_THROW(io::load_mixer(path), Error);
}

TEST(Serialize, RejectsGarbageAndMissingFiles) {
  TempDir tmp;
  const std::string garbage = tmp.path("garbage.bin");
  std::ofstream(garbage, std::ios::binary) << "this is not a fastqaoa file";
  EXPECT_THROW(io::load_table(garbage), Error);
  EXPECT_THROW(io::load_mixer(garbage), Error);
  EXPECT_THROW(io::load_table(tmp.path("missing.bin")), Error);
}

TEST(Serialize, LoadOrBuildFailsLoudlyOnCorruptCache) {
  // A corrupt cache file must surface as an error, not a silent rebuild —
  // silent fallback would mask data loss.
  TempDir tmp;
  const std::string path = tmp.path("corrupt.mix");
  std::ofstream(path, std::ios::binary) << "garbage bytes";
  int builds = 0;
  auto build = [&builds] {
    ++builds;
    return EigenMixer::clique(StateSpace::dicke(4, 2));
  };
  EXPECT_THROW(io::load_or_build_mixer(path, build), Error);
  EXPECT_EQ(builds, 0);
}

TEST(Serialize, RejectsTruncatedFile) {
  TempDir tmp;
  StateSpace space = StateSpace::dicke(5, 2);
  EigenMixer mixer = EigenMixer::clique(space);
  const std::string path = tmp.path("full.mix");
  io::save_mixer(path, mixer);
  // Truncate to half size.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(io::load_mixer(path), Error);
}

}  // namespace
}  // namespace fastqaoa
