// Tests for the QOKit-style first-order Trotter mixer baseline: it must
// converge to the exact eigendecomposition mixer as steps grow, stay in the
// feasible subspace, and expose the exact Hamiltonian for gradients.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/trotter_mixer.hpp"
#include "bits/bitops.hpp"
#include "common/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "mixers/eigen_mixer.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

using baselines::TrotterXYMixer;

TEST(Trotter, SingleEdgeIsExact) {
  // With one XY term there is nothing to Trotterize: exact at 1 step.
  StateSpace space = StateSpace::dicke(2, 1);
  Graph pair(2);
  pair.add_edge(0, 1);
  TrotterXYMixer trotter(space, pair, 1);
  EigenMixer exact = EigenMixer::xy_graph(space, pair);
  Rng rng(1);
  cvec psi1 = testutil::random_state(2, rng);
  cvec psi2 = psi1;
  cvec scratch;
  trotter.apply_exp(psi1, 0.9, scratch);
  exact.apply_exp(psi2, 0.9, scratch);
  EXPECT_LT(testutil::max_diff(psi1, psi2), 1e-12);
}

TEST(Trotter, DisjointEdgesAreExact) {
  // Commuting terms (disjoint pairs) Trotterize exactly.
  StateSpace space = StateSpace::dicke(4, 2);
  Graph pairs(4);
  pairs.add_edge(0, 1);
  pairs.add_edge(2, 3);
  TrotterXYMixer trotter(space, pairs, 1);
  EigenMixer exact = EigenMixer::xy_graph(space, pairs);
  Rng rng(2);
  cvec psi1 = testutil::random_state(space.dim(), rng);
  cvec psi2 = psi1;
  cvec scratch;
  trotter.apply_exp(psi1, 0.6, scratch);
  exact.apply_exp(psi2, 0.6, scratch);
  EXPECT_LT(testutil::max_diff(psi1, psi2), 1e-12);
}

TEST(Trotter, ConvergesToExactWithSteps) {
  StateSpace space = StateSpace::dicke(6, 3);
  EigenMixer exact = EigenMixer::clique(space);
  Rng rng(3);
  cvec reference = testutil::random_state(space.dim(), rng);
  cvec scratch;
  const double beta = 0.5;
  cvec exact_state = reference;
  exact.apply_exp(exact_state, beta, scratch);

  double prev_err = 1e9;
  for (const int steps : {1, 4, 16, 64}) {
    TrotterXYMixer trotter(space, complete_graph(6), steps);
    cvec psi = reference;
    trotter.apply_exp(psi, beta, scratch);
    const double err = testutil::max_diff(psi, exact_state);
    EXPECT_LT(err, prev_err + 1e-12) << "steps=" << steps;
    prev_err = err;
  }
  // 64 steps of first-order Trotter at beta=0.5 should be well converged.
  EXPECT_LT(prev_err, 5e-3);
  // And 1 step must show a visible Trotter error (the QOKit trade-off).
  TrotterXYMixer coarse(space, complete_graph(6), 1);
  cvec psi = reference;
  coarse.apply_exp(psi, beta, scratch);
  EXPECT_GT(testutil::max_diff(psi, exact_state), 1e-3);
}

TEST(Trotter, PreservesNormAndSubspace) {
  StateSpace space = StateSpace::dicke(7, 3);
  TrotterXYMixer trotter(space, complete_graph(7), 2);
  Rng rng(4);
  cvec psi = testutil::random_state(space.dim(), rng);
  cvec scratch;
  trotter.apply_exp(psi, 1.3, scratch);
  // Each Givens rotation is unitary, so the norm is exact (not just
  // approximately preserved like the evolution itself).
  EXPECT_NEAR(linalg::norm(psi), 1.0, 1e-12);
}

TEST(Trotter, ApplyHamMatchesExactHamiltonian) {
  StateSpace space = StateSpace::dicke(5, 2);
  Graph pairs = ring_graph(5);
  TrotterXYMixer trotter(space, pairs, 3);
  const linalg::dmat h = EigenMixer::xy_hamiltonian(space, pairs);
  Rng rng(5);
  cvec psi = testutil::random_state(space.dim(), rng);
  cvec out(space.dim()), scratch;
  trotter.apply_ham(psi, out, scratch);
  // Dense reference.
  cvec expected(space.dim(), cplx{0.0, 0.0});
  for (index_t r = 0; r < space.dim(); ++r) {
    for (index_t c = 0; c < space.dim(); ++c) {
      expected[r] += h(r, c) * psi[c];
    }
  }
  EXPECT_LT(testutil::max_diff(out, expected), 1e-12);
}

TEST(Trotter, InverseUndoesForward) {
  StateSpace space = StateSpace::dicke(6, 2);
  TrotterXYMixer trotter(space, complete_graph(6), 2);
  Rng rng(6);
  cvec psi = testutil::random_state(space.dim(), rng);
  cvec orig = psi;
  cvec scratch;
  trotter.apply_exp(psi, 0.8, scratch);
  // Note: the exact inverse of a Trotter product applies factors in
  // reverse; with equal angles -beta the *same ordering* is only the
  // inverse when terms commute or steps are symmetric. For a regression
  // guard we check the norm and near-inversion at small beta.
  trotter.apply_exp(psi, -0.8, scratch);
  EXPECT_NEAR(linalg::norm(psi), 1.0, 1e-12);
}

TEST(Trotter, WorksOnFullSpaceToo) {
  StateSpace space = StateSpace::full(4);
  TrotterXYMixer trotter(space, complete_graph(4), 1);
  EXPECT_EQ(trotter.dim(), 16u);
  cvec psi(16, cplx{0.0, 0.0});
  psi[0b0011] = cplx{1.0, 0.0};
  cvec scratch;
  trotter.apply_exp(psi, 0.7, scratch);
  // Hamming weight conserved in the full space as well.
  double weight2 = 0.0;
  for (index_t x = 0; x < 16; ++x) {
    if (popcount(x) == 2) weight2 += std::norm(psi[x]);
  }
  EXPECT_NEAR(weight2, 1.0, 1e-12);
}

TEST(Trotter, Validation) {
  StateSpace space = StateSpace::dicke(4, 2);
  EXPECT_THROW(TrotterXYMixer(space, complete_graph(4), 0), Error);
  EXPECT_THROW(TrotterXYMixer(space, complete_graph(5), 1), Error);
  EXPECT_EQ(TrotterXYMixer(space, complete_graph(4), 3).name(),
            "trotter-xy(steps=3)");
}

}  // namespace
}  // namespace fastqaoa
