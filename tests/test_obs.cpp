// Tests for the observability layer (src/obs/): per-thread counter sinks
// and their merge semantics, scoped trace spans and the Chrome trace-event
// JSON they serialize to, and the thread-count invariance of merged
// evaluation counts coming out of the instrumented angle-finding loops.
//
// The obs classes compile in both FASTQAOA_PROFILING configurations; only
// the macro-driven assertions (global counters populated by instrumented
// hot paths) are gated on FASTQAOA_PROFILING_ENABLED.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "anglefind/strategies.hpp"
#include "common/threading.hpp"
#include "mixers/x_mixer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "problems/cost_functions.hpp"

namespace fastqaoa {
namespace {

// --- minimal JSON syntax validator -----------------------------------------
// Recursive-descent checker for the JSON the obs layer emits. Accepts any
// syntactically valid document; no semantics, no number parsing beyond shape.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return i_ == s_.size();
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\n' ||
                              s_[i_] == '\r' || s_[i_] == '\t')) {
      ++i_;
    }
  }
  bool literal(const char* lit) {
    for (const char* c = lit; *c != '\0'; ++c, ++i_) {
      if (i_ >= s_.size() || s_[i_] != *c) return false;
    }
    return true;
  }
  bool string() {
    if (s_[i_] != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
      }
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = i_;
    if (i_ < s_.size() && (s_[i_] == '-' || s_[i_] == '+')) ++i_;
    bool digits = false;
    while (i_ < s_.size() &&
           ((s_[i_] >= '0' && s_[i_] <= '9') || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '-' ||
            s_[i_] == '+')) {
      if (s_[i_] >= '0' && s_[i_] <= '9') digits = true;
      ++i_;
    }
    return digits && i_ > start;
  }
  bool object() {
    ++i_;  // '{'
    skip_ws();
    if (i_ < s_.size() && s_[i_] == '}') {
      ++i_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (i_ >= s_.size() || s_[i_] != ':') return false;
      ++i_;
      if (!value()) return false;
      skip_ws();
      if (i_ >= s_.size()) return false;
      if (s_[i_] == '}') {
        ++i_;
        return true;
      }
      if (s_[i_] != ',') return false;
      ++i_;
    }
  }
  bool array() {
    ++i_;  // '['
    skip_ws();
    if (i_ < s_.size() && s_[i_] == ']') {
      ++i_;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (i_ >= s_.size()) return false;
      if (s_[i_] == ']') {
        ++i_;
        return true;
      }
      if (s_[i_] != ',') return false;
      ++i_;
    }
  }
  bool value() {
    skip_ws();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

// --- counter / timer sinks --------------------------------------------------

TEST(Metrics, InterningIsStableAndDistinct) {
  const obs::MetricId a1 = obs::counter_id("obs_test.alpha");
  const obs::MetricId a2 = obs::counter_id("obs_test.alpha");
  const obs::MetricId b = obs::counter_id("obs_test.beta");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  // Counter and timer namespaces are independent.
  const obs::MetricId t = obs::timer_id("obs_test.alpha");
  const obs::MetricId t2 = obs::timer_id("obs_test.alpha");
  EXPECT_EQ(t, t2);
}

TEST(Metrics, CountersMergeAcrossSixThreads) {
  const obs::MetricId count_id = obs::counter_id("obs_test.merge.count");
  const obs::MetricId time_id = obs::timer_id("obs_test.merge.time");

  constexpr int kThreads = 6;
  std::vector<obs::MetricsSink> sinks(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Thread t adds (t+1)*100 counts and (t+1) timing samples of t+1 ms.
      for (int i = 0; i < (t + 1) * 100; ++i) {
        sinks[static_cast<std::size_t>(t)].add_count(count_id);
      }
      for (int i = 0; i <= t; ++i) {
        sinks[static_cast<std::size_t>(t)].add_timing(time_id,
                                                      1e-3 * (t + 1));
      }
    });
  }
  for (auto& w : workers) w.join();

  obs::MetricsSink total;
  for (const auto& sink : sinks) total.merge(sink);
  const obs::MetricsSnapshot snap = total.snapshot();

  // 100 + 200 + ... + 600 = 2100 counts; 1 + 2 + ... + 6 = 21 samples.
  ASSERT_EQ(snap.counters.count("obs_test.merge.count"), 1u);
  EXPECT_EQ(snap.counters.at("obs_test.merge.count"), 2100u);
  ASSERT_EQ(snap.timings.count("obs_test.merge.time"), 1u);
  const obs::TimingStat& stat = snap.timings.at("obs_test.merge.time");
  EXPECT_EQ(stat.count, 21u);
  EXPECT_NEAR(stat.min, 1e-3, 1e-12);
  EXPECT_NEAR(stat.max, 6e-3, 1e-12);
  // total = sum over t of (t+1) samples of (t+1) ms = 1+4+9+...+36 ms.
  EXPECT_NEAR(stat.total, 91e-3, 1e-9);
}

TEST(Metrics, SnapshotMergeAddsAndJsonIsValid) {
  const obs::MetricId id = obs::counter_id("obs_test.snapshot.count");
  const obs::MetricId tid = obs::timer_id("obs_test.snapshot.time");

  obs::MetricsSink a;
  a.add_count(id, 3);
  a.add_timing(tid, 0.5);
  obs::MetricsSink b;
  b.add_count(id, 4);
  b.add_timing(tid, 1.5);

  obs::MetricsSnapshot sa = a.snapshot();
  const obs::MetricsSnapshot sb = b.snapshot();
  sa.merge(sb);
  EXPECT_EQ(sa.counters.at("obs_test.snapshot.count"), 7u);
  EXPECT_EQ(sa.timings.at("obs_test.snapshot.time").count, 2u);
  EXPECT_NEAR(sa.timings.at("obs_test.snapshot.time").total, 2.0, 1e-12);
  EXPECT_NEAR(sa.timings.at("obs_test.snapshot.time").min, 0.5, 1e-12);
  EXPECT_NEAR(sa.timings.at("obs_test.snapshot.time").max, 1.5, 1e-12);

  const std::string json = sa.to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"obs_test.snapshot.count\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.snapshot.time\""), std::string::npos);
  EXPECT_NE(json.find("\"total_s\""), std::string::npos);

  // An empty snapshot still serializes to a valid document.
  const obs::MetricsSnapshot empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(JsonValidator(empty.to_json()).valid()) << empty.to_json();
}

TEST(Metrics, SinkScopeBindsNestsAndHonorsRuntimeToggle) {
  EXPECT_EQ(obs::active_sink(), nullptr);
  obs::MetricsSink outer;
  obs::MetricsSink inner;
  {
    obs::SinkScope bind_outer(outer);
    EXPECT_EQ(obs::active_sink(), &outer);
    {
      obs::SinkScope bind_inner(inner);
      EXPECT_EQ(obs::active_sink(), &inner);
    }
    EXPECT_EQ(obs::active_sink(), &outer);
  }
  EXPECT_EQ(obs::active_sink(), nullptr);

  obs::set_metrics_enabled(false);
  {
    obs::SinkScope bind(outer);
    EXPECT_EQ(obs::active_sink(), nullptr);
  }
  obs::set_metrics_enabled(true);
  EXPECT_TRUE(obs::metrics_enabled());
}

TEST(Metrics, GlobalMergeAndReset) {
  obs::reset_global();
  const obs::MetricId id = obs::counter_id("obs_test.global.count");
  obs::MetricsSink sink;
  sink.add_count(id, 5);
  obs::merge_global(sink);
  obs::count_global(id, 2);
  EXPECT_EQ(obs::global_snapshot().counters.at("obs_test.global.count"), 7u);
  obs::reset_global();
  EXPECT_EQ(obs::global_snapshot().counters.count("obs_test.global.count"),
            0u);
}

// --- trace spans -------------------------------------------------------------

TEST(Trace, NestedSpansSerializeToValidChromeTraceJson) {
  obs::trace_begin();
  {
    obs::TraceSpan outer("obs_test_outer");
    {
      obs::TraceSpan inner("obs_test_inner");
    }
    {
      obs::TraceSpan inner2("obs_test_inner2");
    }
  }
  EXPECT_EQ(obs::trace_span_count(), 3u);
  const std::string json = obs::trace_end_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_FALSE(obs::tracing_enabled());
}

TEST(Trace, SpansFromMultipleThreadsAllLand) {
  obs::trace_begin();
  constexpr int kThreads = 6;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] { obs::TraceSpan span("obs_test_worker"); });
  }
  for (auto& w : workers) w.join();
  const std::string json = obs::trace_end_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  // All six spans appear, even though their threads have exited.
  std::size_t found = 0;
  for (std::size_t pos = json.find("obs_test_worker");
       pos != std::string::npos; pos = json.find("obs_test_worker", pos + 1)) {
    ++found;
  }
  EXPECT_EQ(found, 6u);
}

TEST(Trace, DisarmedSpansCostNothingAndRecordNothing) {
  ASSERT_FALSE(obs::tracing_enabled());
  {
    obs::TraceSpan span("obs_test_disarmed");
  }
  obs::trace_begin();
  const std::string json = obs::trace_end_json();
  EXPECT_EQ(json.find("obs_test_disarmed"), std::string::npos);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
}

// --- end-to-end: instrumented angle finding ---------------------------------

TEST(ObsIntegration, FindAnglesEvalCountsThreadCountInvariant) {
  Rng rng(31);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = tabulate(StateSpace::full(6),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(6);
  FindAnglesOptions opt;
  opt.seed = 13;
  opt.hopping.hops = 3;
  opt.parallel_starts = 8;

  set_num_threads(1);
  obs::reset_global();
  const std::vector<AngleSchedule> serial = find_angles(mixer, table, 2, opt);
  const obs::MetricsSnapshot snap_serial = obs::global_snapshot();

  set_num_threads(4);
  obs::reset_global();
  const std::vector<AngleSchedule> parallel =
      find_angles(mixer, table, 2, opt);
  const obs::MetricsSnapshot snap_parallel = obs::global_snapshot();
  set_num_threads(1);
  obs::reset_global();

  // The schedule-level totals are part of the public API and must be
  // identical at any thread count (and non-zero: the chains did real work).
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_GT(serial[i].optimizer_calls, 0u);
    EXPECT_GT(serial[i].evaluations, 0u);
    EXPECT_GE(serial[i].evaluations, serial[i].optimizer_calls);
    EXPECT_EQ(serial[i].optimizer_calls, parallel[i].optimizer_calls);
    EXPECT_EQ(serial[i].evaluations, parallel[i].evaluations);
    EXPECT_EQ(serial[i].expectation, parallel[i].expectation);
  }

#ifdef FASTQAOA_PROFILING_ENABLED
  // With profiling compiled in, the merged global counters must also be
  // identical: per-chain sinks merged at join points count the same
  // deterministic work regardless of scheduling. (Timings differ, of
  // course — only the counters are invariant.)
  EXPECT_FALSE(snap_serial.counters.empty());
  EXPECT_EQ(snap_serial.counters, snap_parallel.counters);
  EXPECT_GT(snap_serial.counters.at("core.evaluate.calls"), 0u);
  EXPECT_GT(snap_serial.counters.at("anglefind.chains"), 0u);
  EXPECT_EQ(snap_serial.counters.at("anglefind.rounds"), 2u);
#else
  // Compiled out: the macros must leave no residue in the global aggregate.
  EXPECT_TRUE(snap_serial.counters.empty());
  EXPECT_TRUE(snap_parallel.counters.empty());
#endif
}

TEST(ObsIntegration, RandomAndGridSchedulesCarryEvalCounts) {
  Rng rng(32);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = tabulate(StateSpace::full(6),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(6);
  FindAnglesOptions opt;
  opt.seed = 5;

  set_num_threads(1);
  const AngleSchedule random = find_angles_random(mixer, table, 2, 4, opt);
  EXPECT_GT(random.optimizer_calls, 0u);
  EXPECT_GE(random.evaluations, random.optimizer_calls);

  const AngleSchedule grid = find_angles_grid(mixer, table, 1, 6, opt);
  // 6^2 grid points plus the BFGS polish.
  EXPECT_GT(grid.optimizer_calls, 36u);
  EXPECT_GE(grid.evaluations, grid.optimizer_calls);
}

TEST(ObsIntegration, OnRoundCallbackFiresPerRound) {
  Rng rng(33);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = tabulate(StateSpace::full(6),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(6);
  FindAnglesOptions opt;
  opt.seed = 4;
  opt.hopping.hops = 2;
  std::vector<int> rounds;
  opt.on_round = [&rounds](const AngleSchedule& s, double seconds) {
    EXPECT_GE(seconds, 0.0);
    rounds.push_back(s.p);
  };

  set_num_threads(1);
  const std::vector<AngleSchedule> schedules =
      find_angles(mixer, table, 3, opt);
  ASSERT_EQ(schedules.size(), 3u);
  EXPECT_EQ(rounds, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace fastqaoa
