// Tests for the observability layer (src/obs/): per-thread counter sinks
// and their merge semantics, scoped trace spans and the Chrome trace-event
// JSON they serialize to, and the thread-count invariance of merged
// evaluation counts coming out of the instrumented angle-finding loops.
//
// The obs classes compile in both FASTQAOA_PROFILING configurations; only
// the macro-driven assertions (global counters populated by instrumented
// hot paths) are gated on FASTQAOA_PROFILING_ENABLED.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "anglefind/strategies.hpp"
#include "common/threading.hpp"
#include "mixers/x_mixer.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "problems/cost_functions.hpp"

namespace fastqaoa {
namespace {

// --- minimal JSON syntax validator -----------------------------------------
// Recursive-descent checker for the JSON the obs layer emits. Accepts any
// syntactically valid document; no semantics, no number parsing beyond shape.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return i_ == s_.size();
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\n' ||
                              s_[i_] == '\r' || s_[i_] == '\t')) {
      ++i_;
    }
  }
  bool literal(const char* lit) {
    for (const char* c = lit; *c != '\0'; ++c, ++i_) {
      if (i_ >= s_.size() || s_[i_] != *c) return false;
    }
    return true;
  }
  bool string() {
    if (s_[i_] != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
      }
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = i_;
    if (i_ < s_.size() && (s_[i_] == '-' || s_[i_] == '+')) ++i_;
    bool digits = false;
    while (i_ < s_.size() &&
           ((s_[i_] >= '0' && s_[i_] <= '9') || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '-' ||
            s_[i_] == '+')) {
      if (s_[i_] >= '0' && s_[i_] <= '9') digits = true;
      ++i_;
    }
    return digits && i_ > start;
  }
  bool object() {
    ++i_;  // '{'
    skip_ws();
    if (i_ < s_.size() && s_[i_] == '}') {
      ++i_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (i_ >= s_.size() || s_[i_] != ':') return false;
      ++i_;
      if (!value()) return false;
      skip_ws();
      if (i_ >= s_.size()) return false;
      if (s_[i_] == '}') {
        ++i_;
        return true;
      }
      if (s_[i_] != ',') return false;
      ++i_;
    }
  }
  bool array() {
    ++i_;  // '['
    skip_ws();
    if (i_ < s_.size() && s_[i_] == ']') {
      ++i_;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (i_ >= s_.size()) return false;
      if (s_[i_] == ']') {
        ++i_;
        return true;
      }
      if (s_[i_] != ',') return false;
      ++i_;
    }
  }
  bool value() {
    skip_ws();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

// --- counter / timer sinks --------------------------------------------------

TEST(Metrics, InterningIsStableAndDistinct) {
  const obs::MetricId a1 = obs::counter_id("obs_test.alpha");
  const obs::MetricId a2 = obs::counter_id("obs_test.alpha");
  const obs::MetricId b = obs::counter_id("obs_test.beta");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  // Counter and timer namespaces are independent.
  const obs::MetricId t = obs::timer_id("obs_test.alpha");
  const obs::MetricId t2 = obs::timer_id("obs_test.alpha");
  EXPECT_EQ(t, t2);
}

TEST(Metrics, CountersMergeAcrossSixThreads) {
  const obs::MetricId count_id = obs::counter_id("obs_test.merge.count");
  const obs::MetricId time_id = obs::timer_id("obs_test.merge.time");

  constexpr int kThreads = 6;
  std::vector<obs::MetricsSink> sinks(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Thread t adds (t+1)*100 counts and (t+1) timing samples of t+1 ms.
      for (int i = 0; i < (t + 1) * 100; ++i) {
        sinks[static_cast<std::size_t>(t)].add_count(count_id);
      }
      for (int i = 0; i <= t; ++i) {
        sinks[static_cast<std::size_t>(t)].add_timing(time_id,
                                                      1e-3 * (t + 1));
      }
    });
  }
  for (auto& w : workers) w.join();

  obs::MetricsSink total;
  for (const auto& sink : sinks) total.merge(sink);
  const obs::MetricsSnapshot snap = total.snapshot();

  // 100 + 200 + ... + 600 = 2100 counts; 1 + 2 + ... + 6 = 21 samples.
  ASSERT_EQ(snap.counters.count("obs_test.merge.count"), 1u);
  EXPECT_EQ(snap.counters.at("obs_test.merge.count"), 2100u);
  ASSERT_EQ(snap.timings.count("obs_test.merge.time"), 1u);
  const obs::TimingStat& stat = snap.timings.at("obs_test.merge.time");
  EXPECT_EQ(stat.count, 21u);
  EXPECT_NEAR(stat.min, 1e-3, 1e-12);
  EXPECT_NEAR(stat.max, 6e-3, 1e-12);
  // total = sum over t of (t+1) samples of (t+1) ms = 1+4+9+...+36 ms.
  EXPECT_NEAR(stat.total, 91e-3, 1e-9);
}

TEST(Metrics, SnapshotMergeAddsAndJsonIsValid) {
  const obs::MetricId id = obs::counter_id("obs_test.snapshot.count");
  const obs::MetricId tid = obs::timer_id("obs_test.snapshot.time");

  obs::MetricsSink a;
  a.add_count(id, 3);
  a.add_timing(tid, 0.5);
  obs::MetricsSink b;
  b.add_count(id, 4);
  b.add_timing(tid, 1.5);

  obs::MetricsSnapshot sa = a.snapshot();
  const obs::MetricsSnapshot sb = b.snapshot();
  sa.merge(sb);
  EXPECT_EQ(sa.counters.at("obs_test.snapshot.count"), 7u);
  EXPECT_EQ(sa.timings.at("obs_test.snapshot.time").count, 2u);
  EXPECT_NEAR(sa.timings.at("obs_test.snapshot.time").total, 2.0, 1e-12);
  EXPECT_NEAR(sa.timings.at("obs_test.snapshot.time").min, 0.5, 1e-12);
  EXPECT_NEAR(sa.timings.at("obs_test.snapshot.time").max, 1.5, 1e-12);

  const std::string json = sa.to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"obs_test.snapshot.count\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.snapshot.time\""), std::string::npos);
  EXPECT_NE(json.find("\"total_s\""), std::string::npos);

  // An empty snapshot still serializes to a valid document.
  const obs::MetricsSnapshot empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(JsonValidator(empty.to_json()).valid()) << empty.to_json();
}

TEST(Metrics, SinkScopeBindsNestsAndHonorsRuntimeToggle) {
  EXPECT_EQ(obs::active_sink(), nullptr);
  obs::MetricsSink outer;
  obs::MetricsSink inner;
  {
    obs::SinkScope bind_outer(outer);
    EXPECT_EQ(obs::active_sink(), &outer);
    {
      obs::SinkScope bind_inner(inner);
      EXPECT_EQ(obs::active_sink(), &inner);
    }
    EXPECT_EQ(obs::active_sink(), &outer);
  }
  EXPECT_EQ(obs::active_sink(), nullptr);

  obs::set_metrics_enabled(false);
  {
    obs::SinkScope bind(outer);
    EXPECT_EQ(obs::active_sink(), nullptr);
  }
  obs::set_metrics_enabled(true);
  EXPECT_TRUE(obs::metrics_enabled());
}

TEST(Metrics, GlobalMergeAndReset) {
  obs::reset_global();
  const obs::MetricId id = obs::counter_id("obs_test.global.count");
  obs::MetricsSink sink;
  sink.add_count(id, 5);
  obs::merge_global(sink);
  obs::count_global(id, 2);
  EXPECT_EQ(obs::global_snapshot().counters.at("obs_test.global.count"), 7u);
  obs::reset_global();
  EXPECT_EQ(obs::global_snapshot().counters.count("obs_test.global.count"),
            0u);
}

// --- trace spans -------------------------------------------------------------

TEST(Trace, NestedSpansSerializeToValidChromeTraceJson) {
  obs::trace_begin();
  {
    obs::TraceSpan outer("obs_test_outer");
    {
      obs::TraceSpan inner("obs_test_inner");
    }
    {
      obs::TraceSpan inner2("obs_test_inner2");
    }
  }
  EXPECT_EQ(obs::trace_span_count(), 3u);
  const std::string json = obs::trace_end_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_FALSE(obs::tracing_enabled());
}

TEST(Trace, SpansFromMultipleThreadsAllLand) {
  obs::trace_begin();
  constexpr int kThreads = 6;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] { obs::TraceSpan span("obs_test_worker"); });
  }
  for (auto& w : workers) w.join();
  const std::string json = obs::trace_end_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  // All six spans appear, even though their threads have exited.
  std::size_t found = 0;
  for (std::size_t pos = json.find("obs_test_worker");
       pos != std::string::npos; pos = json.find("obs_test_worker", pos + 1)) {
    ++found;
  }
  EXPECT_EQ(found, 6u);
}

TEST(Trace, DisarmedSpansCostNothingAndRecordNothing) {
  ASSERT_FALSE(obs::tracing_enabled());
  {
    obs::TraceSpan span("obs_test_disarmed");
  }
  obs::trace_begin();
  const std::string json = obs::trace_end_json();
  EXPECT_EQ(json.find("obs_test_disarmed"), std::string::npos);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
}

// --- end-to-end: instrumented angle finding ---------------------------------

TEST(ObsIntegration, FindAnglesEvalCountsThreadCountInvariant) {
  Rng rng(31);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = tabulate(StateSpace::full(6),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(6);
  FindAnglesOptions opt;
  opt.seed = 13;
  opt.hopping.hops = 3;
  opt.parallel_starts = 8;

  set_num_threads(1);
  obs::reset_global();
  const std::vector<AngleSchedule> serial = find_angles(mixer, table, 2, opt);
  const obs::MetricsSnapshot snap_serial = obs::global_snapshot();

  set_num_threads(4);
  obs::reset_global();
  const std::vector<AngleSchedule> parallel =
      find_angles(mixer, table, 2, opt);
  const obs::MetricsSnapshot snap_parallel = obs::global_snapshot();
  set_num_threads(1);
  obs::reset_global();

  // The schedule-level totals are part of the public API and must be
  // identical at any thread count (and non-zero: the chains did real work).
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_GT(serial[i].optimizer_calls, 0u);
    EXPECT_GT(serial[i].evaluations, 0u);
    EXPECT_GE(serial[i].evaluations, serial[i].optimizer_calls);
    EXPECT_EQ(serial[i].optimizer_calls, parallel[i].optimizer_calls);
    EXPECT_EQ(serial[i].evaluations, parallel[i].evaluations);
    EXPECT_EQ(serial[i].expectation, parallel[i].expectation);
  }

#ifdef FASTQAOA_PROFILING_ENABLED
  // With profiling compiled in, the merged global counters must also be
  // identical: per-chain sinks merged at join points count the same
  // deterministic work regardless of scheduling. (Timings differ, of
  // course — only the counters are invariant.)
  EXPECT_FALSE(snap_serial.counters.empty());
  EXPECT_EQ(snap_serial.counters, snap_parallel.counters);
  EXPECT_GT(snap_serial.counters.at("core.evaluate.calls"), 0u);
  EXPECT_GT(snap_serial.counters.at("anglefind.chains"), 0u);
  EXPECT_EQ(snap_serial.counters.at("anglefind.rounds"), 2u);
#else
  // Compiled out: the macros must leave no residue in the global aggregate.
  EXPECT_TRUE(snap_serial.counters.empty());
  EXPECT_TRUE(snap_parallel.counters.empty());
#endif
}

TEST(ObsIntegration, RandomAndGridSchedulesCarryEvalCounts) {
  Rng rng(32);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = tabulate(StateSpace::full(6),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(6);
  FindAnglesOptions opt;
  opt.seed = 5;

  set_num_threads(1);
  const AngleSchedule random = find_angles_random(mixer, table, 2, 4, opt);
  EXPECT_GT(random.optimizer_calls, 0u);
  EXPECT_GE(random.evaluations, random.optimizer_calls);

  const AngleSchedule grid = find_angles_grid(mixer, table, 1, 6, opt);
  // 6^2 grid points plus the BFGS polish.
  EXPECT_GT(grid.optimizer_calls, 36u);
  EXPECT_GE(grid.evaluations, grid.optimizer_calls);
}

TEST(ObsIntegration, OnRoundCallbackFiresPerRound) {
  Rng rng(33);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = tabulate(StateSpace::full(6),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(6);
  FindAnglesOptions opt;
  opt.seed = 4;
  opt.hopping.hops = 2;
  std::vector<int> rounds;
  opt.on_round = [&rounds](const AngleSchedule& s, double seconds) {
    EXPECT_GE(seconds, 0.0);
    rounds.push_back(s.p);
  };

  set_num_threads(1);
  const std::vector<AngleSchedule> schedules =
      find_angles(mixer, table, 3, opt);
  ASSERT_EQ(schedules.size(), 3u);
  EXPECT_EQ(rounds, (std::vector<int>{1, 2, 3}));
}

// --- histograms --------------------------------------------------------------

TEST(Histogram, BucketIndexIsAPureFunctionOfTheValue) {
  using H = obs::HistogramStat;
  // Non-positive and NaN land in bucket 0 (the "too small to resolve" bin).
  EXPECT_EQ(H::bucket_index(0.0), 0u);
  EXPECT_EQ(H::bucket_index(-1.0), 0u);
  EXPECT_EQ(H::bucket_index(std::numeric_limits<double>::quiet_NaN()), 0u);
  // Bucket i covers [2^(i-21), 2^(i-20)): 1.0 = 2^0 has binary exponent 1
  // under frexp, so it is the first value of bucket 21.
  EXPECT_EQ(H::bucket_index(1.0), 21u);
  EXPECT_EQ(H::bucket_index(0.5), 20u);
  EXPECT_EQ(H::bucket_index(2.0), 22u);
  // Every positive finite value sits strictly below its bucket's upper
  // bound and at-or-above the previous bucket's.
  for (const double v : {1e-9, 3e-7, 1e-4, 0.02, 0.75, 1.5, 3.0, 1e6}) {
    const std::size_t i = H::bucket_index(v);
    EXPECT_LT(v, H::bucket_upper(i)) << v;
    if (i > 0) {
      EXPECT_GE(v, H::bucket_upper(i - 1)) << v;
    }
  }
  // Upper bounds are strictly increasing and end at +inf.
  for (std::size_t i = 1; i < H::kBuckets; ++i) {
    EXPECT_GT(H::bucket_upper(i), H::bucket_upper(i - 1));
  }
  EXPECT_TRUE(std::isinf(H::bucket_upper(H::kBuckets - 1)));
  // The unbounded tail: anything enormous clamps to the last bucket.
  EXPECT_EQ(H::bucket_index(1e300), H::kBuckets - 1);
}

/// The fixed workload used by the invariance test: dyadic values so the
/// double-precision sums are exact (and thus bit-identical regardless of
/// the order the partial sums are merged in).
double workload_value(int i) {
  return std::ldexp(static_cast<double>((i % 31) + 1), (i % 13) - 8);
}

TEST(Histogram, MergeIsBitIdenticalAcrossThreadCounts) {
  const obs::MetricId id = obs::histogram_id("obs_test.hist.invariance");
  constexpr int kSamples = 4096;

  // Single-threaded reference: one sink records everything in order.
  obs::MetricsSink reference;
  for (int i = 0; i < kSamples; ++i) {
    reference.add_histogram(id, workload_value(i));
  }
  const obs::MetricsSnapshot ref = reference.snapshot();

  // 8 threads, each with a private sink, striped workload, merged at join.
  constexpr int kThreads = 8;
  std::vector<obs::MetricsSink> sinks(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = t; i < kSamples; i += kThreads) {
        sinks[static_cast<std::size_t>(t)].add_histogram(id,
                                                         workload_value(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  obs::MetricsSink merged;
  for (const auto& sink : sinks) merged.merge(sink);
  const obs::MetricsSnapshot par = merged.snapshot();

  ASSERT_EQ(ref.histograms.count("obs_test.hist.invariance"), 1u);
  ASSERT_EQ(par.histograms.count("obs_test.hist.invariance"), 1u);
  const obs::HistogramStat& a = ref.histograms.at("obs_test.hist.invariance");
  const obs::HistogramStat& b = par.histograms.at("obs_test.hist.invariance");
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.count, static_cast<std::uint64_t>(kSamples));
  // Dyadic workload -> exact sums -> full bit identity, not just tolerance.
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  for (std::size_t i = 0; i < obs::HistogramStat::kBuckets; ++i) {
    EXPECT_EQ(a.buckets[i], b.buckets[i]) << "bucket " << i;
  }
}

TEST(Histogram, QuantilesTrackBucketBoundsAndJsonIsValid) {
  const obs::MetricId id = obs::histogram_id("obs_test.hist.quantiles");
  obs::MetricsSink sink;
  // 90 fast samples around 1ms, 10 slow around 1s: p50 must stay in the
  // fast band, p99 in the slow band.
  for (int i = 0; i < 90; ++i) sink.add_histogram(id, 1e-3);
  for (int i = 0; i < 10; ++i) sink.add_histogram(id, 1.0);
  const obs::MetricsSnapshot snap = sink.snapshot();
  const obs::HistogramStat& h = snap.histograms.at("obs_test.hist.quantiles");
  EXPECT_EQ(h.count, 100u);
  EXPECT_NEAR(h.sum, 0.09 + 10.0, 1e-9);
  EXPECT_LE(h.quantile(0.50), 4e-3);
  EXPECT_GE(h.quantile(0.99), 0.5);
  // Quantiles are clamped to the observed range.
  EXPECT_GE(h.quantile(0.0), 1e-3 - 1e-15);
  EXPECT_LE(h.quantile(1.0), 1.0 + 1e-15);
  // Empty histogram: quantile is 0, not garbage.
  EXPECT_EQ(obs::HistogramStat{}.quantile(0.5), 0.0);

  const std::string json = snap.to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"obs_test.hist.quantiles\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(Histogram, ScopedHistTimerAndGlobalRecord) {
  const obs::MetricId id = obs::histogram_id("obs_test.hist.scoped");
  obs::MetricsSink sink;
  {
    obs::SinkScope bind(sink);
    obs::ScopedHistTimer timer(id);
  }
  const obs::MetricsSnapshot snap = sink.snapshot();
  ASSERT_EQ(snap.histograms.count("obs_test.hist.scoped"), 1u);
  EXPECT_EQ(snap.histograms.at("obs_test.hist.scoped").count, 1u);

  obs::reset_global();
  obs::hist_global(id, 0.25);
  obs::hist_global(id, 0.75);
  EXPECT_EQ(obs::global_snapshot().histograms.at("obs_test.hist.scoped").count,
            2u);
  obs::reset_global();
}

// --- prometheus exposition ---------------------------------------------------

/// A snapshot exercising every series shape the renderer emits: counters,
/// timers, histograms, and the `name|key=value` embedded-label convention.
obs::MetricsSnapshot prometheus_fixture() {
  obs::MetricsSink sink;
  sink.add_count(obs::counter_id("obs_test.prom.requests"), 41);
  sink.add_timing(obs::timer_id("obs_test.prom.latency"), 0.125);
  sink.add_timing(obs::timer_id("obs_test.prom.latency"), 0.375);
  const obs::MetricId hist = obs::histogram_id("obs_test.prom.job_seconds");
  for (int i = 0; i < 16; ++i) sink.add_histogram(hist, 1e-3 * (i + 1));
  sink.add_histogram(hist, 2.0);
  sink.add_count(obs::counter_id("obs_test.prom.jobs|kind=evaluate"), 3);
  sink.add_count(obs::counter_id("obs_test.prom.jobs|kind=find_angles"), 2);
  sink.add_histogram(
      obs::histogram_id("obs_test.prom.wait|kind=evaluate"), 0.5);
  return sink.snapshot();
}

TEST(Prometheus, RenderedSnapshotPassesTheValidator) {
  const std::string text = obs::to_prometheus(prometheus_fixture());
  std::string error;
  EXPECT_TRUE(obs::validate_prometheus_text(text, &error)) << error << "\n"
                                                           << text;
  // Counter family, with the _total convention.
  EXPECT_NE(text.find("# TYPE fastqaoa_obs_test_prom_requests_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("fastqaoa_obs_test_prom_requests_total 41"),
            std::string::npos);
  // Timer -> summary with _sum/_count.
  EXPECT_NE(text.find("fastqaoa_obs_test_prom_latency_seconds_count 2"),
            std::string::npos);
  // Histogram -> cumulative buckets ending in +Inf.
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  // Embedded labels render as real Prometheus labels.
  EXPECT_NE(text.find("{kind=\"evaluate\"}"), std::string::npos);
  EXPECT_NE(text.find("{kind=\"find_angles\"}"), std::string::npos);
}

TEST(Prometheus, SnapshotLabelsAttachToEverySample) {
  obs::MetricsSink sink;
  sink.add_count(obs::counter_id("obs_test.prom.labeled"), 9);
  obs::MetricsSnapshot snap = sink.snapshot();
  snap.labels["kernel_backend"] = "scalar";
  const std::string text = obs::to_prometheus(snap);
  std::string error;
  EXPECT_TRUE(obs::validate_prometheus_text(text, &error)) << error << text;
  EXPECT_NE(text.find("fastqaoa_obs_test_prom_labeled_total"
                      "{kernel_backend=\"scalar\"} 9"),
            std::string::npos)
      << text;
}

TEST(Prometheus, HistogramBucketsAreCumulativeAndConsistent) {
  const std::string text = obs::to_prometheus(prometheus_fixture());
  // Walk the rendered lines of the job_seconds histogram by hand: `le`
  // values strictly increasing, cumulative counts non-decreasing, and the
  // final +Inf bucket equal to _count.
  const std::string bucket_prefix =
      "fastqaoa_obs_test_prom_job_seconds_bucket{le=\"";
  double prev_le = -1.0;
  std::uint64_t prev_cum = 0;
  std::uint64_t inf_value = 0;
  int buckets_seen = 0;
  std::size_t pos = 0;
  while ((pos = text.find(bucket_prefix, pos)) != std::string::npos) {
    const std::size_t le_start = pos + bucket_prefix.size();
    const std::size_t le_end = text.find('"', le_start);
    ASSERT_NE(le_end, std::string::npos);
    const std::string le_tok = text.substr(le_start, le_end - le_start);
    const std::size_t val_start = text.find(' ', le_end) + 1;
    const std::size_t val_end = text.find('\n', val_start);
    const std::uint64_t cum = std::strtoull(
        text.substr(val_start, val_end - val_start).c_str(), nullptr, 10);
    if (le_tok == "+Inf") {
      inf_value = cum;
    } else {
      const double le = std::strtod(le_tok.c_str(), nullptr);
      EXPECT_GT(le, prev_le);
      prev_le = le;
    }
    EXPECT_GE(cum, prev_cum);
    prev_cum = cum;
    ++buckets_seen;
    pos = val_end;
  }
  ASSERT_GT(buckets_seen, 1);
  // 16 samples in (0, 16ms] + one 2s outlier.
  EXPECT_EQ(inf_value, 17u);
  EXPECT_NE(text.find("fastqaoa_obs_test_prom_job_seconds_count 17"),
            std::string::npos)
      << text;
}

TEST(Prometheus, ValidatorRejectsMalformedExpositions) {
  std::string error;
  // Buckets that shrink are not cumulative.
  EXPECT_FALSE(obs::validate_prometheus_text(
      "# TYPE x histogram\n"
      "x_bucket{le=\"0.5\"} 5\n"
      "x_bucket{le=\"1\"} 3\n"
      "x_bucket{le=\"+Inf\"} 5\n"
      "x_sum 1\n"
      "x_count 5\n",
      &error))
      << error;
  // Missing the +Inf bucket.
  EXPECT_FALSE(obs::validate_prometheus_text(
      "# TYPE x histogram\n"
      "x_bucket{le=\"1\"} 3\n"
      "x_sum 1\n"
      "x_count 3\n",
      &error));
  // _count disagreeing with the +Inf bucket.
  EXPECT_FALSE(obs::validate_prometheus_text(
      "# TYPE x histogram\n"
      "x_bucket{le=\"+Inf\"} 3\n"
      "x_sum 1\n"
      "x_count 4\n",
      &error));
  // An empty exposition is trivially valid.
  EXPECT_TRUE(obs::validate_prometheus_text("", &error)) << error;
}

TEST(Prometheus, AppendHelpersEscapeLabelsAndSanitizeNames) {
  EXPECT_EQ(obs::sanitize_prometheus_name("core.evaluate.seconds"),
            "core_evaluate_seconds");
  EXPECT_EQ(obs::escape_prometheus_label_value("a\"b\\c\nd"),
            "a\\\"b\\\\c\\nd");
  std::string out;
  obs::append_prometheus_gauge(out, "fastqaoa_test_gauge", "help text", 2.5,
                               "kind=\"x\"");
  obs::append_prometheus_counter(out, "fastqaoa_test_ops_total", "ops", 7,
                                 "");
  std::string error;
  EXPECT_TRUE(obs::validate_prometheus_text(out, &error)) << error << out;
  EXPECT_NE(out.find("fastqaoa_test_gauge{kind=\"x\"} 2.5"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("fastqaoa_test_ops_total 7"), std::string::npos);
}

}  // namespace
}  // namespace fastqaoa
