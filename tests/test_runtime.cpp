// Tests for the fault-tolerant execution layer: budgets and cooperative
// cancellation, non-finite guardrails, atomic checkpoint writes with
// fingerprint validation, and crash-safe ensemble resume.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "anglefind/bfgs.hpp"
#include "anglefind/nelder_mead.hpp"
#include "anglefind/strategies.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/plan.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"
#include "runtime/budget.hpp"
#include "runtime/checkpoint.hpp"
#include "study/ensemble.hpp"

namespace fastqaoa {
namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("fastqaoa_runtime_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

dvec maxcut_table(const Graph& g) {
  return tabulate(StateSpace::full(g.num_vertices()),
                  [&g](state_t x) { return maxcut(g, x); });
}

FindAnglesOptions quick_options() {
  FindAnglesOptions opt;
  opt.hopping.hops = 4;
  opt.hopping.local.max_iterations = 60;
  opt.seed = 1234;
  return opt;
}

/// EXPECT_THROW with a substring check on the message.
template <typename Fn>
void expect_error_containing(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected fastqaoa::Error containing '" << needle << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

// --- budget / cancellation primitives ----------------------------------

TEST(Budget, UnconstrainedTrackerNeverTrips) {
  runtime::BudgetTracker tracker;
  EXPECT_FALSE(tracker.active());
  EXPECT_EQ(tracker.check(), runtime::StopReason::None);
  tracker.add_evaluations(1u << 20);
  EXPECT_EQ(tracker.check(), runtime::StopReason::None);
  EXPECT_EQ(tracker.evaluations(), 0u);  // inactive trackers don't count
}

TEST(Budget, MaxEvaluationsTrips) {
  runtime::RunBudget budget;
  budget.max_evaluations = 100;
  runtime::BudgetTracker tracker(budget);
  EXPECT_TRUE(tracker.active());
  tracker.add_evaluations(99);
  EXPECT_EQ(tracker.check(), runtime::StopReason::None);
  tracker.add_evaluations(1);
  EXPECT_EQ(tracker.check(), runtime::StopReason::MaxEvaluations);
}

TEST(Budget, DeadlineTrips) {
  runtime::RunBudget budget;
  budget.wall_seconds = 1e-4;
  runtime::BudgetTracker tracker(budget);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(tracker.check(), runtime::StopReason::Deadline);
}

TEST(Budget, CancellationOutranksOtherLimits) {
  runtime::CancelToken token;
  runtime::RunBudget budget;
  budget.max_evaluations = 1;
  budget.cancel = &token;
  runtime::BudgetTracker tracker(budget);
  tracker.add_evaluations(10);
  EXPECT_EQ(tracker.check(), runtime::StopReason::MaxEvaluations);
  token.request_stop();
  EXPECT_EQ(tracker.check(), runtime::StopReason::Cancelled);
  token.reset();
  EXPECT_EQ(tracker.check(), runtime::StopReason::MaxEvaluations);
}

TEST(Budget, StopReasonNames) {
  EXPECT_STREQ(runtime::to_string(runtime::StopReason::None), "none");
  EXPECT_STREQ(runtime::to_string(runtime::StopReason::Deadline), "deadline");
  EXPECT_STREQ(runtime::to_string(runtime::StopReason::MaxEvaluations),
               "max-evaluations");
  EXPECT_STREQ(runtime::to_string(runtime::StopReason::Cancelled),
               "cancelled");
  EXPECT_STREQ(runtime::to_string(runtime::StopReason::NonFinite),
               "non-finite");
}

// --- budgeted angle finding --------------------------------------------

TEST(BudgetedFindAngles, ExpiredDeadlineStillReturnsBestSoFar) {
  Rng rng(4);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(6);

  FindAnglesOptions opt = quick_options();
  opt.budget.wall_seconds = 1e-6;  // expired before the first iteration
  auto schedules = find_angles(mixer, table, 3, opt);
  ASSERT_EQ(schedules.size(), 1u);  // round 1 always produces an answer
  EXPECT_EQ(schedules[0].stop_reason, runtime::StopReason::Deadline);
  EXPECT_TRUE(schedules[0].stopped_early());
  EXPECT_TRUE(std::isfinite(schedules[0].expectation));
  ASSERT_EQ(schedules[0].betas.size(), 1u);
}

TEST(BudgetedFindAngles, MaxEvaluationsStopsWithinOneIteration) {
  Rng rng(4);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(6);

  FindAnglesOptions opt = quick_options();
  opt.budget.max_evaluations = 40;
  auto schedules = find_angles(mixer, table, 4, opt);
  ASSERT_FALSE(schedules.empty());
  EXPECT_LT(schedules.size(), 4u);
  EXPECT_EQ(schedules.back().stop_reason,
            runtime::StopReason::MaxEvaluations);
  // "Within one iteration": the budget counts optimizer callbacks, and one
  // BFGS iteration costs a handful of them (line search), so the overshoot
  // past the limit is small.
  std::size_t total = 0;
  for (const auto& s : schedules) total += s.optimizer_calls;
  EXPECT_LT(total, 40u + 40u);
  EXPECT_TRUE(std::isfinite(schedules.back().expectation));
}

TEST(BudgetedFindAngles, PreCancelledTokenReturnsImmediately) {
  Rng rng(4);
  Graph g = erdos_renyi(5, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(5);

  runtime::CancelToken token;
  token.request_stop();
  FindAnglesOptions opt = quick_options();
  opt.budget.cancel = &token;
  auto schedules = find_angles(mixer, table, 3, opt);
  ASSERT_EQ(schedules.size(), 1u);
  EXPECT_EQ(schedules[0].stop_reason, runtime::StopReason::Cancelled);
}

TEST(BudgetedFindAngles, GenerousBudgetChangesNothing) {
  Rng rng(4);
  Graph g = erdos_renyi(5, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(5);

  FindAnglesOptions plain = quick_options();
  auto reference = find_angles(mixer, table, 2, plain);

  FindAnglesOptions budgeted = quick_options();
  budgeted.budget.wall_seconds = 3600.0;
  budgeted.budget.max_evaluations = 100'000'000;
  auto limited = find_angles(mixer, table, 2, budgeted);

  ASSERT_EQ(limited.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(limited[i].betas, reference[i].betas);
    EXPECT_EQ(limited[i].gammas, reference[i].gammas);
    EXPECT_EQ(limited[i].stop_reason, runtime::StopReason::None);
  }
}

TEST(BudgetedFindAngles, BudgetStoppedResumeMatchesUninterruptedRun) {
  TempDir tmp;
  Rng rng(4);
  Graph g = erdos_renyi(5, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(5);

  FindAnglesOptions plain = quick_options();
  auto reference = find_angles(mixer, table, 3, plain);

  // Tiny evaluation budget: the run is cut short mid-search and the last
  // (flagged) round lands in the checkpoint for inspection.
  FindAnglesOptions budgeted = quick_options();
  budgeted.checkpoint_file = tmp.path("budget.txt");
  budgeted.budget.max_evaluations = 60;
  auto partial = find_angles(mixer, table, 3, budgeted);
  ASSERT_FALSE(partial.empty());
  EXPECT_TRUE(partial.back().stopped_early());

  // Resume without a budget: flagged rounds are re-run from their own RNG
  // streams, so the final result is bit-identical to never having been
  // interrupted at all.
  FindAnglesOptions resume = quick_options();
  resume.checkpoint_file = tmp.path("budget.txt");
  auto resumed = find_angles(mixer, table, 3, resume);
  ASSERT_EQ(resumed.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(resumed[i].betas, reference[i].betas);
    EXPECT_EQ(resumed[i].gammas, reference[i].gammas);
    EXPECT_DOUBLE_EQ(resumed[i].expectation, reference[i].expectation);
  }
}

TEST(BudgetedFindAngles, RandomStrategyHonoursBudget) {
  Rng rng(4);
  Graph g = erdos_renyi(5, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(5);

  FindAnglesOptions opt = quick_options();
  opt.budget.max_evaluations = 30;
  AngleSchedule s = find_angles_random(mixer, table, 2, 16, opt);
  EXPECT_EQ(s.stop_reason, runtime::StopReason::MaxEvaluations);
  EXPECT_TRUE(std::isfinite(s.expectation));  // restart 0 always runs
}

TEST(BudgetedFindAngles, GridStrategyHonoursBudget) {
  Rng rng(4);
  Graph g = erdos_renyi(5, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(5);

  runtime::CancelToken token;
  token.request_stop();
  FindAnglesOptions opt = quick_options();
  opt.budget.cancel = &token;
  AngleSchedule s = find_angles_grid(mixer, table, 1, 8, opt);
  EXPECT_EQ(s.stop_reason, runtime::StopReason::Cancelled);
}

// --- non-finite guardrails ---------------------------------------------

TEST(NonFinite, PlanRejectsPoisonedObjectiveTable) {
  XMixer mixer = XMixer::transverse_field(3);
  dvec table(8, 1.0);
  table[5] = std::numeric_limits<double>::quiet_NaN();
  expect_error_containing([&] { QaoaPlan(mixer, table, 1); }, "index 5");
  table[5] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(QaoaPlan(mixer, table, 1), Error);
}

TEST(NonFinite, PlanRejectsPoisonedPhaseTable) {
  XMixer mixer = XMixer::transverse_field(3);
  dvec table(8, 1.0);
  QaoaPlanOptions options;
  options.phase_values = dvec(8, 0.5);
  (*options.phase_values)[2] = std::numeric_limits<double>::quiet_NaN();
  expect_error_containing(
      [&] { QaoaPlan(mixer, table, 1, std::move(options)); },
      "phase-separator");
}

TEST(NonFinite, BfgsBacksAwayFromNonFiniteRegion) {
  // f = (x-1)^2 for x >= 0, NaN beyond the wall at x < 0: the line search
  // may probe the poisoned region, but the returned iterate stays finite.
  GradObjective fn = [](std::span<const double> x, std::span<double> grad) {
    if (x[0] < 0.0) {
      if (!grad.empty()) grad[0] = std::numeric_limits<double>::quiet_NaN();
      return std::numeric_limits<double>::quiet_NaN();
    }
    if (!grad.empty()) grad[0] = 2.0 * (x[0] - 1.0);
    return (x[0] - 1.0) * (x[0] - 1.0);
  };
  OptResult res = bfgs_minimize(fn, {0.5}, {});
  EXPECT_TRUE(std::isfinite(res.f));
  EXPECT_NEAR(res.x[0], 1.0, 1e-5);
}

TEST(NonFinite, BfgsReportsFullyPoisonedObjective) {
  GradObjective fn = [](std::span<const double> x, std::span<double> grad) {
    (void)x;
    if (!grad.empty()) grad[0] = std::numeric_limits<double>::quiet_NaN();
    return std::numeric_limits<double>::quiet_NaN();
  };
  OptResult res = bfgs_minimize(fn, {0.5}, {});
  EXPECT_EQ(res.stop_reason, runtime::StopReason::NonFinite);
  EXPECT_FALSE(res.converged);
}

TEST(NonFinite, NelderMeadContractsAwayFromNaN) {
  PlainObjective fn = [](std::span<const double> x) {
    if (x[0] < -0.25) return std::numeric_limits<double>::quiet_NaN();
    return (x[0] - 1.0) * (x[0] - 1.0);
  };
  // Start right next to the NaN wall so early reflections probe it: the
  // clamp-to-worst guard must contract the simplex back to finite ground.
  OptResult res = nelder_mead_minimize(fn, {-0.2}, {});
  EXPECT_TRUE(std::isfinite(res.f));
  EXPECT_NEAR(res.x[0], 1.0, 1e-3);
}

// --- checkpoint persistence --------------------------------------------

CheckpointFingerprint test_fingerprint() {
  return CheckpointFingerprint{32, Direction::Maximize, 1234,
                               "x-mixer(tf n=5)"};
}

std::vector<AngleSchedule> sample_schedules() {
  std::vector<AngleSchedule> schedules(2);
  schedules[0] = {1, {0.1}, {0.2}, 3.5, 10, 20};
  schedules[1] = {2, {0.1, 0.3}, {0.2, 0.4}, 4.25, 30, 60};
  return schedules;
}

TEST(Checkpoint, FingerprintRoundTrip) {
  TempDir tmp;
  const std::string path = tmp.path("fp.txt");
  save_checkpoint(path, sample_schedules(), test_fingerprint());
  auto loaded = load_checkpoint(path, test_fingerprint());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].optimizer_calls, 10u);
  EXPECT_EQ(loaded[1].evaluations, 60u);
  EXPECT_EQ(loaded[1].betas, sample_schedules()[1].betas);
}

TEST(Checkpoint, EachFingerprintFieldIsValidated) {
  TempDir tmp;
  const std::string path = tmp.path("fp.txt");
  save_checkpoint(path, sample_schedules(), test_fingerprint());

  CheckpointFingerprint wrong = test_fingerprint();
  wrong.dim = 64;
  expect_error_containing([&] { load_checkpoint(path, wrong); }, "dimension");

  wrong = test_fingerprint();
  wrong.direction = Direction::Minimize;
  expect_error_containing([&] { load_checkpoint(path, wrong); }, "direction");

  wrong = test_fingerprint();
  wrong.seed = 999;
  expect_error_containing([&] { load_checkpoint(path, wrong); }, "seed");

  wrong = test_fingerprint();
  wrong.mixer = "grover";
  expect_error_containing([&] { load_checkpoint(path, wrong); }, "mixer");

  // And without an expected fingerprint the same file loads fine (the
  // inspection-tool escape hatch).
  EXPECT_EQ(load_checkpoint(path).size(), 2u);
}

TEST(Checkpoint, UnfingerprintedFileRefusedWhenValidationRequested) {
  TempDir tmp;
  const std::string path = tmp.path("nofp.txt");
  save_checkpoint(path, sample_schedules());  // "fingerprint none"
  expect_error_containing([&] { load_checkpoint(path, test_fingerprint()); },
                          "predates fingerprinting");
}

TEST(Checkpoint, LegacyV1FilesStillLoadWithoutValidation) {
  TempDir tmp;
  const std::string path = tmp.path("v1.txt");
  std::ofstream(path) << "fastqaoa-angles v1\n1\n1 2.5\n0.1\n0.2\n";
  auto loaded = load_checkpoint(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0].expectation, 2.5);
  EXPECT_EQ(loaded[0].optimizer_calls, 0u);  // v1 predates cost columns
  // ... but cannot satisfy a fingerprint check.
  expect_error_containing([&] { load_checkpoint(path, test_fingerprint()); },
                          "predates fingerprinting");
}

TEST(Checkpoint, CorruptionMatrixProducesDistinctErrors) {
  TempDir tmp;

  const std::string wrong_header = tmp.path("header.txt");
  std::ofstream(wrong_header) << "not a checkpoint at all\n";
  expect_error_containing([&] { load_checkpoint(wrong_header); },
                          "unrecognized header");

  const std::string bad_count = tmp.path("count.txt");
  std::ofstream(bad_count) << "fastqaoa-angles v2\nfingerprint none\nxyz\n";
  expect_error_containing([&] { load_checkpoint(bad_count); },
                          "corrupt schedule count");

  const std::string truncated = tmp.path("truncated.txt");
  std::ofstream(truncated)
      << "fastqaoa-angles v2\nfingerprint none\n2\n1 3.5 10 20 0\n0.1\n0.2\n";
  expect_error_containing([&] { load_checkpoint(truncated); },
                          "corrupt schedule entry");

  const std::string garbage_angles = tmp.path("angles.txt");
  std::ofstream(garbage_angles)
      << "fastqaoa-angles v2\nfingerprint none\n1\n1 3.5 10 20 0\nxyz\n0.2\n";
  expect_error_containing([&] { load_checkpoint(garbage_angles); },
                          "corrupt angles");

  const std::string bad_stop = tmp.path("stop.txt");
  std::ofstream(bad_stop)
      << "fastqaoa-angles v2\nfingerprint none\n1\n1 3.5 10 20 99\n0.1\n0.2\n";
  expect_error_containing([&] { load_checkpoint(bad_stop); },
                          "corrupt stop reason");

  expect_error_containing([&] { load_checkpoint(tmp.path("missing.txt")); },
                          "cannot open");
}

TEST(Checkpoint, FindAnglesRefusesForeignCheckpoint) {
  TempDir tmp;
  Rng rng(4);
  Graph g = erdos_renyi(5, 0.5, rng);
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(5);

  FindAnglesOptions opt = quick_options();
  opt.checkpoint_file = tmp.path("resume.txt");
  find_angles(mixer, table, 1, opt);

  // Same file, different seed: resuming would silently splice two distinct
  // runs together — must be rejected, loudly, naming the culprit.
  FindAnglesOptions other = quick_options();
  other.checkpoint_file = opt.checkpoint_file;
  other.seed = 4321;
  expect_error_containing(
      [&] { find_angles(mixer, table, 2, other); }, "seed");
}

TEST(Checkpoint, AtomicWriteCleansUpOnOpenFailure) {
  TempDir tmp;
  const std::string path = tmp.path("no_such_dir/angles.txt");
  expect_error_containing(
      [&] { runtime::atomic_write_file(path, "data", "test_writer"); },
      "test_writer");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(Checkpoint, AtomicWriteCleansUpOnRenameFailure) {
  TempDir tmp;
  // The destination is an existing *directory*, so the final rename must
  // fail — the error carries the OS message and no .tmp file is left.
  const std::string path = tmp.path("target_dir");
  std::filesystem::create_directories(path);
  try {
    runtime::atomic_write_file(path, "data", "save_checkpoint");
    FAIL() << "expected rename failure";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("save_checkpoint"),
              std::string::npos);
  }
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(Checkpoint, ReadFileIfExists) {
  TempDir tmp;
  EXPECT_FALSE(runtime::read_file_if_exists(tmp.path("nope")).has_value());
  runtime::atomic_write_file(tmp.path("yes"), "payload", "test");
  auto contents = runtime::read_file_if_exists(tmp.path("yes"));
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(*contents, "payload");
}

// --- crash-safe ensembles ----------------------------------------------

EnsembleConfig small_ensemble(int threads) {
  EnsembleConfig config;
  config.instances = 4;
  config.max_rounds = 2;
  config.seed = 777;
  config.threads = threads;
  config.angle_options.hopping.hops = 3;
  config.angle_options.hopping.local.max_iterations = 40;
  return config;
}

InstanceFactory maxcut_factory(int n) {
  return [n](Rng& rng) {
    Graph g = erdos_renyi(n, 0.5, rng);
    return tabulate(StateSpace::full(n),
                    [&g](state_t x) { return maxcut(g, x); });
  };
}

TEST(EnsembleCheckpoint, SecondRunLoadsEverythingBitIdentically) {
  TempDir tmp;
  XMixer mixer = XMixer::transverse_field(5);
  EnsembleConfig config = small_ensemble(1);
  config.checkpoint_dir = tmp.path("study");

  EnsembleResult first = run_ensemble(mixer, maxcut_factory(5), config);
  EXPECT_EQ(first.completed_instances, config.instances);
  EXPECT_FALSE(first.stopped_early());
  ASSERT_TRUE(std::filesystem::exists(
      std::filesystem::path(config.checkpoint_dir) / "manifest.txt"));

  // Every instance is on disk, so the re-run computes nothing new and the
  // results are bit-identical.
  EnsembleResult second = run_ensemble(mixer, maxcut_factory(5), config);
  EXPECT_EQ(second.completed_instances, config.instances);
  for (int i = 0; i < config.instances; ++i) {
    ASSERT_EQ(second.ratios[i].size(), first.ratios[i].size());
    for (std::size_t p = 0; p < first.ratios[i].size(); ++p) {
      EXPECT_DOUBLE_EQ(second.ratios[i][p], first.ratios[i][p]);
    }
    for (std::size_t p = 0; p < first.schedules[i].size(); ++p) {
      EXPECT_EQ(second.schedules[i][p].betas, first.schedules[i][p].betas);
      EXPECT_EQ(second.schedules[i][p].gammas, first.schedules[i][p].gammas);
    }
  }
}

TEST(EnsembleCheckpoint, PartialDirectoryResumesOnlyMissingInstances) {
  TempDir tmp;
  XMixer mixer = XMixer::transverse_field(5);

  EnsembleConfig plain = small_ensemble(1);
  EnsembleResult reference = run_ensemble(mixer, maxcut_factory(5), plain);

  EnsembleConfig config = small_ensemble(1);
  config.checkpoint_dir = tmp.path("study");
  run_ensemble(mixer, maxcut_factory(5), config);
  // Simulate a study that died before instances 1 and 3 finished.
  std::filesystem::remove(
      std::filesystem::path(config.checkpoint_dir) / "instance_1.txt");
  std::filesystem::remove(
      std::filesystem::path(config.checkpoint_dir) / "instance_3.txt");

  // Resume at a different thread count: the recomputed instances replay
  // their serially forked streams, so everything matches the uninterrupted
  // no-checkpoint reference bit for bit.
  config.threads = 4;
  EnsembleResult resumed = run_ensemble(mixer, maxcut_factory(5), config);
  EXPECT_EQ(resumed.completed_instances, config.instances);
  for (int i = 0; i < config.instances; ++i) {
    for (std::size_t p = 0; p < reference.schedules[i].size(); ++p) {
      EXPECT_EQ(resumed.schedules[i][p].betas,
                reference.schedules[i][p].betas);
      EXPECT_EQ(resumed.schedules[i][p].gammas,
                reference.schedules[i][p].gammas);
    }
  }
}

TEST(EnsembleCheckpoint, ManifestMismatchIsRejectedPerField) {
  TempDir tmp;
  XMixer mixer = XMixer::transverse_field(5);
  EnsembleConfig config = small_ensemble(1);
  config.checkpoint_dir = tmp.path("study");
  run_ensemble(mixer, maxcut_factory(5), config);

  EnsembleConfig other = config;
  other.seed = 42;
  expect_error_containing(
      [&] { run_ensemble(mixer, maxcut_factory(5), other); }, "seed");

  other = config;
  other.instances = 7;
  expect_error_containing(
      [&] { run_ensemble(mixer, maxcut_factory(5), other); },
      "instance count");

  other = config;
  other.max_rounds = 5;
  expect_error_containing(
      [&] { run_ensemble(mixer, maxcut_factory(5), other); }, "max_rounds");
}

TEST(EnsembleCheckpoint, GarbageManifestFailsLoudly) {
  TempDir tmp;
  XMixer mixer = XMixer::transverse_field(5);
  EnsembleConfig config = small_ensemble(1);
  config.checkpoint_dir = tmp.path("study");
  std::filesystem::create_directories(config.checkpoint_dir);
  std::ofstream(std::filesystem::path(config.checkpoint_dir) /
                "manifest.txt")
      << "someone else's file\n";
  expect_error_containing(
      [&] { run_ensemble(mixer, maxcut_factory(5), config); },
      "unrecognized manifest header");
}

TEST(EnsembleBudget, TrippedBudgetReturnsPartialStudyWithoutThrowing) {
  XMixer mixer = XMixer::transverse_field(5);
  EnsembleConfig config = small_ensemble(1);
  config.budget.max_evaluations = 50;  // roughly one instance's first steps
  EnsembleResult result = run_ensemble(mixer, maxcut_factory(5), config);
  EXPECT_EQ(result.stop_reason, runtime::StopReason::MaxEvaluations);
  EXPECT_LT(result.completed_instances, config.instances);
  // Aggregation is guarded: rounds nobody reached report count == 0.
  ASSERT_EQ(result.per_round.size(), 2u);
  EXPECT_LE(result.per_round[1].count,
            static_cast<std::size_t>(config.instances));
}

TEST(EnsembleBudget, PreCancelledStudyCompletesNothing) {
  XMixer mixer = XMixer::transverse_field(5);
  runtime::CancelToken token;
  token.request_stop();
  EnsembleConfig config = small_ensemble(1);
  config.budget.cancel = &token;
  EnsembleResult result = run_ensemble(mixer, maxcut_factory(5), config);
  EXPECT_EQ(result.stop_reason, runtime::StopReason::Cancelled);
  EXPECT_EQ(result.completed_instances, 0);
}

}  // namespace
}  // namespace fastqaoa
