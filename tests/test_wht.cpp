// Unit tests for the fast Walsh–Hadamard transform — the diagonal frame of
// every X-type mixer.

#include <gtest/gtest.h>

#include <cmath>

#include "bits/bitops.hpp"
#include "common/rng.hpp"
#include "linalg/vector_ops.hpp"
#include "linalg/wht.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

using linalg::is_power_of_two;
using linalg::log2_exact;
using linalg::wht_orthonormal;
using linalg::wht_unnormalized;

TEST(Wht, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(24));
  EXPECT_EQ(log2_exact(1), 0);
  EXPECT_EQ(log2_exact(1024), 10);
  EXPECT_THROW(log2_exact(3), Error);
}

TEST(Wht, MatchesDirectDefinition) {
  // v'_x = sum_y (-1)^{popcount(x & y)} v_y for n = 4.
  Rng rng(1);
  const int n = 4;
  const index_t size = index_t{1} << n;
  cvec v = testutil::random_state(size, rng);
  cvec direct(size, cplx{0.0, 0.0});
  for (index_t x = 0; x < size; ++x) {
    for (index_t y = 0; y < size; ++y) {
      direct[x] += z_sign(x, y) * v[y];
    }
  }
  wht_unnormalized(v);
  EXPECT_LT(testutil::max_diff(v, direct), 1e-12);
}

TEST(Wht, UnnormalizedTwiceIsScaling) {
  Rng rng(2);
  for (int n = 1; n <= 8; ++n) {
    const index_t size = index_t{1} << n;
    cvec v = testutil::random_state(size, rng);
    cvec orig = v;
    wht_unnormalized(v);
    wht_unnormalized(v);
    const double scale = static_cast<double>(size);
    double max_err = 0.0;
    for (index_t i = 0; i < size; ++i) {
      max_err = std::max(max_err, std::abs(v[i] - scale * orig[i]));
    }
    EXPECT_LT(max_err, 1e-10) << "n=" << n;
  }
}

TEST(Wht, OrthonormalIsSelfInverse) {
  Rng rng(3);
  cvec v = testutil::random_state(256, rng);
  cvec orig = v;
  wht_orthonormal(v);
  wht_orthonormal(v);
  EXPECT_LT(testutil::max_diff(v, orig), 1e-12);
}

TEST(Wht, OrthonormalPreservesNorm) {
  Rng rng(4);
  cvec v = testutil::random_state(128, rng);
  wht_orthonormal(v);
  EXPECT_NEAR(linalg::norm(v), 1.0, 1e-12);
}

TEST(Wht, UniformStateTransformsToDelta) {
  // H^{⊗n} |+...+> = |0...0>.
  const int n = 6;
  cvec v = testutil::uniform_state(index_t{1} << n);
  wht_orthonormal(v);
  EXPECT_NEAR(std::abs(v[0] - cplx{1.0, 0.0}), 0.0, 1e-12);
  for (index_t i = 1; i < v.size(); ++i) {
    EXPECT_NEAR(std::abs(v[i]), 0.0, 1e-12);
  }
}

TEST(Wht, DeltaTransformsToSignPattern) {
  // H^{⊗n}|y> has amplitudes (-1)^{x.y} / sqrt(2^n).
  const int n = 5;
  const index_t size = index_t{1} << n;
  const state_t y = 0b10110;
  cvec v(size, cplx{0.0, 0.0});
  v[y] = cplx{1.0, 0.0};
  wht_orthonormal(v);
  const double amp = 1.0 / std::sqrt(static_cast<double>(size));
  for (index_t x = 0; x < size; ++x) {
    EXPECT_NEAR(std::abs(v[x] - cplx{z_sign(x, y) * amp, 0.0}), 0.0, 1e-12);
  }
}

TEST(Wht, NonPowerOfTwoThrows) {
  cvec v(12);
  EXPECT_THROW(wht_unnormalized(v), Error);
}

TEST(Wht, SizeOneIsIdentity) {
  cvec v = {cplx{0.3, -0.2}};
  wht_unnormalized(v);
  EXPECT_EQ(v[0], (cplx{0.3, -0.2}));
}

}  // namespace
}  // namespace fastqaoa
