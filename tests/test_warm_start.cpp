// Tests for warm-start initial states and the library-level number
// partitioning cost, plus the grid-search angle strategy.

#include <gtest/gtest.h>

#include <cmath>

#include "anglefind/strategies.hpp"
#include "common/rng.hpp"
#include "core/qaoa.hpp"
#include "linalg/vector_ops.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"
#include "problems/warm_start.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

TEST(WarmStart, HalfEpsilonIsUniform) {
  cvec psi = warm_start_product_state(5, 0b10110, 0.5);
  EXPECT_NEAR(linalg::norm(psi), 1.0, 1e-12);
  const double amp = 1.0 / std::sqrt(32.0);
  for (const auto& a : psi) {
    EXPECT_NEAR(std::abs(a - cplx{amp, 0.0}), 0.0, 1e-12);
  }
}

TEST(WarmStart, ZeroEpsilonIsDelta) {
  const state_t solution = 0b01101;
  cvec psi = warm_start_product_state(5, solution, 0.0);
  EXPECT_NEAR(std::abs(psi[solution] - cplx{1.0, 0.0}), 0.0, 1e-12);
  for (index_t x = 0; x < psi.size(); ++x) {
    if (x != solution) {
      EXPECT_NEAR(std::abs(psi[x]), 0.0, 1e-12);
    }
  }
}

TEST(WarmStart, ProductAmplitudesFactorize) {
  const double eps = 0.2;
  const state_t solution = 0b011;
  cvec psi = warm_start_product_state(3, solution, eps);
  EXPECT_NEAR(linalg::norm(psi), 1.0, 1e-12);
  for (state_t x = 0; x < 8; ++x) {
    const int d = popcount(x ^ solution);
    const double expected =
        std::pow(std::sqrt(eps), d) * std::pow(std::sqrt(1.0 - eps), 3 - d);
    EXPECT_NEAR(psi[x].real(), expected, 1e-12) << "x=" << x;
  }
}

TEST(WarmStart, BiasedStateOnDickeSubspaceStaysFeasible) {
  StateSpace space = StateSpace::dicke(6, 3);
  const state_t target = 0b000111;
  cvec psi = warm_start_biased_state(space, target, 0.6);
  EXPECT_EQ(psi.size(), space.dim());
  EXPECT_NEAR(linalg::norm(psi), 1.0, 1e-12);
  EXPECT_NEAR(std::norm(psi[space.index_of(target)]), 0.6, 1e-12);
  // Remaining mass spread evenly.
  const double rest = 0.4 / static_cast<double>(space.dim() - 1);
  for (index_t i = 0; i < space.dim(); ++i) {
    if (i != space.index_of(target)) {
      EXPECT_NEAR(std::norm(psi[i]), rest, 1e-12);
    }
  }
}

TEST(WarmStart, BiasedStateValidation) {
  StateSpace space = StateSpace::dicke(6, 3);
  EXPECT_THROW(warm_start_biased_state(space, 0b001111, 0.5), Error);
  EXPECT_THROW(warm_start_biased_state(space, 0b000111, 1.5), Error);
  EXPECT_THROW(warm_start_product_state(3, 0b1111, 0.2), Error);
  EXPECT_THROW(warm_start_product_state(3, 0b111, -0.1), Error);
}

TEST(WarmStart, FeedsQaoaEngine) {
  Rng rng(1);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = tabulate(StateSpace::full(6),
                        [&g](state_t x) { return maxcut(g, x); });
  const ObjectiveStats stats = objective_stats(table);
  XMixer mixer = XMixer::transverse_field(6);
  Qaoa engine(mixer, table, 1);
  engine.set_initial_state(warm_start_product_state(
      6, static_cast<state_t>(stats.argmax), 0.1));
  std::vector<double> zeros(2, 0.0);
  // With 90%-per-qubit bias toward the best cut and no evolution, <C>
  // should clearly beat the uniform mean.
  EXPECT_GT(engine.run_packed(zeros), stats.mean);
}

TEST(NumberPartition, KnownValues) {
  const std::vector<double> w = {3.0, 1.0, 4.0};
  EXPECT_DOUBLE_EQ(number_partition(w, 0b000), 8.0);
  EXPECT_DOUBLE_EQ(number_partition(w, 0b001), 2.0);  // {3} vs {1,4}
  EXPECT_DOUBLE_EQ(number_partition(w, 0b110), 2.0);  // complement
  EXPECT_DOUBLE_EQ(number_partition(w, 0b111), 8.0);
}

TEST(NumberPartition, ComplementSymmetry) {
  Rng rng(2);
  std::vector<double> w(8);
  for (auto& x : w) x = std::floor(rng.uniform(1.0, 20.0));
  for (state_t x = 0; x < 256; ++x) {
    EXPECT_DOUBLE_EQ(number_partition(w, x), number_partition(w, x ^ 0xFF));
  }
}

TEST(GridSearch, FindsSingleEdgeOptimumAtP1) {
  Graph g(2, {{0, 1}});
  dvec table = tabulate(StateSpace::full(2),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(2);
  AngleSchedule s = find_angles_grid(mixer, table, 1, 16);
  EXPECT_NEAR(s.expectation, 1.0, 1e-6);
}

TEST(GridSearch, UnpolishedIsGridBest) {
  Graph g(2, {{0, 1}});
  dvec table = tabulate(StateSpace::full(2),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(2);
  // Coarse grid without polish: best grid value of
  // (1 + sin(4 beta) sin(gamma)) / 2 over the 8-point axes.
  AngleSchedule s =
      find_angles_grid(mixer, table, 1, 8, FindAnglesOptions{}, false);
  double best = 0.0;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      const double beta = i * 2.0 * kPi / 8;
      const double gamma = j * 2.0 * kPi / 8;
      best = std::max(best,
                      0.5 * (1.0 + std::sin(4.0 * beta) * std::sin(gamma)));
    }
  }
  EXPECT_NEAR(s.expectation, best, 1e-10);
}

TEST(GridSearch, RejectsExponentialGrids) {
  dvec table(4, 0.0);
  table[1] = 1.0;
  XMixer mixer = XMixer::transverse_field(2);
  EXPECT_THROW(find_angles_grid(mixer, table, 10, 16), Error);
  EXPECT_THROW(find_angles_grid(mixer, table, 1, 1), Error);
}

}  // namespace
}  // namespace fastqaoa
