// Unit tests for dense matrices and the GEMV kernels used by
// eigendecomposition mixers.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/dense.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

using linalg::adjoint;
using linalg::cmat;
using linalg::dmat;
using linalg::frobenius_diff;
using linalg::gemv;
using linalg::gemv_adjoint;
using linalg::gemv_transpose;
using linalg::hermitize;
using linalg::matmul;
using linalg::random_cmatrix;
using linalg::random_matrix;
using linalg::symmetrize;
using linalg::transpose;

TEST(DenseMatrix, ConstructionAndIndexing) {
  dmat m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(DenseMatrix, InitializerList) {
  dmat m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(DenseMatrix, IdentityActsTrivially) {
  Rng rng(1);
  const dmat eye = dmat::identity(8);
  cvec x = testutil::random_state(8, rng);
  cvec y(8);
  gemv(eye, x, y);
  EXPECT_LT(testutil::max_diff(x, y), 1e-15);
}

TEST(Gemv, RealMatrixMatchesNaive) {
  Rng rng(2);
  const dmat a = random_matrix(7, 5, rng);
  cvec x = testutil::random_state(5, rng);
  cvec y(7);
  gemv(a, x, y);
  for (index_t r = 0; r < 7; ++r) {
    cplx acc{0.0, 0.0};
    for (index_t c = 0; c < 5; ++c) acc += a(r, c) * x[c];
    EXPECT_NEAR(std::abs(y[r] - acc), 0.0, 1e-13);
  }
}

TEST(Gemv, TransposeMatchesExplicitTranspose) {
  Rng rng(3);
  const dmat a = random_matrix(9, 6, rng);
  const dmat at = transpose(a);
  cvec x = testutil::random_state(9, rng);
  cvec y1(6), y2(6);
  gemv_transpose(a, x, y1);
  gemv(at, x, y2);
  EXPECT_LT(testutil::max_diff(y1, y2), 1e-13);
}

TEST(Gemv, ComplexMatchesNaive) {
  Rng rng(4);
  const cmat a = random_cmatrix(6, 6, rng);
  cvec x = testutil::random_state(6, rng);
  cvec y(6);
  gemv(a, x, y);
  cvec expected = testutil::matvec(a, x);
  EXPECT_LT(testutil::max_diff(y, expected), 1e-13);
}

TEST(Gemv, AdjointMatchesExplicitAdjoint) {
  Rng rng(5);
  const cmat a = random_cmatrix(8, 8, rng);
  const cmat ah = adjoint(a);
  cvec x = testutil::random_state(8, rng);
  cvec y1(8);
  gemv_adjoint(a, x, y1);
  cvec y2 = testutil::matvec(ah, x);
  EXPECT_LT(testutil::max_diff(y1, y2), 1e-13);
}

TEST(Gemv, LargeBlockedTransposeCrossesBlockBoundary) {
  // The transpose kernel processes 256-column blocks; exercise > 1 block.
  Rng rng(6);
  const dmat a = random_matrix(300, 600, rng);
  const dmat at = transpose(a);
  cvec x = testutil::random_state(300, rng);
  cvec y1(600), y2(600);
  gemv_transpose(a, x, y1);
  gemv(at, x, y2);
  EXPECT_LT(testutil::max_diff(y1, y2), 1e-11);
}

TEST(Gemv, DimensionMismatchThrows) {
  const dmat a(3, 4);
  cvec x(3), y(3);
  EXPECT_THROW(gemv(a, x, y), Error);
  cvec x2(4), y2(4);
  EXPECT_THROW(gemv(a, x2, y2), Error);
}

TEST(Matmul, AssociatesWithIdentity) {
  Rng rng(7);
  const dmat a = random_matrix(5, 5, rng);
  EXPECT_LT(frobenius_diff(matmul(a, dmat::identity(5)), a), 1e-13);
  EXPECT_LT(frobenius_diff(matmul(dmat::identity(5), a), a), 1e-13);
}

TEST(Matmul, KnownProduct) {
  dmat a = {{1.0, 2.0}, {3.0, 4.0}};
  dmat b = {{5.0, 6.0}, {7.0, 8.0}};
  dmat c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matmul, ComplexAdjointProductIsHermitian) {
  Rng rng(8);
  const cmat a = random_cmatrix(6, 6, rng);
  const cmat aha = matmul(adjoint(a), a);
  EXPECT_LT(frobenius_diff(aha, hermitize(aha)), 1e-12);
}

TEST(Symmetrize, ProducesSymmetricMatrix) {
  Rng rng(9);
  const dmat s = symmetrize(random_matrix(10, 10, rng));
  EXPECT_LT(frobenius_diff(s, transpose(s)), 1e-14);
}

TEST(Hermitize, ProducesHermitianMatrix) {
  Rng rng(10);
  const cmat h = hermitize(random_cmatrix(10, 10, rng));
  EXPECT_LT(frobenius_diff(h, adjoint(h)), 1e-14);
  for (index_t i = 0; i < 10; ++i) EXPECT_NEAR(h(i, i).imag(), 0.0, 1e-15);
}

TEST(DenseMatrix, RaggedInitializerThrows) {
  auto make_ragged = [] { return dmat{{1.0, 2.0}, {3.0}}; };
  EXPECT_THROW(make_ragged(), Error);
}

}  // namespace
}  // namespace fastqaoa
