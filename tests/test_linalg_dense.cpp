// Unit tests for dense matrices and the GEMV kernels used by
// eigendecomposition mixers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "linalg/dense.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/svd.hpp"
#include "test_util.hpp"

namespace fastqaoa {
namespace {

using linalg::adjoint;
using linalg::cmat;
using linalg::dmat;
using linalg::frobenius_diff;
using linalg::gemv;
using linalg::gemv_adjoint;
using linalg::gemv_transpose;
using linalg::hermitize;
using linalg::matmul;
using linalg::random_cmatrix;
using linalg::random_matrix;
using linalg::symmetrize;
using linalg::transpose;

TEST(DenseMatrix, ConstructionAndIndexing) {
  dmat m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(DenseMatrix, InitializerList) {
  dmat m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(DenseMatrix, IdentityActsTrivially) {
  Rng rng(1);
  const dmat eye = dmat::identity(8);
  cvec x = testutil::random_state(8, rng);
  cvec y(8);
  gemv(eye, x, y);
  EXPECT_LT(testutil::max_diff(x, y), 1e-15);
}

TEST(Gemv, RealMatrixMatchesNaive) {
  Rng rng(2);
  const dmat a = random_matrix(7, 5, rng);
  cvec x = testutil::random_state(5, rng);
  cvec y(7);
  gemv(a, x, y);
  for (index_t r = 0; r < 7; ++r) {
    cplx acc{0.0, 0.0};
    for (index_t c = 0; c < 5; ++c) acc += a(r, c) * x[c];
    EXPECT_NEAR(std::abs(y[r] - acc), 0.0, 1e-13);
  }
}

TEST(Gemv, TransposeMatchesExplicitTranspose) {
  Rng rng(3);
  const dmat a = random_matrix(9, 6, rng);
  const dmat at = transpose(a);
  cvec x = testutil::random_state(9, rng);
  cvec y1(6), y2(6);
  gemv_transpose(a, x, y1);
  gemv(at, x, y2);
  EXPECT_LT(testutil::max_diff(y1, y2), 1e-13);
}

TEST(Gemv, ComplexMatchesNaive) {
  Rng rng(4);
  const cmat a = random_cmatrix(6, 6, rng);
  cvec x = testutil::random_state(6, rng);
  cvec y(6);
  gemv(a, x, y);
  cvec expected = testutil::matvec(a, x);
  EXPECT_LT(testutil::max_diff(y, expected), 1e-13);
}

TEST(Gemv, AdjointMatchesExplicitAdjoint) {
  Rng rng(5);
  const cmat a = random_cmatrix(8, 8, rng);
  const cmat ah = adjoint(a);
  cvec x = testutil::random_state(8, rng);
  cvec y1(8);
  gemv_adjoint(a, x, y1);
  cvec y2 = testutil::matvec(ah, x);
  EXPECT_LT(testutil::max_diff(y1, y2), 1e-13);
}

TEST(Gemv, LargeBlockedTransposeCrossesBlockBoundary) {
  // The transpose kernel processes 256-column blocks; exercise > 1 block.
  Rng rng(6);
  const dmat a = random_matrix(300, 600, rng);
  const dmat at = transpose(a);
  cvec x = testutil::random_state(300, rng);
  cvec y1(600), y2(600);
  gemv_transpose(a, x, y1);
  gemv(at, x, y2);
  EXPECT_LT(testutil::max_diff(y1, y2), 1e-11);
}

TEST(Gemv, DimensionMismatchThrows) {
  const dmat a(3, 4);
  cvec x(3), y(3);
  EXPECT_THROW(gemv(a, x, y), Error);
  cvec x2(4), y2(4);
  EXPECT_THROW(gemv(a, x2, y2), Error);
}

TEST(Matmul, AssociatesWithIdentity) {
  Rng rng(7);
  const dmat a = random_matrix(5, 5, rng);
  EXPECT_LT(frobenius_diff(matmul(a, dmat::identity(5)), a), 1e-13);
  EXPECT_LT(frobenius_diff(matmul(dmat::identity(5), a), a), 1e-13);
}

TEST(Matmul, KnownProduct) {
  dmat a = {{1.0, 2.0}, {3.0, 4.0}};
  dmat b = {{5.0, 6.0}, {7.0, 8.0}};
  dmat c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matmul, ComplexAdjointProductIsHermitian) {
  Rng rng(8);
  const cmat a = random_cmatrix(6, 6, rng);
  const cmat aha = matmul(adjoint(a), a);
  EXPECT_LT(frobenius_diff(aha, hermitize(aha)), 1e-12);
}

TEST(Symmetrize, ProducesSymmetricMatrix) {
  Rng rng(9);
  const dmat s = symmetrize(random_matrix(10, 10, rng));
  EXPECT_LT(frobenius_diff(s, transpose(s)), 1e-14);
}

TEST(Hermitize, ProducesHermitianMatrix) {
  Rng rng(10);
  const cmat h = hermitize(random_cmatrix(10, 10, rng));
  EXPECT_LT(frobenius_diff(h, adjoint(h)), 1e-14);
  for (index_t i = 0; i < 10; ++i) EXPECT_NEAR(h(i, i).imag(), 0.0, 1e-15);
}

TEST(DenseMatrix, RaggedInitializerThrows) {
  auto make_ragged = [] { return dmat{{1.0, 2.0}, {3.0}}; };
  EXPECT_THROW(make_ragged(), Error);
}

// ---------------------------------------------------------------------------
// SVD golden tests: reconstruction, orthonormality, agreement with eigh on
// the Gram matrix, rank-deficient and ill-conditioned inputs, determinism.
// ---------------------------------------------------------------------------

namespace {

double orthonormality_error(const dmat& u) {
  return frobenius_diff(matmul(transpose(u), u), dmat::identity(u.cols()));
}

double orthonormality_error(const cmat& u) {
  const cmat g = matmul(adjoint(u), u);
  cmat eye(u.cols(), u.cols());
  for (index_t i = 0; i < u.cols(); ++i) eye(i, i) = cplx{1.0, 0.0};
  return frobenius_diff(g, eye);
}

}  // namespace

TEST(Svd, RandomTallReconstructs) {
  Rng rng(11);
  const dmat a = random_matrix(9, 5, rng);
  const linalg::SvdResult r = linalg::svd(a);
  ASSERT_EQ(r.singular_values.size(), 5u);
  EXPECT_EQ(r.u.rows(), 9u);
  EXPECT_EQ(r.u.cols(), 5u);
  EXPECT_EQ(r.v.rows(), 5u);
  EXPECT_EQ(r.v.cols(), 5u);
  EXPECT_LT(linalg::svd_residual(a, r), 1e-12);
  EXPECT_LT(orthonormality_error(r.u), 1e-12);
  EXPECT_LT(orthonormality_error(r.v), 1e-12);
  EXPECT_TRUE(std::is_sorted(r.singular_values.begin(),
                             r.singular_values.end(),
                             [](double x, double y) { return x > y; }));
}

TEST(Svd, RandomWideReconstructs) {
  Rng rng(12);
  const dmat a = random_matrix(4, 8, rng);
  const linalg::SvdResult r = linalg::svd(a);
  ASSERT_EQ(r.singular_values.size(), 4u);
  EXPECT_EQ(r.u.rows(), 4u);
  EXPECT_EQ(r.u.cols(), 4u);
  EXPECT_EQ(r.v.rows(), 8u);
  EXPECT_EQ(r.v.cols(), 4u);
  EXPECT_LT(linalg::svd_residual(a, r), 1e-12);
  EXPECT_LT(orthonormality_error(r.u), 1e-12);
  EXPECT_LT(orthonormality_error(r.v), 1e-12);
}

TEST(Svd, ComplexReconstructsBothOrientations) {
  Rng rng(13);
  const cmat tall = random_cmatrix(7, 4, rng);
  const linalg::CSvdResult rt = linalg::svd(tall);
  EXPECT_LT(linalg::svd_residual(tall, rt), 1e-12);
  EXPECT_LT(orthonormality_error(rt.u), 1e-12);
  EXPECT_LT(orthonormality_error(rt.v), 1e-12);
  const cmat wide = random_cmatrix(3, 6, rng);
  const linalg::CSvdResult rw = linalg::svd(wide);
  EXPECT_LT(linalg::svd_residual(wide, rw), 1e-12);
  EXPECT_LT(orthonormality_error(rw.u), 1e-12);
  EXPECT_LT(orthonormality_error(rw.v), 1e-12);
}

TEST(Svd, SingularValuesMatchEighOfGram) {
  // Golden cross-check: sigma_j^2 are the eigenvalues of A^T A, which the
  // independent Householder/QL path computes. eigh sorts ascending.
  Rng rng(14);
  const dmat a = random_matrix(8, 6, rng);
  const linalg::SvdResult r = linalg::svd(a);
  const dvec evals = linalg::eigvalsh(matmul(transpose(a), a));
  ASSERT_EQ(evals.size(), 6u);
  for (index_t j = 0; j < 6; ++j) {
    const double expected = std::sqrt(std::max(0.0, evals[5 - j]));
    EXPECT_NEAR(r.singular_values[j], expected, 1e-10);
  }
}

TEST(Svd, RankDeficientDuplicateColumns) {
  Rng rng(15);
  dmat a = random_matrix(7, 4, rng);
  for (index_t i = 0; i < 7; ++i) {
    a(i, 2) = a(i, 0);              // exact duplicate -> rank <= 3
    a(i, 3) = 2.0 * a(i, 1);        // exact multiple  -> rank <= 2
  }
  const linalg::SvdResult r = linalg::svd(a);
  EXPECT_LT(r.singular_values[2], 1e-12 * r.singular_values[0]);
  EXPECT_LT(r.singular_values[3], 1e-12 * r.singular_values[0]);
  EXPECT_LT(linalg::svd_residual(a, r), 1e-12);
}

TEST(Svd, IllConditionedRecoversSpectrum) {
  // Build A = U S V^T from known orthonormal frames (eigenvectors of random
  // symmetric matrices) and a geometric spectrum spanning 10 decades.
  Rng rng(16);
  const index_t n = 6;
  const dmat u = linalg::eigh(symmetrize(random_matrix(n, n, rng))).vectors;
  const dmat v = linalg::eigh(symmetrize(random_matrix(n, n, rng))).vectors;
  dvec sigma(n);
  for (index_t j = 0; j < n; ++j) sigma[j] = std::pow(10.0, -2.0 * double(j));
  dmat us(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) us(i, j) = u(i, j) * sigma[j];
  const dmat a = matmul(us, transpose(v));
  const linalg::SvdResult r = linalg::svd(a);
  // One-sided Jacobi has high *relative* accuracy on graded matrices, but
  // forming A = U S V^T in floating point already perturbs A by ~1e-16
  // absolute, i.e. up to ~1e-6 relative to the smallest value — that, not
  // the solver, bounds the achievable tolerance here.
  for (index_t j = 0; j < n; ++j) {
    EXPECT_NEAR(r.singular_values[j] / sigma[j], 1.0, 1e-6)
        << "sigma index " << j;
  }
  EXPECT_LT(linalg::svd_residual(a, r), 1e-12);
}

TEST(Svd, DeterministicAcrossCalls) {
  Rng rng(17);
  const dmat a = random_matrix(10, 7, rng);
  const linalg::SvdResult r1 = linalg::svd(a);
  const linalg::SvdResult r2 = linalg::svd(a);
  EXPECT_TRUE(r1.u == r2.u);
  EXPECT_TRUE(r1.v == r2.v);
  EXPECT_EQ(r1.singular_values, r2.singular_values);
}

TEST(Svd, RejectsEmptyAndNonFinite) {
  EXPECT_THROW(linalg::svd(dmat()), Error);
  dmat bad = {{1.0, 2.0}, {3.0, std::nan("")}};
  EXPECT_THROW(linalg::svd(bad), Error);
}

}  // namespace
}  // namespace fastqaoa
