// End-to-end integration tests: miniature versions of the paper's workflows
// run through the full public API — precompute, simulate, find angles,
// serialize — with quantitative success criteria.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "anglefind/strategies.hpp"
#include "common/rng.hpp"
#include "core/grover_fast.hpp"
#include "core/qaoa.hpp"
#include "io/serialize.hpp"
#include "mixers/eigen_mixer.hpp"
#include "mixers/grover_mixer.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"

namespace fastqaoa {
namespace {

FindAnglesOptions quick_options(std::uint64_t seed = 99) {
  FindAnglesOptions opt;
  opt.hopping.hops = 5;
  opt.hopping.local.max_iterations = 80;
  opt.seed = seed;
  return opt;
}

TEST(Integration, MaxCutTransverseFieldApproachesOptimum) {
  // Fig. 2 panel 1 in miniature: MaxCut + transverse field, ratio grows
  // with p and exceeds 0.9 by p=4 on a small instance.
  Rng rng(1);
  Graph g = erdos_renyi(8, 0.5, rng);
  dvec table = tabulate(StateSpace::full(8),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(8);
  auto schedules = find_angles(mixer, table, 4, quick_options());
  const double r1 = approximation_ratio(schedules[0].expectation, table);
  const double r4 = approximation_ratio(schedules[3].expectation, table);
  EXPECT_GT(r1, 0.6);
  EXPECT_GE(r4, r1 - 1e-6);
  EXPECT_GT(r4, 0.9);
}

TEST(Integration, DensestKSubgraphWithCliqueMixer) {
  // Fig. 2 panel 3 in miniature: constrained problem on the Dicke
  // subspace, Clique mixer, feasibility preserved throughout.
  Rng rng(2);
  Graph g = erdos_renyi(8, 0.5, rng);
  StateSpace space = StateSpace::dicke(8, 4);
  dvec table =
      tabulate(space, [&g](state_t x) { return densest_subgraph(g, x); });
  EigenMixer mixer = EigenMixer::clique(space);
  auto schedules = find_angles(mixer, table, 3, quick_options());
  const double r3 = approximation_ratio(schedules[2].expectation, table);
  EXPECT_GT(r3, 0.8);
}

TEST(Integration, KVertexCoverWithRingMixer) {
  Rng rng(3);
  Graph g = erdos_renyi(8, 0.5, rng);
  StateSpace space = StateSpace::dicke(8, 4);
  dvec table = tabulate(space, [&g](state_t x) { return vertex_cover(g, x); });
  EigenMixer mixer = EigenMixer::ring(space);
  // Seed picked for the per-round RNG streams introduced with crash-safe
  // resume (round p's draws are a pure function of (seed, p)).
  auto schedules = find_angles(mixer, table, 3, quick_options(13));
  EXPECT_GT(approximation_ratio(schedules[2].expectation, table), 0.8);
}

TEST(Integration, ThreeSatWithGroverMixer) {
  // Fig. 2 panel 2 in miniature: 3-SAT at clause density 6 with the Grover
  // mixer on the full space.
  Rng rng(4);
  CnfFormula f = random_ksat_density(8, 3, 6.0, rng);
  dvec table = tabulate(StateSpace::full(8),
                        [&f](state_t x) { return ksat(f, x); });
  GroverMixer mixer(256);
  auto schedules = find_angles(mixer, table, 3, quick_options());
  // Grover mixing amplifies slowly at small p (unstructured search); the
  // success criterion is clear improvement over the uniform state, plus
  // monotone progress in p.
  const double uniform_ratio =
      approximation_ratio(objective_stats(table).mean, table);
  const double r3 = approximation_ratio(schedules[2].expectation, table);
  EXPECT_GT(r3, uniform_ratio + 0.05);
  EXPECT_GE(r3, approximation_ratio(schedules[0].expectation, table) - 1e-6);
}

TEST(Integration, ThresholdQaoaReproducesGroverSearchExactly) {
  // §2.4: Grover mixer + threshold phase separator at (pi, pi) equals
  // Grover's algorithm. Cross-check compressed and full paths at n=10 with
  // a single marked state.
  const int n = 10;
  const index_t dim = index_t{1} << n;
  const state_t marked = 0b1011001011 & (dim - 1);
  dvec table(dim, 0.0);
  table[marked] = 1.0;

  GroverMixer mixer(dim);
  Qaoa full(mixer, table, 5);
  std::vector<double> betas(5, kPi);
  std::vector<double> gammas(5, kPi);
  full.run(betas, gammas);
  const double theta = std::asin(std::sqrt(1.0 / static_cast<double>(dim)));
  const double expected = std::pow(std::sin(11.0 * theta), 2);
  EXPECT_NEAR(full.ground_state_probability(), expected, 1e-10);

  GroverQaoa fast = grover_search_qaoa(static_cast<double>(dim), 1.0);
  std::vector<double> packed(10, kPi);
  fast.run_packed(packed);
  EXPECT_NEAR(fast.ground_state_probability(), expected, 1e-10);
}

TEST(Integration, ListingTwoWorkflowSaveAndReuseCliqueMixer) {
  // Listing 2: build the Clique mixer once, save it, reload it in a second
  // "session", and verify the reloaded mixer drives an identical QAOA.
  const auto path = std::filesystem::temp_directory_path() /
                    "fastqaoa_integration_clique.mix";
  std::filesystem::remove(path);

  Rng rng(5);
  Graph g = erdos_renyi(6, 0.5, rng);
  StateSpace space = StateSpace::dicke(6, 3);
  dvec table =
      tabulate(space, [&g](state_t x) { return densest_subgraph(g, x); });

  EigenMixer first = io::load_or_build_mixer(
      path.string(), [&space] { return EigenMixer::clique(space); });
  Qaoa engine1(first, table, 2);
  std::vector<double> angles = {0.3, 0.7, 0.5, 0.9};
  const double e1 = engine1.run_packed(angles);

  EigenMixer second = io::load_or_build_mixer(path.string(), [&space]() {
    ADD_FAILURE() << "cache hit expected — builder must not run";
    return EigenMixer::clique(space);
  });
  Qaoa engine2(second, table, 2);
  EXPECT_DOUBLE_EQ(engine2.run_packed(angles), e1);
  std::filesystem::remove(path);
}

TEST(Integration, MultiMixerScheduleBeatsNothing) {
  // Alternating transverse-field and Grover mixers across rounds runs end
  // to end and yields a valid expectation.
  Rng rng(6);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = tabulate(StateSpace::full(6),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer tf = XMixer::transverse_field(6);
  GroverMixer grover(64);
  Qaoa engine({&tf, &grover, &tf}, table);
  std::vector<double> betas = {0.3, 0.8, 0.2};
  std::vector<double> gammas = {0.5, 0.4, 0.9};
  const double e = engine.run(betas, gammas);
  const ObjectiveStats stats = objective_stats(table);
  EXPECT_GE(e, stats.min_value - 1e-9);
  EXPECT_LE(e, stats.max_value + 1e-9);
}

TEST(Integration, WarmStartChangesOutcome) {
  // Warm starts [11]: a biased initial state produces a different (here:
  // better at zero angles) expectation than the uniform default.
  Rng rng(7);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = tabulate(StateSpace::full(6),
                        [&g](state_t x) { return maxcut(g, x); });
  const ObjectiveStats stats = objective_stats(table);
  XMixer mixer = XMixer::transverse_field(6);

  Qaoa engine(mixer, table, 1);
  std::vector<double> angles = {0.2, 0.2};
  const double e_uniform = engine.run_packed(angles);

  // Concentrate the warm start on the best state.
  cvec warm(64, cplx{0.0, 0.0});
  warm[stats.argmax] = cplx{1.0, 0.0};
  engine.set_initial_state(warm);
  const double e_warm = engine.run_packed(angles);
  EXPECT_GT(e_warm, e_uniform);
}

TEST(Integration, MedianAnglesTransferAcrossInstances) {
  // The [22] workflow: learn angles on several instances, take medians,
  // apply to a held-out instance — should beat random angles on average.
  Rng rng(8);
  const int n = 6;
  XMixer mixer = XMixer::transverse_field(n);

  std::vector<std::vector<double>> angle_sets;
  for (int inst = 0; inst < 4; ++inst) {
    Graph g = erdos_renyi(n, 0.5, rng);
    dvec table = tabulate(StateSpace::full(n),
                          [&g](state_t x) { return maxcut(g, x); });
    auto schedules =
        find_angles(mixer, table, 1, quick_options(55 + inst));
    angle_sets.push_back(schedules[0].packed());
  }
  std::vector<double> med = median_angles(angle_sets);

  Graph held_out = erdos_renyi(n, 0.5, rng);
  dvec table = tabulate(StateSpace::full(n), [&held_out](state_t x) {
    return maxcut(held_out, x);
  });
  const double e_median = evaluate_angles(mixer, table, med);
  // Random-angle baseline, averaged.
  double e_random = 0.0;
  const int draws = 20;
  for (int d = 0; d < draws; ++d) {
    std::vector<double> rnd = {rng.uniform(0.0, 2.0 * kPi),
                               rng.uniform(0.0, 2.0 * kPi)};
    e_random += evaluate_angles(mixer, table, rnd);
  }
  e_random /= draws;
  EXPECT_GT(e_median, e_random);
}

TEST(Integration, GradientProvidersReachSameMinimum) {
  // Fig. 5's premise: AD and FD gradients drive BFGS to the same local
  // minimum from the same start.
  Rng rng(9);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = tabulate(StateSpace::full(6),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(6);

  std::vector<double> x0 = {0.4, 0.6, 0.9, 1.2};
  Qaoa engine_ad(mixer, table, 2);
  QaoaObjective obj_ad(engine_ad, Direction::Maximize,
                       GradientProvider::Adjoint);
  OptResult res_ad = bfgs_minimize(obj_ad.as_grad_objective(), x0);

  Qaoa engine_fd(mixer, table, 2);
  QaoaObjective obj_fd(engine_fd, Direction::Maximize,
                       GradientProvider::CentralDiff);
  OptResult res_fd = bfgs_minimize(obj_fd.as_grad_objective(), x0);

  EXPECT_NEAR(res_ad.f, res_fd.f, 1e-6);
  // FD pays ~4p+1 engine evaluations per gradient; adjoint pays ~2.
  EXPECT_GT(obj_fd.evaluations(), 3 * obj_ad.evaluations());
}

}  // namespace
}  // namespace fastqaoa
