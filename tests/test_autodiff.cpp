// Unit tests for gradients: the adjoint reverse-mode path must match
// central finite differences across every mixer family, round count and
// phase-separator configuration.

#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/adjoint.hpp"
#include "autodiff/finite_diff.hpp"
#include "common/rng.hpp"
#include "core/qaoa.hpp"
#include "mixers/eigen_mixer.hpp"
#include "mixers/grover_mixer.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"

namespace fastqaoa {
namespace {

/// Compare adjoint and central-FD gradients at random angles.
void expect_gradients_match(Qaoa& engine, Rng& rng, double tol = 1e-5) {
  const std::size_t nb = static_cast<std::size_t>(engine.num_betas());
  const std::size_t ng = static_cast<std::size_t>(engine.num_gammas());
  std::vector<double> betas(nb);
  std::vector<double> gammas(ng);
  for (auto& a : betas) a = rng.uniform(0.0, 2.0 * kPi);
  for (auto& a : gammas) a = rng.uniform(0.0, 2.0 * kPi);

  std::vector<double> gb_adj(nb), gg_adj(ng), gb_fd(nb), gg_fd(ng);
  AdjointDifferentiator adjoint(engine);
  const double value_adj =
      adjoint.value_and_gradient(betas, gammas, gb_adj, gg_adj);
  FiniteDiffDifferentiator fd(engine, FdScheme::Central, 1e-6);
  const double value_fd = fd.value_and_gradient(betas, gammas, gb_fd, gg_fd);

  EXPECT_NEAR(value_adj, value_fd, 1e-10);
  for (std::size_t i = 0; i < nb; ++i) {
    EXPECT_NEAR(gb_adj[i], gb_fd[i], tol) << "beta[" << i << "]";
  }
  for (std::size_t i = 0; i < ng; ++i) {
    EXPECT_NEAR(gg_adj[i], gg_fd[i], tol) << "gamma[" << i << "]";
  }
}

TEST(Adjoint, MatchesFdTransverseFieldMaxCut) {
  Rng rng(1);
  Graph g = erdos_renyi(6, 0.5, rng);
  dvec table = tabulate(StateSpace::full(6),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(6);
  for (const int p : {1, 2, 4}) {
    Qaoa engine(mixer, table, p);
    expect_gradients_match(engine, rng);
  }
}

TEST(Adjoint, MatchesFdGroverMixer) {
  Rng rng(2);
  Graph g = erdos_renyi(5, 0.6, rng);
  dvec table = tabulate(StateSpace::full(5),
                        [&g](state_t x) { return maxcut(g, x); });
  GroverMixer mixer(32);
  Qaoa engine(mixer, table, 3);
  expect_gradients_match(engine, rng);
}

TEST(Adjoint, MatchesFdCliqueMixerConstrained) {
  Rng rng(3);
  Graph g = erdos_renyi(6, 0.5, rng);
  StateSpace space = StateSpace::dicke(6, 3);
  dvec table =
      tabulate(space, [&g](state_t x) { return densest_subgraph(g, x); });
  EigenMixer mixer = EigenMixer::clique(space);
  Qaoa engine(mixer, table, 2);
  expect_gradients_match(engine, rng);
}

TEST(Adjoint, MatchesFdRingMixer) {
  Rng rng(4);
  Graph g = erdos_renyi(6, 0.5, rng);
  StateSpace space = StateSpace::dicke(6, 2);
  dvec table = tabulate(space, [&g](state_t x) { return vertex_cover(g, x); });
  EigenMixer mixer = EigenMixer::ring(space);
  Qaoa engine(mixer, table, 3);
  expect_gradients_match(engine, rng);
}

TEST(Adjoint, MatchesFdWithThresholdPhase) {
  Rng rng(5);
  Graph g = erdos_renyi(5, 0.5, rng);
  dvec table = tabulate(StateSpace::full(5),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(5);
  Qaoa engine(mixer, table, 2);
  engine.set_phase_values(threshold_indicator(table, 2.5));
  expect_gradients_match(engine, rng);
}

TEST(Adjoint, MatchesFdMultiAngleLayers) {
  Rng rng(6);
  Graph g = erdos_renyi(4, 0.6, rng);
  dvec table = tabulate(StateSpace::full(4),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer x1(4, {{0b0011, 1.0}});
  XMixer x2(4, {{0b1100, 1.0}});
  std::vector<MixerLayer> layers = {MixerLayer{{&x1, &x2}},
                                    MixerLayer{{&x2, &x1}}};
  Qaoa engine(layers, table);
  expect_gradients_match(engine, rng);
}

TEST(Adjoint, MatchesFdWithWarmStart) {
  Rng rng(7);
  Graph g = erdos_renyi(5, 0.5, rng);
  dvec table = tabulate(StateSpace::full(5),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(5);
  Qaoa engine(mixer, table, 2);
  cvec warm(32);
  double ns = 0.0;
  for (auto& a : warm) {
    a = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    ns += std::norm(a);
  }
  for (auto& a : warm) a /= std::sqrt(ns);
  engine.set_initial_state(warm);
  expect_gradients_match(engine, rng);
}

TEST(Adjoint, GradientVanishesAtCriticalPoint) {
  // Single edge: the optimum (pi/8, pi/2) is a stationary point.
  Graph g(2, {{0, 1}});
  dvec table = tabulate(StateSpace::full(2),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(2);
  Qaoa engine(mixer, table, 1);
  AdjointDifferentiator adjoint(engine);
  std::vector<double> betas = {kPi / 8.0};
  std::vector<double> gammas = {kPi / 2.0};
  std::vector<double> gb(1), gg(1);
  const double e = adjoint.value_and_gradient(betas, gammas, gb, gg);
  EXPECT_NEAR(e, 1.0, 1e-12);
  EXPECT_NEAR(gb[0], 0.0, 1e-10);
  EXPECT_NEAR(gg[0], 0.0, 1e-10);
}

TEST(Adjoint, PackedLayoutAgreesWithSplit) {
  Rng rng(8);
  Graph g = erdos_renyi(4, 0.5, rng);
  dvec table = tabulate(StateSpace::full(4),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(4);
  Qaoa engine(mixer, table, 2);
  AdjointDifferentiator adjoint(engine);

  std::vector<double> packed = {0.2, 0.5, 0.9, 1.4};
  std::vector<double> grad_packed(4);
  const double v1 = adjoint.value_and_gradient_packed(packed, grad_packed);

  std::vector<double> gb(2), gg(2);
  std::vector<double> betas = {0.2, 0.5};
  std::vector<double> gammas = {0.9, 1.4};
  const double v2 = adjoint.value_and_gradient(betas, gammas, gb, gg);
  EXPECT_NEAR(v1, v2, 1e-13);
  EXPECT_NEAR(grad_packed[0], gb[0], 1e-13);
  EXPECT_NEAR(grad_packed[1], gb[1], 1e-13);
  EXPECT_NEAR(grad_packed[2], gg[0], 1e-13);
  EXPECT_NEAR(grad_packed[3], gg[1], 1e-13);
}

TEST(FiniteDiff, ForwardSchemeRoughlyMatchesCentral) {
  Rng rng(9);
  Graph g = erdos_renyi(5, 0.5, rng);
  dvec table = tabulate(StateSpace::full(5),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(5);
  Qaoa engine(mixer, table, 2);
  std::vector<double> betas = {0.3, 0.8};
  std::vector<double> gammas = {0.6, 1.1};
  std::vector<double> gb_c(2), gg_c(2), gb_f(2), gg_f(2);
  FiniteDiffDifferentiator central(engine, FdScheme::Central, 1e-6);
  FiniteDiffDifferentiator forward(engine, FdScheme::Forward, 1e-7);
  central.value_and_gradient(betas, gammas, gb_c, gg_c);
  forward.value_and_gradient(betas, gammas, gb_f, gg_f);
  for (int i = 0; i < 2; ++i) {
    EXPECT_NEAR(gb_c[static_cast<std::size_t>(i)],
                gb_f[static_cast<std::size_t>(i)], 1e-4);
    EXPECT_NEAR(gg_c[static_cast<std::size_t>(i)],
                gg_f[static_cast<std::size_t>(i)], 1e-4);
  }
}

TEST(FiniteDiff, EvaluationCountScalesWithP) {
  // The Fig. 5 bookkeeping: central FD costs 1 + 2*(2p) evaluations per
  // gradient; the adjoint path is O(1).
  Rng rng(10);
  Graph g = erdos_renyi(4, 0.5, rng);
  dvec table = tabulate(StateSpace::full(4),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(4);
  for (const int p : {1, 3, 6}) {
    Qaoa engine(mixer, table, p);
    FiniteDiffDifferentiator fd(engine, FdScheme::Central);
    std::vector<double> betas(static_cast<std::size_t>(p), 0.3);
    std::vector<double> gammas(static_cast<std::size_t>(p), 0.7);
    std::vector<double> gb(betas.size()), gg(gammas.size());
    fd.value_and_gradient(betas, gammas, gb, gg);
    EXPECT_EQ(fd.evaluations(), static_cast<std::size_t>(1 + 4 * p));
  }
}

TEST(FiniteDiff, GradSpanValidation) {
  dvec table(4, 0.0);
  table[1] = 1.0;
  XMixer mixer = XMixer::transverse_field(2);
  Qaoa engine(mixer, table, 1);
  FiniteDiffDifferentiator fd(engine);
  std::vector<double> b(1, 0.1), g(1, 0.1), wrong(2);
  EXPECT_THROW(fd.value_and_gradient(b, g, wrong, g), Error);
  EXPECT_THROW(FiniteDiffDifferentiator(engine, FdScheme::Central, -1.0),
               Error);
}

}  // namespace
}  // namespace fastqaoa
