// Tests for the approximate MPS engine (src/mps/): parity with the exact
// statevector engine at small n when the bond cap is unsaturated, graceful
// degradation (monotone discarded weight) when saturated, and bit-identical
// determinism across repeated evaluations and concurrent threads — the same
// invariance contract the exact engine's QaoaPlan/EvalWorkspace split is
// tested for in test_parallel.cpp.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/threading.hpp"
#include "core/plan.hpp"
#include "mixers/x_mixer.hpp"
#include "mps/hamiltonian.hpp"
#include "mps/mps_plan.hpp"
#include "mps/mps_state.hpp"
#include "mps/mps_strategies.hpp"
#include "problems/cost_functions.hpp"
#include "problems/state_space.hpp"
#include "runtime/budget.hpp"
#include "test_util.hpp"

namespace fastqaoa::mps {
namespace {

dvec maxcut_table(const Graph& g) {
  return tabulate(StateSpace::full(g.num_vertices()),
                  [&g](state_t x) { return maxcut(g, x); });
}

std::vector<double> random_angles(int count, Rng& rng) {
  std::vector<double> a(static_cast<std::size_t>(count));
  for (auto& x : a) x = rng.uniform(0.0, 2.0 * kPi);
  return a;
}

/// Exact-engine reference <C> at the same packed angles.
double exact_expectation(const Graph& g, int p,
                         const std::vector<double>& packed) {
  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(g.num_vertices());
  QaoaPlan plan(mixer, table, p);
  EvalWorkspace ws;
  return evaluate_packed(plan, ws, packed);
}

double mps_expectation(const Graph& g, int p,
                       const std::vector<double>& packed,
                       MpsOptions options = {.max_bond = 256,
                                             .fidelity_budget = 0.0,
                                             .trunc_tol = 1e-14}) {
  MpsPlan plan(maxcut_hamiltonian(g), options);
  MpsWorkspace ws;
  const double e = evaluate_packed(plan, ws, packed);
  EXPECT_EQ(p * 2, static_cast<int>(packed.size()));
  return e;
}

// ---------------------------------------------------------------------------
// Hamiltonian construction

TEST(MpsHamiltonian, MaxCutMatchesTableOnBitstrings) {
  Rng rng(11);
  Graph g = erdos_renyi(8, 0.5, rng);
  for (auto& e : const_cast<std::vector<Edge>&>(g.edges())) (void)e;
  DiagonalHamiltonian h = maxcut_hamiltonian(g);
  for (state_t x = 0; x < (state_t{1} << 8); ++x) {
    ASSERT_NEAR(eval_bits(h, x), maxcut(g, x), 1e-12) << "x=" << x;
  }
}

TEST(MpsHamiltonian, WeightedMaxCutMatchesTable) {
  Rng rng(12);
  Graph base = erdos_renyi(7, 0.6, rng);
  Graph g(base.num_vertices());
  for (const Edge& e : base.edges()) {
    g.add_edge(e.u, e.v, rng.uniform(0.25, 2.0));
  }
  DiagonalHamiltonian h = maxcut_hamiltonian(g);
  for (state_t x = 0; x < (state_t{1} << 7); ++x) {
    ASSERT_NEAR(eval_bits(h, x), maxcut(g, x), 1e-12) << "x=" << x;
  }
}

TEST(MpsHamiltonian, CanonicalizeMergesAndOrders) {
  DiagonalHamiltonian h;
  h.n = 4;
  h.zz_terms = {{2, 0, 1.0}, {0, 2, 0.5}, {1, 3, -1.0}, {0, 1, 0.0}};
  h.z_terms = {{1, 2.0}, {1, -2.0}, {3, 0.75}};
  h = canonicalize(std::move(h));
  ASSERT_EQ(h.zz_terms.size(), 2u);
  EXPECT_EQ(h.zz_terms[0].u, 0u);
  EXPECT_EQ(h.zz_terms[0].v, 2u);
  EXPECT_DOUBLE_EQ(h.zz_terms[0].coeff, 1.5);
  EXPECT_EQ(h.zz_terms[1].u, 1u);
  EXPECT_EQ(h.zz_terms[1].v, 3u);
  ASSERT_EQ(h.z_terms.size(), 1u);
  EXPECT_EQ(h.z_terms[0].site, 3u);
}

// ---------------------------------------------------------------------------
// MpsState basics

TEST(MpsState, PlusStateAmplitudesAndNorm) {
  MpsState s = MpsState::plus_state(6);
  EXPECT_NEAR(s.norm2(), 1.0, 1e-12);
  const double amp = 1.0 / std::sqrt(64.0);
  for (state_t x = 0; x < 64; ++x) {
    EXPECT_NEAR(std::abs(s.amplitude(x) - cplx(amp, 0.0)), 0.0, 1e-12);
  }
}

TEST(MpsState, SingleSiteGatesMatchHandComputation) {
  // e^{-i a Z_0} on |++>: amplitude picks up e^{-ia} for bit0 = 0 and
  // e^{+ia} for bit0 = 1; site 1 stays |+>.
  MpsState s = MpsState::plus_state(2);
  const double a = 0.7;
  s.apply_phase(0, a);
  for (state_t x = 0; x < 4; ++x) {
    const double sign = (x & 1) ? 1.0 : -1.0;
    EXPECT_NEAR(std::abs(s.amplitude(x) - 0.5 * std::exp(cplx(0, sign * a))),
                0.0, 1e-12)
        << "x=" << x;
  }
  // e^{-i b X_0} leaves |++> invariant up to the phase e^{-i b}.
  MpsState t = MpsState::plus_state(2);
  const double b = 0.4;
  t.apply_rx(0, b);
  for (state_t x = 0; x < 4; ++x) {
    EXPECT_NEAR(std::abs(t.amplitude(x) - 0.5 * std::exp(cplx(0, -b))), 0.0,
                1e-12)
        << "x=" << x;
  }
}

TEST(MpsState, CenterMovesPreserveState) {
  MpsState s = MpsState::plus_state(5);
  s.apply_phase(2, 0.3);
  s.apply_rx(1, 0.9);
  std::vector<cplx> before(32);
  for (state_t x = 0; x < 32; ++x) before[x] = s.amplitude(x);
  s.move_center(4);
  s.move_center(0);
  s.move_center(2);
  EXPECT_NEAR(s.norm2(), 1.0, 1e-12);
  for (state_t x = 0; x < 32; ++x) {
    EXPECT_NEAR(std::abs(s.amplitude(x) - before[x]), 0.0, 1e-11);
  }
}

// ---------------------------------------------------------------------------
// Parity with the exact engine (unsaturated bond cap)

TEST(MpsParity, RingP1ToP3) {
  Graph g = ring_graph(8);
  Rng rng(21);
  for (int p = 1; p <= 3; ++p) {
    const auto packed = random_angles(2 * p, rng);
    EXPECT_NEAR(mps_expectation(g, p, packed), exact_expectation(g, p, packed),
                1e-8)
        << "p=" << p;
  }
}

TEST(MpsParity, ErdosRenyiN10P3) {
  Rng rng(22);
  Graph g = erdos_renyi(10, 0.5, rng);
  const auto packed = random_angles(6, rng);
  EXPECT_NEAR(mps_expectation(g, 3, packed), exact_expectation(g, 3, packed),
              1e-8);
}

TEST(MpsParity, RandomRegularN12P2) {
  Rng rng(23);
  Graph g = random_regular(12, 3, rng);
  const auto packed = random_angles(4, rng);
  EXPECT_NEAR(mps_expectation(g, 2, packed), exact_expectation(g, 2, packed),
              1e-8);
}

TEST(MpsParity, WeightedGraphN10P2) {
  Rng rng(24);
  Graph base = erdos_renyi(10, 0.4, rng);
  Graph g(base.num_vertices());
  for (const Edge& e : base.edges()) {
    g.add_edge(e.u, e.v, rng.uniform(0.1, 1.5));
  }
  const auto packed = random_angles(4, rng);
  EXPECT_NEAR(mps_expectation(g, 2, packed), exact_expectation(g, 2, packed),
              1e-8);
}

TEST(MpsParity, RingN20P3LargeExact) {
  // n=20: the largest parity point the acceptance criteria name. A ring
  // keeps the light cone (and therefore the required bond dimension) small
  // at p=3, so chi=64 is unsaturated and the match must be exact-grade.
  Graph g = ring_graph(20);
  Rng rng(25);
  const auto packed = random_angles(6, rng);
  const double mps_e = mps_expectation(
      g, 3, packed,
      {.max_bond = 64, .fidelity_budget = 0.0, .trunc_tol = 1e-14});
  EXPECT_NEAR(mps_e, exact_expectation(g, 3, packed), 1e-8);
}

TEST(MpsParity, AmplitudesMatchExactState) {
  // Beyond <C>: the full wavefunction after 2 rounds must agree with the
  // exact engine amplitude-by-amplitude (phases included).
  Rng rng(26);
  Graph g = erdos_renyi(8, 0.5, rng);
  const auto packed = random_angles(4, rng);

  dvec table = maxcut_table(g);
  XMixer mixer = XMixer::transverse_field(8);
  QaoaPlan eplan(mixer, table, 2);
  EvalWorkspace ews;
  evaluate_packed(eplan, ews, packed);

  MpsPlan plan(maxcut_hamiltonian(g),
               {.max_bond = 256, .fidelity_budget = 0.0, .trunc_tol = 1e-14});
  MpsWorkspace ws;
  evaluate_packed(plan, ws, packed);
  // The exact engine phases by the full cost table (constant included);
  // the MPS applies only the Z/ZZ terms, so the states differ by the
  // global phase e^{-i const sum(gamma)}.
  const double sum_gamma = packed[2] + packed[3];
  const cplx global = std::exp(cplx(0, -plan.hamiltonian().constant *
                                           sum_gamma));
  for (state_t x = 0; x < 256; ++x) {
    EXPECT_NEAR(std::abs(global * ws.state.amplitude(x) - ews.psi[x]), 0.0,
                1e-9)
        << "x=" << x;
  }
}

TEST(MpsParity, UnsaturatedRunReportsNoDiscard) {
  Rng rng(27);
  Graph g = erdos_renyi(10, 0.5, rng);
  MpsPlan plan(maxcut_hamiltonian(g),
               {.max_bond = 256, .fidelity_budget = 0.0, .trunc_tol = 1e-14});
  MpsWorkspace ws;
  evaluate_packed(plan, ws, random_angles(4, rng));
  EXPECT_EQ(ws.stats.truncations, 0u);
  EXPECT_EQ(ws.stats.discarded_weight, 0.0);
  EXPECT_EQ(ws.stats.budget_exhausted, 0u);
  EXPECT_LE(ws.stats.max_bond_reached, index_t{32});
}

// ---------------------------------------------------------------------------
// Saturated cap: graceful degradation

TEST(MpsTruncation, SaturatedCapReportsMonotoneDiscardedWeight) {
  Rng rng(31);
  Graph g = erdos_renyi(14, 0.5, rng);
  const auto packed = random_angles(6, rng);
  MpsPlan plan(maxcut_hamiltonian(g),
               {.max_bond = 4, .fidelity_budget = 1.0, .trunc_tol = 1e-12});
  double prev = 0.0;
  for (int p = 1; p <= 3; ++p) {
    MpsWorkspace ws;
    std::vector<double> prefix(packed.begin(), packed.begin() + p);
    prefix.insert(prefix.end(), packed.begin() + 3, packed.begin() + 3 + p);
    const double e = evaluate_packed(plan, ws, prefix);
    EXPECT_TRUE(std::isfinite(e));
    EXPECT_GT(ws.stats.truncations, 0u) << "p=" << p;
    EXPECT_GT(ws.stats.discarded_weight, 0.0) << "p=" << p;
    EXPECT_GE(ws.stats.discarded_weight, prev)
        << "discarded weight must be monotone in depth, p=" << p;
    EXPECT_EQ(ws.stats.max_bond_reached, index_t{4});
    prev = ws.stats.discarded_weight;
  }
}

TEST(MpsTruncation, HardCapForcesDiscardsPastBudget) {
  Rng rng(32);
  Graph g = erdos_renyi(14, 0.5, rng);
  MpsPlan plan(maxcut_hamiltonian(g),
               {.max_bond = 2, .fidelity_budget = 1e-12, .trunc_tol = 1e-12});
  MpsWorkspace ws;
  evaluate_packed(plan, ws, random_angles(4, rng));
  // The budget is microscopic; the chi=2 cap must keep discarding anyway
  // and count those forced discards separately.
  EXPECT_GT(ws.stats.budget_exhausted, 0u);
  EXPECT_GT(ws.stats.discarded_weight, 1e-12);
}

TEST(MpsTruncation, TighterCapDiscardsAtLeastAsMuch) {
  Rng rng(33);
  Graph g = erdos_renyi(12, 0.5, rng);
  const auto packed = random_angles(6, rng);
  double prev = 0.0;
  for (index_t chi : {index_t{32}, index_t{8}, index_t{4}, index_t{2}}) {
    MpsPlan plan(maxcut_hamiltonian(g),
                 {.max_bond = chi, .fidelity_budget = 1.0,
                  .trunc_tol = 1e-12});
    MpsWorkspace ws;
    evaluate_packed(plan, ws, packed);
    EXPECT_GE(ws.stats.discarded_weight, prev) << "chi=" << chi;
    prev = ws.stats.discarded_weight;
  }
}

// ---------------------------------------------------------------------------
// Determinism and concurrency

TEST(MpsDeterminism, RepeatedEvaluationsBitIdentical) {
  Rng rng(41);
  Graph g = erdos_renyi(12, 0.5, rng);
  const auto packed = random_angles(6, rng);
  MpsPlan plan(maxcut_hamiltonian(g),
               {.max_bond = 8, .fidelity_budget = 1e-2, .trunc_tol = 1e-12});
  MpsWorkspace ws;
  const double first = evaluate_packed(plan, ws, packed);
  const auto first_stats = ws.stats;
  for (int i = 0; i < 3; ++i) {
    MpsWorkspace fresh;
    const double e = evaluate_packed(plan, fresh, packed);
    EXPECT_EQ(std::memcmp(&e, &first, sizeof e), 0);
    EXPECT_EQ(fresh.stats.truncations, first_stats.truncations);
    EXPECT_EQ(fresh.stats.discarded_weight, first_stats.discarded_weight);
    EXPECT_EQ(fresh.stats.max_bond_reached, first_stats.max_bond_reached);
  }
}

// Shared-plan concurrency (std::thread, no OpenMP in the MPS kernels): one
// immutable MpsPlan, one workspace per thread, bit-identical results.
TEST(MpsShared, ConcurrentEvaluationsBitIdentical) {
  constexpr int kThreads = 4;
  constexpr int kEvals = 5;
  Rng rng(42);
  Graph g = erdos_renyi(12, 0.5, rng);
  const auto packed = random_angles(6, rng);
  MpsPlan plan(maxcut_hamiltonian(g),
               {.max_bond = 8, .fidelity_budget = 1e-2, .trunc_tol = 1e-12});

  MpsWorkspace ref_ws;
  const double ref = evaluate_packed(plan, ref_ws, packed);

  std::vector<std::vector<double>> results(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      MpsWorkspace ws;
      for (int e = 0; e < kEvals; ++e) {
        results[static_cast<std::size_t>(t)].push_back(
            evaluate_packed(plan, ws, packed));
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& per_thread : results) {
    for (double e : per_thread) {
      EXPECT_EQ(std::memcmp(&e, &ref, sizeof e), 0);
    }
  }
}

TEST(MpsDeterminism, FindAnglesInvariantToThreadCount) {
  Graph g = ring_graph(8);
  MpsPlan plan(maxcut_hamiltonian(g),
               {.max_bond = 16, .fidelity_budget = 1e-3, .trunc_tol = 1e-12});

  FindAnglesOptions options;
  options.parallel_starts = 4;
  options.hopping.hops = 1;
  options.hopping.local.max_iterations = 8;
  options.seed = 99;

  set_num_threads(1);
  const auto serial = find_angles_mps(plan, 2, options);
  set_num_threads(4);
  const auto parallel = find_angles_mps(plan, 2, options);
  set_num_threads(1);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    EXPECT_EQ(std::memcmp(&serial[r].expectation, &parallel[r].expectation,
                          sizeof(double)),
              0);
    ASSERT_EQ(serial[r].betas, parallel[r].betas);
    ASSERT_EQ(serial[r].gammas, parallel[r].gammas);
  }
  // And the angles must actually be good for something: better than the
  // uniform-state mean.
  dvec table = maxcut_table(g);
  const double mean = objective_stats(table).mean;
  EXPECT_GT(serial.back().expectation, mean);
}

TEST(MpsDeterminism, GridSweepInvariantToThreadCount) {
  Graph g = ring_graph(9);
  MpsPlan plan(maxcut_hamiltonian(g),
               {.max_bond = 16, .fidelity_budget = 1e-3, .trunc_tol = 1e-12});
  FindAnglesOptions options;
  options.seed = 7;
  set_num_threads(1);
  const auto serial = find_angles_grid_mps(plan, 1, 5, options, false);
  set_num_threads(4);
  const auto parallel = find_angles_grid_mps(plan, 1, 5, options, false);
  set_num_threads(1);
  EXPECT_EQ(std::memcmp(&serial.expectation, &parallel.expectation,
                        sizeof(double)),
            0);
  EXPECT_EQ(serial.betas, parallel.betas);
  EXPECT_EQ(serial.gammas, parallel.gammas);
}

// ---------------------------------------------------------------------------
// Runtime integration

TEST(MpsRuntime, CancelledTrackerInterruptsEvaluation) {
  Rng rng(51);
  Graph g = erdos_renyi(12, 0.5, rng);
  MpsPlan plan(maxcut_hamiltonian(g), {.max_bond = 16});
  runtime::CancelToken cancel;
  cancel.request_stop();
  runtime::RunBudget budget;
  budget.cancel = &cancel;
  runtime::BudgetTracker tracker(budget);
  MpsWorkspace ws;
  ws.tracker = &tracker;
  evaluate_packed(plan, ws, random_angles(6, rng));
  EXPECT_TRUE(ws.interrupted);
}

TEST(MpsRuntime, FingerprintTagEncodesEveryKnob) {
  Rng rng(52);
  Graph g = erdos_renyi(8, 0.5, rng);
  const DiagonalHamiltonian h = maxcut_hamiltonian(g);
  const std::string base = fingerprint_tag(MpsPlan(h, {.max_bond = 64}));
  EXPECT_NE(base, fingerprint_tag(MpsPlan(h, {.max_bond = 32})));
  EXPECT_NE(base, fingerprint_tag(
                      MpsPlan(h, {.max_bond = 64, .fidelity_budget = 1e-4})));
  EXPECT_NE(base,
            fingerprint_tag(MpsPlan(
                h, {.max_bond = 64, .fidelity_budget = 1e-3,
                    .trunc_tol = 1e-10})));
  EXPECT_EQ(base, fingerprint_tag(MpsPlan(h, {.max_bond = 64})));
  EXPECT_NE(base.find("mps:"), std::string::npos)
      << "tag must be engine-branded so exact checkpoints can never match";
}

TEST(MpsRuntime, FindAnglesAtMatchesDirectEvaluation) {
  Rng rng(53);
  Graph g = ring_graph(10);
  MpsPlan plan(maxcut_hamiltonian(g), {.max_bond = 32});
  FindAnglesOptions options;
  options.hopping.hops = 1;
  options.hopping.local.max_iterations = 10;
  const auto schedule =
      find_angles_at_mps(plan, 1, {0.3, 0.8}, options);
  ASSERT_EQ(schedule.p, 1);
  const double direct =
      evaluate_angles_mps(plan, schedule.packed());
  EXPECT_NEAR(schedule.expectation, direct, 1e-10);
}

}  // namespace
}  // namespace fastqaoa::mps
